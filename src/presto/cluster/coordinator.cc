#include "presto/cluster/coordinator.h"

#include <algorithm>
#include <cstdlib>

#include "presto/exec/operators.h"
#include "presto/planner/optimizer.h"
#include "presto/sql/analyzer.h"
#include "presto/sql/parser.h"

namespace presto {

const Clock* DefaultSystemClock() {
  static SystemClock clock;
  return &clock;
}

std::vector<Value> QueryResult::Row(size_t r) const {
  for (const Page& page : pages) {
    if (r < page.num_rows()) return page.GetRow(r);
    r -= page.num_rows();
  }
  return {};
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < column_names.size(); ++c) {
    out += c == 0 ? "" : " | ";
    out += column_names[c];
  }
  out += "\n";
  size_t emitted = 0;
  for (const Page& page : pages) {
    for (size_t r = 0; r < page.num_rows() && emitted < max_rows; ++r, ++emitted) {
      for (size_t c = 0; c < page.num_columns(); ++c) {
        out += c == 0 ? "" : " | ";
        out += page.column(c)->GetValue(r).ToString();
      }
      out += "\n";
    }
  }
  if (emitted < static_cast<size_t>(total_rows)) {
    out += "… (" + std::to_string(total_rows) + " rows total)\n";
  }
  return out;
}

void Coordinator::AddWorker(std::shared_ptr<Worker> worker) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.push_back(std::move(worker));
}

Status Coordinator::ShrinkWorker(const std::string& worker_id,
                                 int64_t grace_period_nanos) {
  std::shared_ptr<Worker> target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& worker : workers_) {
      if (worker->id() == worker_id) {
        target = worker;
        break;
      }
    }
  }
  if (target == nullptr) {
    return Status::NotFound("no such worker: " + worker_id);
  }
  target->RequestGracefulShutdown(grace_period_nanos);
  return Status::OK();
}

std::vector<std::shared_ptr<Worker>> Coordinator::ActiveWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Worker>> out;
  for (const auto& worker : workers_) {
    if (worker->state() == WorkerState::kActive) out.push_back(worker);
  }
  return out;
}

size_t Coordinator::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

namespace {

// Keeps exchange buffers alive until every producer task has fully exited:
// without this, the root fragment can observe "all producers done" and let
// the query tear down while a producer is still inside its final
// notify_all() — a use-after-free on the buffer's condition variable.
struct TaskLatch {
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 0;

  void Done() {
    {
      std::lock_guard<std::mutex> lock(mu);
      --remaining;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining <= 0; });
  }
};

// Per-fragment outstanding-task counts; when a fragment's count reaches
// zero its stage is finished and a journal event fires.
struct StageTracker {
  std::mutex mu;
  std::map<int, int> remaining;

  // Returns true when this completion was the fragment's last task.
  bool TaskDone(int fragment_id) {
    std::lock_guard<std::mutex> lock(mu);
    return --remaining[fragment_id] == 0;
  }
};

TableScanNode* FindScan(const PlanNodePtr& node) {
  if (node->kind() == PlanNodeKind::kTableScan) {
    return static_cast<TableScanNode*>(node.get());
  }
  for (const PlanNodePtr& source : node->sources()) {
    if (TableScanNode* scan = FindScan(source)) return scan;
  }
  return nullptr;
}

// Wraps text (the plan rendering for EXPLAIN [ANALYZE]) as a one-column,
// one-row varchar result, mirroring Presto's "Query Plan" output column.
void SetTextResult(QueryResult* result, std::string text) {
  result->column_names = {"Query Plan"};
  result->column_types = {Type::Varchar()};
  result->pages.clear();
  result->pages.push_back(Page({MakeVarcharVector({std::move(text)})}));
  result->total_rows = 1;
}

}  // namespace

Result<FragmentedPlan> Coordinator::PlanQuery(const sql::Query& query,
                                              const Session& session) {
  sql::Analyzer analyzer(catalogs_, &session);
  ASSIGN_OR_RETURN(PlanNodePtr plan, analyzer.Analyze(query));
  Optimizer optimizer(catalogs_, &session, &analyzer.ids());
  ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
  Fragmenter fragmenter(&analyzer.ids());
  return fragmenter.Fragment(std::move(plan));
}

Result<FragmentedPlan> Coordinator::PlanSql(const std::string& sql,
                                            const Session& session) {
  ASSIGN_OR_RETURN(sql::Query query, sql::ParseQuery(sql));
  return PlanQuery(query, session);
}

Result<std::string> Coordinator::ExplainSql(const std::string& sql,
                                            const Session& session) {
  ASSIGN_OR_RETURN(FragmentedPlan plan, PlanSql(sql, session));
  return plan.ToString();
}

Status Coordinator::RecordFailure(int64_t query_id, const Status& status,
                                  const MetricsRegistry* query_metrics) {
  queries_failed_.fetch_add(1);
  metrics_.Increment("coordinator.query.failed");
  // Failed queries return no QueryResult, so whatever counters the tasks
  // accumulated before the error ride along on the journal event instead —
  // this keeps failure diagnostics consistent with the success path.
  std::map<std::string, int64_t> counters;
  if (query_metrics != nullptr) counters = query_metrics->Snapshot();
  journal_.Record(query_id, QueryEventKind::kFailed, status.ToString(),
                  std::move(counters));
  return status;
}

Result<QueryResult> Coordinator::ExecuteSql(const std::string& sql,
                                            const Session& session) {
  Stopwatch watch;
  int64_t query_id = next_query_id_.fetch_add(1);
  journal_.Record(query_id, QueryEventKind::kCreated, sql);

  auto statement = sql::ParseStatement(sql);
  if (!statement.ok()) {
    return RecordFailure(query_id, statement.status(), nullptr);
  }

  if (statement->kind == sql::Statement::Kind::kQuery) {
    auto plan = PlanQuery(statement->query, session);
    if (!plan.ok()) return RecordFailure(query_id, plan.status(), nullptr);
    journal_.Record(query_id, QueryEventKind::kPlanned,
                    std::to_string(plan->fragments.size()) + " fragments");
    return ExecutePlan(query_id, *plan, session, watch, /*force_stats=*/false);
  }

  // EXPLAIN / EXPLAIN ANALYZE.
  auto plan = PlanQuery(statement->query, session);
  if (!plan.ok()) return RecordFailure(query_id, plan.status(), nullptr);
  journal_.Record(query_id, QueryEventKind::kPlanned,
                  std::to_string(plan->fragments.size()) + " fragments");

  if (statement->kind == sql::Statement::Kind::kExplain) {
    QueryResult result;
    result.query_id = query_id;
    result.num_fragments = static_cast<int>(plan->fragments.size());
    SetTextResult(&result, plan->ToString());
    result.wall_millis = watch.ElapsedMillis();
    queries_completed_.fetch_add(1);
    metrics_.Increment("coordinator.query.completed");
    journal_.Record(query_id, QueryEventKind::kCompleted, "explain");
    return result;
  }

  // EXPLAIN ANALYZE: run the query (stats collection forced on even if the
  // session disabled query_stats), then re-render the fragmented plan with
  // each node annotated by its actual merged operator stats.
  auto executed = ExecutePlan(query_id, *plan, session, watch,
                              /*force_stats=*/true);
  if (!executed.ok()) return executed.status();
  QueryResult result = std::move(*executed);
  SetTextResult(&result, RenderPlanWithStats(*plan, result.stats));
  return result;
}

Result<QueryResult> Coordinator::ExecutePlan(int64_t query_id,
                                             const FragmentedPlan& fragmented,
                                             const Session& session,
                                             Stopwatch watch,
                                             bool force_stats) {
  QueryResult result;
  result.query_id = query_id;
  result.num_fragments = static_cast<int>(fragmented.fragments.size());

  // -- Schedule leaf fragments. -------------------------------------------------
  std::vector<std::shared_ptr<Worker>> workers = ActiveWorkers();
  std::map<int, std::unique_ptr<ExchangeBuffer>> buffers;
  std::map<int, ExchangeBuffer*> exchange_refs;
  struct TaskSpec {
    const PlanFragment* fragment;
    std::vector<SplitPtr> splits;
    ExchangeBuffer* buffer;
  };
  std::vector<TaskSpec> tasks;
  auto stage_tracker = std::make_shared<StageTracker>();

  for (const PlanFragment& fragment : fragmented.fragments) {
    if (!fragment.leaf) continue;
    TableScanNode* scan = FindScan(fragment.root);
    if (scan == nullptr) {
      return RecordFailure(
          query_id, Status::Internal("leaf fragment without a table scan"),
          nullptr);
    }
    auto connector = catalogs_->GetConnector(scan->catalog());
    if (!connector.ok()) {
      return RecordFailure(query_id, connector.status(), nullptr);
    }
    // Target parallelism is the same product used for the task count below:
    // every worker runs tasks_per_fragment tasks, and each task should get at
    // least one split. (Using max() here starved all but tasks_per_fragment
    // tasks of splits on multi-worker clusters.)
    size_t parallelism = std::max<size_t>(
        1, std::max<size_t>(workers.size(), 1) * options_.tasks_per_fragment);
    auto splits = (*connector)->CreateSplits(scan->table_schema_name(),
                                             scan->table_name(),
                                             *scan->accepted(), parallelism);
    if (!splits.ok()) {
      return RecordFailure(query_id, splits.status(), nullptr);
    }
    result.num_splits += static_cast<int>(splits->size());

    auto buffer = std::make_unique<ExchangeBuffer>();
    size_t num_tasks = std::min<size_t>(
        std::max<size_t>(1, splits->size()), parallelism);
    // Round-robin splits across tasks.
    std::vector<std::vector<SplitPtr>> batches(num_tasks);
    for (size_t i = 0; i < splits->size(); ++i) {
      batches[i % num_tasks].push_back((*splits)[i]);
    }
    buffer->SetProducerCount(static_cast<int>(num_tasks));
    stage_tracker->remaining[fragment.id] = static_cast<int>(num_tasks);
    for (size_t t = 0; t < num_tasks; ++t) {
      tasks.push_back(TaskSpec{&fragment, std::move(batches[t]), buffer.get()});
    }
    exchange_refs[fragment.id] = buffer.get();
    buffers[fragment.id] = std::move(buffer);
  }
  result.num_tasks = static_cast<int>(tasks.size());

  auto latch = std::make_shared<TaskLatch>();
  latch->remaining = static_cast<int>(tasks.size());

  bool use_fragment_cache =
      session.Property("fragment_result_cache", "false") == "true";
  // One registry per query, shared by every task (thread-safe); snapshotted
  // into the result after the root fragment drains.
  auto query_metrics = std::make_shared<MetricsRegistry>();
  // Per-operator stats tree, merged across tasks keyed by plan node id.
  bool collect_stats =
      force_stats || session.Property("query_stats", "true") != "false";
  auto collector = std::make_shared<QueryStatsCollector>();
  ExecutionLimits limits;
  limits.metrics = query_metrics.get();
  limits.collect_stats = collect_stats;
  {
    std::string max_build = session.Property("max_join_build_rows", "");
    if (!max_build.empty()) {
      limits.max_join_build_rows = std::strtoll(max_build.c_str(), nullptr, 10);
    }
    limits.vectorized_kernels =
        session.Property("vectorized_kernels", "true") != "false";
  }

  // Task body: build the fragment's operator tree over its splits and pump
  // pages into the exchange, consulting the fragment result cache first.
  auto run_task = [this, &exchange_refs, use_fragment_cache, limits,
                   collect_stats, collector, stage_tracker, query_id](
                      const PlanFragment* fragment, std::vector<SplitPtr> splits,
                      ExchangeBuffer* buffer) {
    Stopwatch task_watch;
    auto finish_stage = [&] {
      if (stage_tracker->TaskDone(fragment->id)) {
        journal_.Record(query_id, QueryEventKind::kStageFinished,
                        "fragment " + std::to_string(fragment->id));
      }
    };
    std::string cache_key;
    if (use_fragment_cache) {
      cache_key = fragment->root->ToString();
      for (const SplitPtr& split : splits) {
        cache_key += "\n";
        cache_key += split->ToString();
      }
      if (auto hit = fragment_cache_.Get(cache_key)) {
        for (const Page& page : **hit) {
          buffer->Push(page);  // pages share immutable vectors
        }
        buffer->ProducerDone();
        if (collect_stats) {
          // No operators ran; record the task so stage task counts stay
          // truthful even when its pages came from the fragment cache.
          collector->AddTask(fragment->id, /*root_plan_node_id=*/-1, {},
                             task_watch.ElapsedNanos());
        }
        finish_stage();
        return;
      }
    }
    OperatorBuilder builder(catalogs_, &FunctionRegistry::Default(),
                            &exchange_refs, &splits, limits);
    auto op = builder.Build(fragment->root);
    if (!op.ok()) {
      buffer->Fail(op.status());
      buffer->ProducerDone();
      finish_stage();
      return;
    }
    std::vector<Page> produced;
    bool failed = false;
    while (true) {
      auto page = (*op)->Next();
      if (!page.ok()) {
        buffer->Fail(page.status());
        failed = true;
        break;
      }
      if (!page->has_value()) break;
      if (use_fragment_cache) produced.push_back(**page);
      buffer->Push(std::move(**page));
    }
    if (use_fragment_cache && !failed) {
      fragment_cache_.Put(cache_key,
                          std::make_shared<const std::vector<Page>>(
                              std::move(produced)));
    }
    buffer->ProducerDone();
    if (collect_stats) {
      std::vector<OperatorStats> ops;
      (*op)->CollectStats(&ops);
      collector->AddTask(fragment->id, (*op)->stats().plan_node_id, ops,
                         task_watch.ElapsedNanos());
    }
    finish_stage();
  };

  journal_.Record(query_id, QueryEventKind::kScheduled,
                  std::to_string(tasks.size()) + " tasks, " +
                      std::to_string(result.num_splits) + " splits");

  // Dispatch: round-robin across active workers; with no workers, tasks run
  // inline on the coordinator (embedded mode).
  if (workers.empty()) {
    for (TaskSpec& task : tasks) {
      run_task(task.fragment, std::move(task.splits), task.buffer);
      latch->Done();
    }
  } else {
    size_t next_worker = 0;
    for (TaskSpec& task : tasks) {
      bool submitted = false;
      for (size_t attempt = 0; attempt < workers.size(); ++attempt) {
        auto& worker = workers[next_worker];
        next_worker = (next_worker + 1) % workers.size();
        if (worker->SubmitTask([run_task, latch, fragment = task.fragment,
                                splits = task.splits, buffer = task.buffer] {
              run_task(fragment, splits, buffer);
              latch->Done();
            })) {
          submitted = true;
          break;
        }
      }
      if (!submitted) {
        // Every worker is draining: run inline to guarantee no downtime.
        run_task(task.fragment, std::move(task.splits), task.buffer);
        latch->Done();
      }
    }
  }

  // -- Run the root fragment on the coordinator. -----------------------------------
  const PlanFragment& root = fragmented.fragments[0];
  Stopwatch root_watch;
  OperatorBuilder builder(catalogs_, &FunctionRegistry::Default(), &exchange_refs,
                          nullptr, limits);
  auto root_op = builder.Build(root.root);
  if (!root_op.ok()) {
    latch->Wait();
    return RecordFailure(query_id, root_op.status(), query_metrics.get());
  }
  while (true) {
    auto page = (*root_op)->Next();
    if (!page.ok()) {
      latch->Wait();
      return RecordFailure(query_id, page.status(), query_metrics.get());
    }
    if (!page->has_value()) break;
    result.total_rows += static_cast<int64_t>((*page)->num_rows());
    result.pages.push_back(std::move(**page));
  }
  // All producer tasks must have fully exited before the buffers go away.
  latch->Wait();
  result.exec_metrics = query_metrics->Snapshot();
  if (collect_stats) {
    std::vector<OperatorStats> ops;
    (*root_op)->CollectStats(&ops);
    collector->AddTask(root.id, (*root_op)->stats().plan_node_id, ops,
                       root_watch.ElapsedNanos());
    journal_.Record(query_id, QueryEventKind::kStageFinished,
                    "fragment " + std::to_string(root.id));
    result.stats = collector->Finish();
  }

  // Output metadata.
  if (root.root->kind() == PlanNodeKind::kOutput) {
    const auto* output = static_cast<const OutputNode*>(root.root.get());
    result.column_names = output->column_names();
    for (const VariablePtr& v : output->OutputVariables()) {
      result.column_types.push_back(v->type());
    }
  }
  result.wall_millis = watch.ElapsedMillis();
  queries_completed_.fetch_add(1);
  metrics_.Increment("coordinator.query.completed");
  journal_.Record(query_id, QueryEventKind::kCompleted,
                  std::to_string(result.total_rows) + " rows",
                  {{"output_rows", result.total_rows},
                   {"tasks", result.num_tasks},
                   {"splits", result.num_splits},
                   {"wall_micros", watch.ElapsedNanos() / 1000}});

  // Slow-query log: queries whose wall time crosses the session threshold
  // journal a slow_query event carrying the full per-query counter snapshot.
  std::string slow_millis = session.Property("slow_query_millis", "");
  if (!slow_millis.empty()) {
    int64_t threshold = std::strtoll(slow_millis.c_str(), nullptr, 10);
    if (threshold >= 0 && result.wall_millis >= static_cast<double>(threshold)) {
      metrics_.Increment("coordinator.query.slow");
      journal_.Record(query_id, QueryEventKind::kSlowQuery,
                      "wall_millis above threshold " + slow_millis,
                      result.exec_metrics);
    }
  }
  return result;
}

}  // namespace presto
