#include "presto/cluster/coordinator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "presto/common/fault_injection.h"
#include "presto/common/random.h"
#include "presto/exec/exchange_spool.h"
#include "presto/exec/operators.h"
#include "presto/planner/optimizer.h"
#include "presto/sql/analyzer.h"
#include "presto/sql/parser.h"

namespace presto {

const Clock* DefaultSystemClock() {
  static SystemClock clock;
  return &clock;
}

std::vector<Value> QueryResult::Row(size_t r) const {
  for (const Page& page : pages) {
    if (r < page.num_rows()) return page.GetRow(r);
    r -= page.num_rows();
  }
  return {};
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < column_names.size(); ++c) {
    out += c == 0 ? "" : " | ";
    out += column_names[c];
  }
  out += "\n";
  size_t emitted = 0;
  for (const Page& page : pages) {
    for (size_t r = 0; r < page.num_rows() && emitted < max_rows; ++r, ++emitted) {
      for (size_t c = 0; c < page.num_columns(); ++c) {
        out += c == 0 ? "" : " | ";
        out += page.column(c)->GetValue(r).ToString();
      }
      out += "\n";
    }
  }
  if (emitted < static_cast<size_t>(total_rows)) {
    out += "… (" + std::to_string(total_rows) + " rows total)\n";
  }
  return out;
}

void Coordinator::AddWorker(std::shared_ptr<Worker> worker) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.push_back(std::move(worker));
}

Status Coordinator::ShrinkWorker(const std::string& worker_id,
                                 int64_t grace_period_nanos) {
  std::shared_ptr<Worker> target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& worker : workers_) {
      if (worker->id() == worker_id) {
        target = worker;
        break;
      }
    }
  }
  if (target == nullptr) {
    return Status::NotFound("no such worker: " + worker_id);
  }
  // Propagate the worker's own state-machine verdict: a second shrink of the
  // same worker is kAlreadyExists, shrinking a crashed worker kUnavailable.
  // Returning OK here (as an earlier version did) made double-shrink
  // indistinguishable from success and hid races in elastic-scaling drivers.
  return target->TryRequestGracefulShutdown(grace_period_nanos);
}

Status Coordinator::DrainWorker(const std::string& worker_id) {
  std::shared_ptr<Worker> target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& worker : workers_) {
      if (worker->id() == worker_id) {
        target = worker;
        break;
      }
    }
  }
  if (target == nullptr) {
    return Status::NotFound("no such worker: " + worker_id);
  }
  // Drain() flips the worker to SHUTTING_DOWN before waiting, so it drops
  // out of ActiveWorkers() immediately and new dispatches route elsewhere
  // while this call blocks on its in-flight tasks.
  RETURN_IF_ERROR(target->Drain());
  metrics_.Increment("worker.drained");
  journal_.Record(/*query_id=*/0, QueryEventKind::kWorkerDrained, worker_id);
  return Status::OK();
}

int Coordinator::ProbeBlacklistedWorkers() {
  std::vector<std::shared_ptr<Worker>> members;
  std::set<std::string> blacklist_snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    members = workers_;
    blacklist_snapshot = blacklisted_;
  }
  std::vector<std::string> reinstated;
  for (const auto& member : members) {
    if (blacklist_snapshot.count(member->id()) == 0) continue;
    // The probe happens outside mu_ (it is a call into the worker); streak
    // bookkeeping goes back under the lock.
    const bool alive = member->Heartbeat();
    std::lock_guard<std::mutex> lock(mu_);
    if (blacklisted_.count(member->id()) == 0) continue;  // raced a reinstate
    if (!alive) {
      // Flapping host: one failed probe restarts probation from zero, so a
      // worker must sustain recovery before it sees traffic again.
      probation_streak_[member->id()] = 0;
      continue;
    }
    if (++probation_streak_[member->id()] >= kProbationProbes) {
      blacklisted_.erase(member->id());
      probation_streak_.erase(member->id());
      reinstated.push_back(member->id());
    }
  }
  for (const std::string& id : reinstated) {
    metrics_.Increment("worker.reinstated");
    journal_.Record(/*query_id=*/0, QueryEventKind::kWorkerReinstated, id);
  }
  return static_cast<int>(reinstated.size());
}

std::vector<std::string> Coordinator::BlacklistedWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::string>(blacklisted_.begin(), blacklisted_.end());
}

std::vector<std::shared_ptr<Worker>> Coordinator::ActiveWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Worker>> out;
  for (const auto& worker : workers_) {
    if (worker->state() != WorkerState::kActive) continue;
    // A blacklisted worker whose process came back (Revive) is ACTIVE again
    // but stays out of rotation until the probation sweep reinstates it.
    if (blacklisted_.count(worker->id()) > 0) continue;
    out.push_back(worker);
  }
  return out;
}

size_t Coordinator::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

namespace {

// Stable per-query correlation id: query id in the high bits (so traces sort
// by query), steady-clock entropy in the low bits (so re-used ids across
// coordinator restarts stay distinguishable in external log aggregation).
std::string MakeTraceId(int64_t query_id) {
  uint64_t bits = (static_cast<uint64_t>(query_id) << 32) ^
                  (static_cast<uint64_t>(SteadyNowNanos()) & 0xffffffffu);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

// Keeps exchange buffers alive until every producer task has fully exited:
// without this, the root fragment can observe "all producers done" and let
// the query tear down while a producer is still inside its final
// notify_all() — a use-after-free on the buffer's condition variable.
struct TaskLatch {
  std::mutex mu;
  std::condition_variable cv;
  int remaining = 0;

  void Done() {
    // Notify under the lock: the waiter destroys this latch as soon as it
    // observes remaining == 0, so an unlocked notify_all() would race the
    // destructor.
    std::lock_guard<std::mutex> lock(mu);
    --remaining;
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return remaining <= 0; });
  }
  // Registers extra attempts after dispatch (straggler speculation). Must
  // happen-before Wait() can observe zero — the speculation monitor is
  // stopped and joined before the drain barrier waits on this latch.
  void Add(int n) {
    std::lock_guard<std::mutex> lock(mu);
    remaining += n;
  }
};

// Per-fragment outstanding-task counts; when a fragment's count reaches
// zero its stage is finished and a journal event fires.
struct StageTracker {
  std::mutex mu;
  std::map<int, int> remaining;

  // Returns true when this completion was the fragment's last task.
  bool TaskDone(int fragment_id) {
    std::lock_guard<std::mutex> lock(mu);
    return --remaining[fragment_id] == 0;
  }
};

TableScanNode* FindScan(const PlanNodePtr& node) {
  if (node->kind() == PlanNodeKind::kTableScan) {
    return static_cast<TableScanNode*>(node.get());
  }
  for (const PlanNodePtr& source : node->sources()) {
    if (TableScanNode* scan = FindScan(source)) return scan;
  }
  return nullptr;
}

// One remote input a fragment consumes: the upstream fragment id plus
// whether that upstream's output is hash-partitioned (each consuming task
// then reads its own partition) or gathered (partition 0).
struct RemoteInput {
  int fragment_id = 0;
  bool hash_partitioned = false;
};

void CollectRemoteInputs(const PlanNodePtr& node, std::vector<RemoteInput>* out) {
  if (node->kind() == PlanNodeKind::kRemoteSource) {
    const auto* remote = static_cast<const RemoteSourceNode*>(node.get());
    out->push_back({remote->fragment_id(),
                    remote->source_partitioning() ==
                        PartitioningScheme::Kind::kHash});
    return;
  }
  for (const PlanNodePtr& source : node->sources()) {
    CollectRemoteInputs(source, out);
  }
}

// Channel indices of the fragment's hash-partitioning keys within its output
// layout; empty for gather fragments.
Result<std::vector<int>> ResolveRouteChannels(const PlanFragment& fragment) {
  std::vector<int> channels;
  if (fragment.output_partitioning.kind != PartitioningScheme::Kind::kHash) {
    return channels;
  }
  std::vector<VariablePtr> outputs = fragment.root->OutputVariables();
  for (const VariablePtr& key : fragment.output_partitioning.hash_keys) {
    int channel = -1;
    for (size_t c = 0; c < outputs.size(); ++c) {
      if (outputs[c]->name() == key->name()) {
        channel = static_cast<int>(c);
        break;
      }
    }
    if (channel < 0) {
      return Status::Internal("partitioning key " + key->name() +
                              " missing from fragment " +
                              std::to_string(fragment.id) + " output");
    }
    channels.push_back(channel);
  }
  return channels;
}

// Leaf fragments ordered by when their exchanges are drained: joins consume
// their build side (sources[1]) to exhaustion before pulling the probe side.
// Leaf tasks run in bounded FIFO worker pools, so a probe-side producer
// blocked on a full bounded exchange must never be queued ahead of the
// build-side producers its consumer is still waiting for — dispatching leaf
// tasks in consumption order keeps the pools deadlock-free.
void LeafConsumptionOrder(const FragmentedPlan& plan, const PlanNodePtr& node,
                          std::vector<int>* order) {
  if (node->kind() == PlanNodeKind::kRemoteSource) {
    const auto* remote = static_cast<const RemoteSourceNode*>(node.get());
    const PlanFragment& upstream = plan.fragments[remote->fragment_id()];
    if (upstream.leaf) {
      order->push_back(upstream.id);
    } else {
      LeafConsumptionOrder(plan, upstream.root, order);
    }
    return;
  }
  if (node->kind() == PlanNodeKind::kJoin) {
    LeafConsumptionOrder(plan, node->sources()[1], order);
    LeafConsumptionOrder(plan, node->sources()[0], order);
    return;
  }
  for (const PlanNodePtr& source : node->sources()) {
    LeafConsumptionOrder(plan, source, order);
  }
}

// Wraps text (the plan rendering for EXPLAIN [ANALYZE]) as a one-column,
// one-row varchar result, mirroring Presto's "Query Plan" output column.
void SetTextResult(QueryResult* result, std::string text) {
  result->column_names = {"Query Plan"};
  result->column_types = {Type::Varchar()};
  result->pages.clear();
  result->pages.push_back(Page({MakeVarcharVector({std::move(text)})}));
  result->total_rows = 1;
}

}  // namespace

Result<FragmentedPlan> Coordinator::PlanQuery(const sql::Query& query,
                                              const Session& session) {
  sql::Analyzer analyzer(catalogs_, &session);
  ASSIGN_OR_RETURN(PlanNodePtr plan, analyzer.Analyze(query));
  Optimizer optimizer(catalogs_, &session, &analyzer.ids());
  ASSIGN_OR_RETURN(plan, optimizer.Optimize(std::move(plan)));
  FragmenterOptions fragmenter_options;
  fragmenter_options.multi_stage =
      session.Property("multi_stage_execution", "true") != "false";
  Fragmenter fragmenter(&analyzer.ids(), &FunctionRegistry::Default(),
                        fragmenter_options);
  return fragmenter.Fragment(std::move(plan));
}

Result<FragmentedPlan> Coordinator::PlanSql(const std::string& sql,
                                            const Session& session) {
  ASSIGN_OR_RETURN(sql::Query query, sql::ParseQuery(sql));
  return PlanQuery(query, session);
}

Result<std::string> Coordinator::ExplainSql(const std::string& sql,
                                            const Session& session) {
  ASSIGN_OR_RETURN(FragmentedPlan plan, PlanSql(sql, session));
  return plan.ToString();
}

Status Coordinator::RecordFailure(int64_t query_id, const Status& status,
                                  const MetricsRegistry* query_metrics) {
  queries_failed_.fetch_add(1);
  metrics_.Increment("coordinator.query.failed");
  // Failed queries return no QueryResult, so whatever counters the tasks
  // accumulated before the error ride along on the journal event instead —
  // this keeps failure diagnostics consistent with the success path.
  std::map<std::string, int64_t> counters;
  if (query_metrics != nullptr) counters = query_metrics->Snapshot();
  journal_.Record(query_id, QueryEventKind::kFailed, status.ToString(),
                  std::move(counters));
  return status;
}

bool Coordinator::OnMemoryPressure(int64_t requesting_query_id,
                                   int64_t bytes_requested) {
  int64_t victim_id = -1;
  int64_t victim_reserved = -1;
  std::string victim_group;
  {
    std::lock_guard<std::mutex> lock(active_mu_);
    // A kill already in flight is freeing memory as the victim unwinds; don't
    // stack a second victim. The requester retries — unless it *is* the
    // victim, in which case retrying is pointless (it observes its own flag).
    for (const auto& [id, query] : active_queries_) {
      if (query.killed->load(std::memory_order_relaxed)) {
        return id != requesting_query_id;
      }
    }
    const ActiveQuery* victim = nullptr;
    for (const auto& [id, query] : active_queries_) {
      int64_t reserved = query.pool->reserved_bytes();
      if (reserved > victim_reserved) {
        victim_reserved = reserved;
        victim_id = id;
        victim = &query;
      }
    }
    if (victim == nullptr || victim_reserved <= 0) return false;
    victim->killed->store(true, std::memory_order_relaxed);
    victim_group = victim->group;
  }
  // The flag alone suffices: operators poll it at every batch boundary, so
  // the victim unwinds (releasing its pools) without any exchange plumbing.
  metrics_.Increment("query.killed.memory");
  if (!victim_group.empty()) {
    metrics_.Increment("group." + victim_group + ".killed");
  }
  journal_.Record(victim_id, QueryEventKind::kKilledMemory,
                  "largest reservation under worker memory pressure",
                  {{"reserved_bytes", victim_reserved},
                   {"bytes_requested", bytes_requested},
                   {"requesting_query", requesting_query_id}});
  return victim_id != requesting_query_id;
}

Status Coordinator::AdmitQuery(int64_t query_id, const std::string& group,
                               int64_t query_queue_max,
                               int64_t deadline_steady_nanos,
                               int64_t* queued_nanos_out) {
  bool queued = false;
  Status st = groups_->TryAdmit(group, query_id, query_queue_max, &queued);
  if (!st.ok()) {
    // Load shed (kRejected): the group queue is full. The gateway treats
    // this as cluster overload — back off, don't blind-failover-hammer.
    metrics_.Increment("query.shed");
    journal_.Record(query_id, QueryEventKind::kShed, st.message(),
                    {{"group_running", groups_->running(group)},
                     {"group_queued", groups_->queued(group)}});
    return st;
  }
  if (!queued) return Status::OK();  // fast path: slot granted immediately
  metrics_.Increment("query.queued");
  journal_.Record(query_id, QueryEventKind::kQueued,
                  "waiting in resource group '" + group + "'",
                  {{"reserved_bytes", worker_pool_->reserved_bytes()},
                   {"group_running", groups_->running(group)},
                   {"group_queued", groups_->queued(group)}});
  // From here the query is genuinely waiting: time the wait into the
  // thread's blocked cell (kQueued) and, when tracing, record an admission
  // span under the query span installed by ExecutePlan.
  const int64_t wait_start = SteadyNowNanos();
  BlockedTimer blocked(BlockedKind::kQueued);
  TraceEventScope span(TraceKind::kAdmission, "group_queue_wait");
  st = groups_->Wait(group, query_id, deadline_steady_nanos);
  if (queued_nanos_out != nullptr) {
    *queued_nanos_out = SteadyNowNanos() - wait_start;
  }
  if (st.ok()) {
    journal_.Record(query_id, QueryEventKind::kAdmitted,
                    "weighted-fair promotion granted a slot in group '" +
                        group + "'");
  } else if (st.code() == StatusCode::kRejected) {
    // Queued-time deadline: stale work is shed rather than run long after
    // the client gave up on it.
    metrics_.Increment("query.shed");
    journal_.Record(query_id, QueryEventKind::kShed, st.message());
  } else {
    metrics_.Increment("query.timeout.queued");
    journal_.Record(query_id, QueryEventKind::kTimeoutQueued, st.message());
  }
  return st;
}

Result<QueryResult> Coordinator::ExecuteSql(const std::string& sql,
                                            const Session& session) {
  Stopwatch watch;
  int64_t query_id = next_query_id_.fetch_add(1);
  // Register the trace id and resource group before the first event so every
  // journal entry of this query (kCreated included) carries both.
  journal_.SetTraceId(query_id, MakeTraceId(query_id));
  journal_.SetResourceGroup(query_id, groups_->Resolve(session).name);
  journal_.Record(query_id, QueryEventKind::kCreated, sql);

  auto statement = sql::ParseStatement(sql);
  if (!statement.ok()) {
    return RecordFailure(query_id, statement.status(), nullptr);
  }

  if (statement->kind == sql::Statement::Kind::kQuery) {
    auto plan = PlanQuery(statement->query, session);
    if (!plan.ok()) return RecordFailure(query_id, plan.status(), nullptr);
    journal_.Record(query_id, QueryEventKind::kPlanned,
                    std::to_string(plan->fragments.size()) + " fragments");
    return ExecutePlan(query_id, *plan, session, watch, /*force_stats=*/false);
  }

  // EXPLAIN / EXPLAIN ANALYZE.
  auto plan = PlanQuery(statement->query, session);
  if (!plan.ok()) return RecordFailure(query_id, plan.status(), nullptr);
  journal_.Record(query_id, QueryEventKind::kPlanned,
                  std::to_string(plan->fragments.size()) + " fragments");

  if (statement->kind == sql::Statement::Kind::kExplain) {
    QueryResult result;
    result.query_id = query_id;
    result.trace_id = journal_.TraceIdFor(query_id);
    result.num_fragments = static_cast<int>(plan->fragments.size());
    SetTextResult(&result, plan->ToString());
    result.wall_millis = watch.ElapsedMillis();
    queries_completed_.fetch_add(1);
    metrics_.Increment("coordinator.query.completed");
    journal_.Record(query_id, QueryEventKind::kCompleted, "explain");
    return result;
  }

  // EXPLAIN ANALYZE: run the query (stats collection forced on even if the
  // session disabled query_stats), then re-render the fragmented plan with
  // each node annotated by its actual merged operator stats.
  auto executed = ExecutePlan(query_id, *plan, session, watch,
                              /*force_stats=*/true);
  if (!executed.ok()) return executed.status();
  QueryResult result = std::move(*executed);
  SetTextResult(&result, RenderPlanWithStats(*plan, result.stats));
  return result;
}

Result<QueryResult> Coordinator::ExecutePlan(int64_t query_id,
                                             const FragmentedPlan& fragmented,
                                             const Session& session,
                                             Stopwatch watch,
                                             bool force_stats) {
  // Per-query deadline (session query_timeout_millis), measured on the real
  // monotonic clock rather than the injected Clock: a wedged query under a
  // SimulatedClock nobody advances is exactly what the timeout must break.
  int64_t deadline_steady_nanos = 0;
  {
    std::string prop = session.Property("query_timeout_millis", "");
    if (!prop.empty()) {
      int64_t millis = std::strtoll(prop.c_str(), nullptr, 10);
      if (millis > 0) {
        deadline_steady_nanos = SteadyNowNanos() + millis * 1'000'000;
      }
    }
  }
  bool recovery_enabled =
      std::strtoll(session.Property("query_max_task_retries", "0").c_str(),
                   nullptr, 10) > 0;
  // One registry across attempts: counters (task retries, restart, partial
  // work of a failed first run) accumulate so the terminal journal event and
  // the result's exec_metrics reflect the whole recovery story.
  MetricsRegistry query_metrics;

  // -- Resource group resolution: every query belongs to exactly one group
  // (the resource_group session property, else the session's group name,
  // else the default). Journal events (stamped at kCreated) and the trace
  // root carry it.
  const ResourceGroupConfig& group = groups_->Resolve(session);

  // -- Tracing (session query_trace=true): one recorder per query, rooted at
  // a kQuery span. The context scope installs it on the coordinator thread;
  // task dispatch re-installs it on worker threads per attempt.
  const bool tracing = session.Property("query_trace", "false") == "true";
  TraceState trace_state;
  TraceState* trace = nullptr;
  if (tracing) {
    trace_state.recorder = std::make_shared<TraceRecorder>();
    std::string root_name = "query#" + std::to_string(query_id);
    if (groups_->enabled()) root_name += " group=" + group.name;
    trace_state.query_span = trace_state.recorder->BeginSpan(
        TraceKind::kQuery, root_name, 0);
    trace = &trace_state;
  }
  TraceContextScope trace_ctx(
      tracing ? trace_state.recorder.get() : nullptr,
      tracing ? trace_state.query_span : 0);

  // -- Admission control: a queued query holds no memory yet, so it waits
  // here, before its pools even exist.
  int64_t query_queue_max = std::strtoll(
      session.Property("query_queue_max", "64").c_str(), nullptr, 10);
  if (query_queue_max < 0) query_queue_max = 0;
  int64_t queued_nanos = 0;
  Status admitted = AdmitQuery(query_id, group.name, query_queue_max,
                               deadline_steady_nanos, &queued_nanos);
  if (queued_nanos > 0) {
    // Into the per-query registry now, so the exec_metrics snapshot taken at
    // the end of ExecutePlanOnce (and the slow-query event reusing it)
    // carries the admission share of the blocked-time breakdown.
    query_metrics.FindOrRegister("trace.blocked.queued.nanos")
        ->Add(queued_nanos);
  }
  if (!admitted.ok()) {
    if (admitted.message().find("query deadline exceeded") !=
        std::string::npos) {
      metrics_.Increment("query.timeout");
    }
    return RecordFailure(query_id, admitted, &query_metrics);
  }
  // Admitted: the group slot is held until every exit path below — the
  // guard returns it (waking promotion) and closes the group's completion
  // accounting, so concurrency quotas reconcile exactly even after
  // restarts, kills, and failures.
  struct AdmissionGuard {
    Coordinator* coordinator;
    std::string group;
    // Disarmed across the restart re-admission window (the slot is released
    // and re-acquired explicitly there); re-armed once re-admission succeeds.
    bool armed = true;
    ~AdmissionGuard() {
      if (!armed) return;
      coordinator->groups_->Release(group);
      coordinator->metrics_.Increment("group." + group + ".completed");
    }
  } admission_guard{this, group.name};

  // -- Per-query memory context: worker [-> group] -> query.<id> ->
  // {user, system}. The registration below makes the query visible to the
  // low-memory killer; the guard unregisters it on every exit path and
  // wakes queued queries.
  QueryMemoryContext memory_ctx;
  const QueryMemoryContext* memory = nullptr;
  struct ActiveGuard {
    Coordinator* coordinator;
    int64_t query_id;
    bool armed = false;
    ~ActiveGuard() {
      if (!armed) return;
      {
        std::lock_guard<std::mutex> lock(coordinator->active_mu_);
        coordinator->active_queries_.erase(query_id);
      }
      coordinator->groups_->NotifyCapacity();
    }
  } active_guard{this, query_id};
  if (session.Property("memory_accounting", "true") != "false") {
    int64_t query_max_memory = 1LL << 30;
    {
      std::string prop = session.Property("query_max_memory", "");
      if (!prop.empty()) {
        int64_t parsed = std::strtoll(prop.c_str(), nullptr, 10);
        if (parsed > 0) query_max_memory = parsed;
      }
    }
    // Query pools hang off the group's pool layer when resource groups are
    // enabled, so the group's memory_fraction cap bounds its tenants'
    // combined reservations (operators classify a group-cap failure like a
    // query-cap failure: spill or fail, never the cross-tenant killer).
    MemoryPool* pool_parent = worker_pool_.get();
    auto group_pool_it = group_pools_.find(group.name);
    if (group_pool_it != group_pools_.end()) {
      pool_parent = group_pool_it->second.get();
      memory_ctx.group = pool_parent;
    }
    memory_ctx.query =
        pool_parent->AddChild("query." + std::to_string(query_id));
    memory_ctx.user = memory_ctx.query->AddChild("user", query_max_memory);
    memory_ctx.system = memory_ctx.query->AddChild("system");
    memory_ctx.killed = std::make_shared<std::atomic<bool>>(false);
    memory_ctx.spill_enabled =
        session.Property("spill_enabled", "true") != "false";
    memory_ctx.spill_dir =
        session.Property("spill_path", "/tmp/presto_spill") + "/query-" +
        std::to_string(query_id);
    memory = &memory_ctx;
    {
      std::lock_guard<std::mutex> lock(active_mu_);
      active_queries_[query_id] =
          ActiveQuery{memory_ctx.query, memory_ctx.killed, group.name};
    }
    active_guard.armed = true;
  }

  auto attempt = ExecutePlanOnce(query_id, fragmented, session, watch,
                                 force_stats, deadline_steady_nanos,
                                 &query_metrics, memory, &group, trace);
  bool deadline_expired = deadline_steady_nanos > 0 &&
                          SteadyNowNanos() >= deadline_steady_nanos;
  if (!attempt.ok() && recovery_enabled && !deadline_expired &&
      IsRetryableStatus(attempt.status())) {
    // Leaf-task retry handles transient leaf failures surgically; transient
    // errors that still escape (intermediate stages fail fast by latching
    // their exchange — their upstream partitions are already partially
    // consumed, so re-running just that task would drop rows) are recovered
    // by restarting the whole query once.
    metrics_.Increment("query.restarted");
    query_metrics.Increment("query.restarted");
    journal_.Record(query_id, QueryEventKind::kRestarted,
                    attempt.status().ToString());
    // The restarted run re-enters its group's admission queue instead of
    // riding the first run's slot: release the slot (closing the first run's
    // admission accounting, and letting weighted-fair promotion schedule
    // someone else ahead of the re-run), then admit again. Every successful
    // admission is paired with exactly one release+completed, so
    // admitted == completed reconciles per group even through restarts.
    admission_guard.armed = false;
    groups_->Release(group.name);
    metrics_.Increment("group." + group.name + ".completed");
    Status readmitted = AdmitQuery(query_id, group.name, query_queue_max,
                                   deadline_steady_nanos);
    if (!readmitted.ok()) {
      if (readmitted.message().find("query deadline exceeded") !=
          std::string::npos) {
        metrics_.Increment("query.timeout");
      }
      return RecordFailure(query_id, readmitted, &query_metrics);
    }
    admission_guard.armed = true;
    attempt = ExecutePlanOnce(query_id, fragmented, session, watch, force_stats,
                              deadline_steady_nanos, &query_metrics, memory,
                              &group, trace);
  }
  if (!attempt.ok()) {
    if (attempt.status().message().find("query deadline exceeded") !=
        std::string::npos) {
      metrics_.Increment("query.timeout");
    }
    return RecordFailure(query_id, attempt.status(), &query_metrics);
  }
  attempt->trace_id = journal_.TraceIdFor(query_id);
  attempt->stats.queued_nanos = queued_nanos;

  // Latency histograms (coordinator registry, Prometheus-exported): query
  // end-to-end and admission wait always; per-stage and per-operator wall
  // time whenever stats were collected.
  metrics_.RecordHistogram(
      "query.latency.micros",
      static_cast<int64_t>(attempt->wall_millis * 1000.0));
  if (queued_nanos > 0) {
    metrics_.RecordHistogram("query.queued.micros", queued_nanos / 1000);
  }
  for (const StageStats& stage : attempt->stats.stages) {
    metrics_.RecordHistogram("stage.latency.micros", stage.wall_nanos / 1000);
  }
  for (const auto& [node_id, op] : attempt->stats.operators) {
    metrics_.RecordHistogram("operator.latency.micros", op.wall_nanos / 1000);
  }

  if (tracing) {
    trace_state.recorder->EndSpanWithArgs(
        trace_state.query_span,
        {{"queued_nanos", queued_nanos},
         {"output_rows", attempt->total_rows},
         {"tasks", attempt->num_tasks}});
    std::string trace_id = attempt->trace_id;
    attempt->trace_json =
        trace_state.recorder->ToChromeTraceJson(query_id, trace_id);
    attempt->trace_spans = trace_state.recorder->Snapshot();
  }
  return attempt;
}

Result<QueryResult> Coordinator::ExecutePlanOnce(
    int64_t query_id, const FragmentedPlan& fragmented, const Session& session,
    Stopwatch watch, bool force_stats, int64_t deadline_steady_nanos,
    MetricsRegistry* query_metrics, const QueryMemoryContext* memory,
    const ResourceGroupConfig* group, TraceState* trace) {
  QueryResult result;
  result.query_id = query_id;
  result.num_fragments = static_cast<int>(fragmented.fragments.size());

  // -- Stage setup: per-fragment exchanges, inputs, task counts. ----------------
  std::vector<std::shared_ptr<Worker>> workers = ActiveWorkers();

  // Target parallelism: every worker runs tasks_per_fragment tasks, and each
  // leaf task should get at least one split.
  size_t parallelism = std::max<size_t>(
      1, std::max<size_t>(workers.size(), 1) * options_.tasks_per_fragment);
  // Morsel-driven intra-task parallelism (session morsel_execution /
  // task_threads): tasks replicate their consume chains over a shared morsel
  // source instead of multiplying task counts, so under morsel mode each
  // worker runs one task per fragment and parallelism moves inside the task.
  const bool morsel_execution =
      session.Property("morsel_execution", "true") != "false";
  int task_threads = static_cast<int>(std::min<unsigned>(
      16, std::max<unsigned>(1, std::thread::hardware_concurrency())));
  {
    std::string prop = session.Property("task_threads", "");
    if (!prop.empty()) {
      task_threads = std::max<int>(
          1, static_cast<int>(std::strtoll(prop.c_str(), nullptr, 10)));
    }
  }
  if (!morsel_execution) task_threads = 1;
  // Soft degradation: before memory pressure reaches spill/queue/kill
  // territory, degradable groups (batch/adhoc) give up intra-task
  // parallelism. Fewer concurrent operator chains means a smaller working
  // set, trading batch latency for cluster headroom.
  if (group != nullptr && group->degradable && memory != nullptr &&
      task_threads > 1 &&
      worker_pool_->reserved_bytes() >=
          static_cast<int64_t>(options_.degrade_high_water *
                               static_cast<double>(options_.worker_memory_bytes))) {
    task_threads = 1;
    metrics_.Increment("group." + group->name + ".degraded");
    if (query_metrics != nullptr) query_metrics->Increment("query.degraded");
    journal_.Record(query_id, QueryEventKind::kDegraded,
                    "memory pressure shrank task_threads to 1",
                    {{"reserved_bytes", worker_pool_->reserved_bytes()}});
  }
  const size_t task_parallelism =
      morsel_execution ? std::max<size_t>(1, workers.size()) : parallelism;
  // Partition count of hash-partitioned stages (session hash_partition_count).
  int hash_partitions = static_cast<int>(parallelism);
  {
    std::string prop = session.Property("hash_partition_count", "");
    if (!prop.empty()) {
      hash_partitions = std::max<int>(
          1, static_cast<int>(std::strtoll(prop.c_str(), nullptr, 10)));
    }
  }
  // Per-exchange byte budget (session exchange_buffer_bytes): producers block
  // once an exchange buffers this much, so peak stays <= budget + one page.
  int64_t exchange_capacity = 32LL << 20;
  {
    std::string prop = session.Property("exchange_buffer_bytes", "");
    if (!prop.empty()) {
      int64_t parsed = std::strtoll(prop.c_str(), nullptr, 10);
      if (parsed > 0) exchange_capacity = parsed;
    }
  }
  // Spooled exchange (session exchange_spool): every page accepted into an
  // exchange is also written, snappy-compressed in the spill page encoding,
  // to a worker-local spool file. A lost intermediate task is then re-run
  // against the surviving upstream spools (stage re-run) instead of
  // restarting the whole query. The spool's bytes are capped per query
  // (exchange_spool_budget_bytes) and charged to the query's system pool.
  const bool exchange_spool =
      session.Property("exchange_spool", "false") == "true";
  int64_t spool_budget_bytes = 256LL << 20;
  {
    std::string prop = session.Property("exchange_spool_budget_bytes", "");
    if (!prop.empty()) {
      int64_t parsed = std::strtoll(prop.c_str(), nullptr, 10);
      if (parsed > 0) spool_budget_bytes = parsed;
    }
  }
  // Straggler speculation (session speculative_execution): once enough leaf
  // tasks of the query have completed, a task running past
  // quantile(speculation_quantile) * 2 of its siblings' durations gets a
  // duplicate attempt on another worker; the first attempt to commit wins
  // (attempt-id fencing at the exchange keeps publication exactly-once).
  const bool speculative_execution =
      session.Property("speculative_execution", "false") == "true";
  double speculation_quantile = 0.75;
  {
    std::string prop = session.Property("speculation_quantile", "");
    if (!prop.empty()) {
      double parsed = std::strtod(prop.c_str(), nullptr);
      if (parsed > 0.0 && parsed <= 1.0) speculation_quantile = parsed;
    }
  }

  // The per-query registry (owned by the ExecutePlan wrapper, shared across
  // restart attempts) is shared by every task; snapshotted into the result
  // after the root fragment drains.
  // Per-operator stats tree, merged across tasks keyed by plan node id.
  // Tracing implies stats: the Next() fast path for collect_stats=false
  // skips the blocked accounting and span plumbing entirely, so a traced
  // query must run with stats on for its spans to reconcile with anything.
  bool collect_stats = force_stats || trace != nullptr ||
                       session.Property("query_stats", "true") != "false";
  auto collector = std::make_shared<QueryStatsCollector>();
  ExecutionLimits limits;
  limits.metrics = query_metrics;
  limits.collect_stats = collect_stats;
  limits.deadline_steady_nanos = deadline_steady_nanos;
  {
    std::string max_build = session.Property("max_join_build_rows", "");
    if (!max_build.empty()) {
      limits.max_join_build_rows = std::strtoll(max_build.c_str(), nullptr, 10);
    }
    limits.vectorized_kernels =
        session.Property("vectorized_kernels", "true") != "false";
    limits.task_threads = task_threads;
    std::string morsel_rows = session.Property("morsel_rows", "");
    if (!morsel_rows.empty()) {
      int64_t parsed = std::strtoll(morsel_rows.c_str(), nullptr, 10);
      if (parsed > 0) limits.morsel_rows = static_cast<size_t>(parsed);
    }
    std::string quantum = session.Property("memory_reservation_quantum", "");
    if (!quantum.empty()) {
      int64_t parsed = std::strtoll(quantum.c_str(), nullptr, 10);
      if (parsed >= 0) limits.memory_quantum = parsed;
    }
  }
  if (memory != nullptr) {
    // Task pools are added per task inside run_task; everything else about
    // the memory hierarchy is shared across the query's tasks.
    limits.query_user_pool = memory->user.get();
    limits.query_group_pool = memory->group;
    limits.arbiter = this;
    limits.query_id = query_id;
    limits.query_killed = memory->killed;
    limits.spill_enabled = memory->spill_enabled;
    limits.spill_fs = spill_fs_.get();
    limits.spill_dir = memory->spill_dir;
  }

  // Leaf-task retry knobs. Retries buffer leaf output until the attempt
  // succeeds (so a half-run attempt never leaks pages into its exchange),
  // which is why the retry path is opt-in per session.
  int max_task_retries = static_cast<int>(std::strtoll(
      session.Property("query_max_task_retries", "0").c_str(), nullptr, 10));
  if (max_task_retries < 0) max_task_retries = 0;
  int64_t retry_backoff_millis = std::strtoll(
      session.Property("task_retry_backoff_millis", "2").c_str(), nullptr, 10);
  if (retry_backoff_millis < 0) retry_backoff_millis = 0;
  // Speculation also needs held-back output: two attempts of one task run
  // concurrently, and only the fence winner may publish.
  const bool buffer_leaf_output = max_task_retries > 0 || speculative_execution;
  // Stage re-runs get the same attempt budget as leaf retries (at least one
  // when spooling is on — the spool exists precisely to re-run stages).
  const int stage_rerun_budget =
      exchange_spool ? std::max(1, max_task_retries) : 0;
  const bool buffer_stage_output = stage_rerun_budget > 0;

  struct FragmentState {
    const PlanFragment* fragment = nullptr;
    std::vector<RemoteInput> inputs;
    // Output-layout channels of the hash-partitioning keys; empty = gather.
    std::vector<int> route_channels;
    int num_tasks = 1;
    std::unique_ptr<PartitionedExchange> exchange;  // null for the root
  };
  std::map<int, FragmentState> states;
  std::map<int, PartitionedExchange*> exchange_refs;
  std::map<int, std::vector<std::vector<SplitPtr>>> leaf_batches;
  auto stage_tracker = std::make_shared<StageTracker>();

  for (const PlanFragment& fragment : fragmented.fragments) {
    FragmentState& state = states[fragment.id];
    state.fragment = &fragment;
    CollectRemoteInputs(fragment.root, &state.inputs);
    if (fragment.id == 0) continue;  // root: one coordinator-side task

    if (fragment.leaf) {
      TableScanNode* scan = FindScan(fragment.root);
      if (scan == nullptr) {
        return Status::Internal("leaf fragment without a table scan");
      }
      auto connector = catalogs_->GetConnector(scan->catalog());
      if (!connector.ok()) {
        return connector.status();
      }
      auto splits = (*connector)->CreateSplits(scan->table_schema_name(),
                                               scan->table_name(),
                                               *scan->accepted(), parallelism);
      if (!splits.ok()) {
        return splits.status();
      }
      result.num_splits += static_cast<int>(splits->size());
      // Morsel mode keeps the split count (fine-grained morsels) but runs
      // one leaf task per worker: chains inside the task share the splits.
      size_t num_tasks = std::min<size_t>(
          std::max<size_t>(1, splits->size()), task_parallelism);
      // Round-robin splits across tasks.
      std::vector<std::vector<SplitPtr>> batches(num_tasks);
      for (size_t i = 0; i < splits->size(); ++i) {
        batches[i % num_tasks].push_back((*splits)[i]);
      }
      state.num_tasks = static_cast<int>(num_tasks);
      leaf_batches[fragment.id] = std::move(batches);
    } else {
      // Intermediate stage: one task per partition when any input is
      // hash-partitioned, else a single gather task.
      bool hash_input = false;
      for (const RemoteInput& input : state.inputs) {
        if (input.hash_partitioned) hash_input = true;
      }
      state.num_tasks = hash_input ? hash_partitions : 1;
    }

    auto route_channels = ResolveRouteChannels(fragment);
    if (!route_channels.ok()) {
      return route_channels.status();
    }
    state.route_channels = std::move(*route_channels);
    int exchange_partitions =
        fragment.output_partitioning.kind == PartitioningScheme::Kind::kHash
            ? hash_partitions
            : 1;
    state.exchange = std::make_unique<PartitionedExchange>(
        exchange_partitions, exchange_capacity, query_metrics);
    state.exchange->SetProducerCount(state.num_tasks);
    state.exchange->SetDeadlineNanos(deadline_steady_nanos);
    if (memory != nullptr) {
      // Exchange buffers live in the query's system subtree (uncapped at the
      // query level): a tiny query_max_memory squeezes operators into
      // spilling without starving shuffle buffers, while the worker cap
      // still sees every buffered byte.
      state.exchange->SetMemoryPool(memory->system->AddChild(
          "exchange." + std::to_string(fragment.id)));
    }
    if (exchange_spool) {
      // One spool per producing fragment, under the query's spill area; its
      // framed bytes are charged to the query's system pool like the exchange
      // buffers they shadow. Each restart attempt builds fresh spools (the
      // old ones are deleted with their exchange).
      std::string spool_dir =
          (memory != nullptr
               ? memory->spill_dir
               : "/tmp/presto_spool/query-" + std::to_string(query_id)) +
          "/spool-fragment-" + std::to_string(fragment.id);
      std::shared_ptr<MemoryPool> spool_pool;
      if (memory != nullptr) {
        spool_pool =
            memory->system->AddChild("spool." + std::to_string(fragment.id));
      }
      state.exchange->SetSpool(std::make_shared<ExchangeSpool>(
          spill_fs_.get(), std::move(spool_dir), exchange_partitions,
          query_metrics, std::move(spool_pool), spool_budget_bytes));
    }
    exchange_refs[fragment.id] = state.exchange.get();
    stage_tracker->remaining[fragment.id] = state.num_tasks;
  }

  // Stage spans, one per fragment under the query span, opened before any
  // task dispatches (so task spans always find their parent) and ended at
  // teardown once every task span has closed. Built up front: the map is
  // read-only — and so safely shared — once tasks are running.
  if (trace != nullptr) {
    for (const PlanFragment& fragment : fragmented.fragments) {
      trace->stage_spans[fragment.id] = trace->recorder->BeginSpan(
          TraceKind::kStage, "stage#" + std::to_string(fragment.id),
          trace->query_span);
    }
  }
  // Wraps one task attempt in a kTask span under its stage's span and
  // installs the trace context on the executing thread, so operator spans
  // opened inside the attempt nest under the task.
  auto traced_task = [trace](FragmentState* state, int partition, int attempt,
                             const std::function<Status()>& body) -> Status {
    TraceRecorder* rec = trace != nullptr ? trace->recorder.get() : nullptr;
    if (rec == nullptr) return body();
    int64_t parent = trace->query_span;
    auto it = trace->stage_spans.find(state->fragment->id);
    if (it != trace->stage_spans.end()) parent = it->second;
    std::string name = "fragment" + std::to_string(state->fragment->id) +
                       ".task" + std::to_string(partition);
    if (attempt > 0) name += ".attempt" + std::to_string(attempt);
    int64_t span = rec->BeginSpan(TraceKind::kTask, name, parent);
    Status st;
    {
      TraceContextScope scope(rec, span);
      st = body();
    }
    rec->EndSpanWithArgs(span, {{"ok", st.ok() ? 1 : 0},
                                {"partition", partition},
                                {"attempt", attempt}});
    return st;
  };

  // -- Task lists. --------------------------------------------------------------
  struct TaskSpec {
    FragmentState* state;
    std::vector<SplitPtr> splits;
    int partition;
  };
  // Intermediate stages run on dedicated worker threads: they are the
  // consumers that keep bounded exchanges draining, so they must never be
  // queued behind producer tasks in a bounded pool slot.
  std::vector<TaskSpec> stage_tasks;
  for (const PlanFragment& fragment : fragmented.fragments) {
    if (fragment.id == 0 || fragment.leaf) continue;
    FragmentState& state = states[fragment.id];
    for (int t = 0; t < state.num_tasks; ++t) {
      stage_tasks.push_back(TaskSpec{&state, {}, t});
    }
  }
  // Leaf tasks run in worker pool slots, dispatched in consumption order
  // (join build sides first — see LeafConsumptionOrder).
  std::vector<int> leaf_order;
  LeafConsumptionOrder(fragmented, fragmented.fragments[0].root, &leaf_order);
  for (const PlanFragment& fragment : fragmented.fragments) {
    if (!fragment.leaf) continue;
    bool seen = false;
    for (int id : leaf_order) seen = seen || id == fragment.id;
    if (!seen) leaf_order.push_back(fragment.id);
  }
  std::vector<TaskSpec> leaf_tasks;
  for (int fragment_id : leaf_order) {
    FragmentState& state = states[fragment_id];
    std::vector<std::vector<SplitPtr>>& batches = leaf_batches[fragment_id];
    for (size_t t = 0; t < batches.size(); ++t) {
      leaf_tasks.push_back(
          TaskSpec{&state, std::move(batches[t]), static_cast<int>(t)});
    }
  }
  result.num_tasks = static_cast<int>(leaf_tasks.size() + stage_tasks.size());

  auto latch = std::make_shared<TaskLatch>();
  latch->remaining = result.num_tasks;

  bool use_fragment_cache =
      session.Property("fragment_result_cache", "false") == "true";

  // Task body: build the fragment's operator tree and pump pages into its
  // exchange (hash-routed or gathered per the fragment's partitioning
  // scheme), consulting the fragment result cache first for leaf stages.
  //
  // Returns OK only after fully finalizing the producer slot (output pushed,
  // ProducerDone, inputs closed, stage accounting done). On failure it
  // returns the error WITHOUT touching the exchange: the caller either
  // retries the attempt (leaf tasks, when the error is transient), re-runs
  // the stage against upstream spools, or finalizes the slot as failed via
  // finalize_failed. With buffer_output the attempt's pages are held locally
  // and published only on success, so a half-run retryable attempt never
  // leaks rows downstream — and publication goes through the exchange's
  // attempt fence, so of two concurrent attempts (straggler speculation)
  // exactly one commits; the loser returns OK with *superseded_out = true
  // and must not be retried or finalized.
  auto run_task = [this, &exchange_refs, use_fragment_cache, limits,
                   collect_stats, collector, stage_tracker, query_id, memory](
                      FragmentState* state,
                      const std::vector<SplitPtr>& splits_in, int partition,
                      Worker* host, bool buffer_output, int attempt,
                      bool* superseded_out,
                      std::atomic<int64_t>* progress_rows) -> Status {
    Stopwatch task_watch;
    const PlanFragment* fragment = state->fragment;
    PartitionedExchange* out = state->exchange.get();
    auto push_output = [&](Page page) {
      // Gather (empty route_channels) also goes through PushPartitioned so
      // its pass-through pages tick the zero-copy counter.
      out->PushPartitioned(page, state->route_channels);
    };
    // Closing consumed partitions at exit (every completed path) releases
    // upstream producers blocked on bounded exchanges and cascades
    // early-exit cancellation down the plan.
    auto close_inputs = [&] {
      for (const RemoteInput& input : state->inputs) {
        auto it = exchange_refs.find(input.fragment_id);
        if (it == exchange_refs.end()) continue;
        it->second->ConsumerDone(
            input.hash_partitioned ? partition % it->second->num_partitions()
                                   : 0);
      }
    };
    auto finish_stage = [&] {
      if (stage_tracker->TaskDone(fragment->id)) {
        journal_.Record(query_id, QueryEventKind::kStageFinished,
                        "fragment " + std::to_string(fragment->id));
      }
    };
    // The host worker dying mid-task is the crash signal: the task aborts at
    // its next page boundary with kUnavailable, exactly like a remote task
    // whose worker process disappeared. The worker.kill fault point lets the
    // chaos tests script that death deterministically.
    auto check_host = [&]() -> Status {
      if (host == nullptr) return Status::OK();
      if (FaultInjector::Global().ShouldTrigger("worker.kill")) host->Kill();
      if (host->state() == WorkerState::kDead) {
        return Status::Unavailable("worker " + host->id() + " died mid-task");
      }
      return Status::OK();
    };
    std::string cache_key;
    bool cacheable = use_fragment_cache && fragment->leaf;
    if (cacheable) {
      cache_key = fragment->root->ToString();
      for (const SplitPtr& split : splits_in) {
        cache_key += "\n";
        cache_key += split->ToString();
      }
      if (auto hit = fragment_cache_.Get(cache_key)) {
        if (buffer_output && !out->TryCommitProducer(partition, attempt)) {
          if (superseded_out != nullptr) *superseded_out = true;
          return Status::OK();
        }
        for (const Page& page : **hit) {
          push_output(page);  // pages share immutable vectors
        }
        out->ProducerDone();
        close_inputs();
        if (collect_stats) {
          // No operators ran; record the task so stage task counts stay
          // truthful even when its pages came from the fragment cache.
          collector->AddTask(fragment->id, /*root_plan_node_id=*/-1, {},
                             task_watch.ElapsedNanos());
        }
        finish_stage();
        return Status::OK();
      }
    }
    RETURN_IF_ERROR(FaultInjector::Global().Hit("worker.task.body"));
    if (!fragment->leaf) {
      // Stage-scoped chaos hook: scripts "fail the Nth intermediate task"
      // deterministically — worker.task.body call order races the far more
      // numerous leaf bodies, so it cannot target a stage on purpose.
      RETURN_IF_ERROR(FaultInjector::Global().Hit("worker.task.stage"));
    }
    // The builder copies splits into the scan operator, so each retry
    // attempt rebuilds from the task's own (retained) split list.
    std::vector<SplitPtr> splits = splits_in;
    // Each task (and each retry attempt) gets its own pool under the query's
    // user subtree; operators hang their leaf pools off it, and destroying
    // the attempt's operator tree returns every byte.
    ExecutionLimits task_limits = limits;
    // Replicated chains borrow helper threads from the host worker's local
    // pool; a task running on a query-owned fallback thread has no pool and
    // its chains run serially on the task thread (correct, just unhelped).
    task_limits.morsel_pool = host != nullptr ? host->morsel_pool() : nullptr;
    if (memory != nullptr) {
      task_limits.task_pool = memory->user->AddChild(
          "task." + std::to_string(fragment->id) + "." +
          std::to_string(partition));
    }
    OperatorBuilder builder(catalogs_, &FunctionRegistry::Default(),
                            &exchange_refs, &splits, task_limits, partition);
    auto op = builder.Build(fragment->root);
    if (!op.ok()) return op.status();
    std::vector<Page> produced;   // for the fragment result cache
    std::vector<Page> buffered;   // held-back output when retries are armed
    bool truncated = false;
    while (true) {
      if (out->AllConsumersDone()) {
        // Downstream cancelled (e.g. a satisfied LIMIT): stop producing.
        truncated = true;
        break;
      }
      RETURN_IF_ERROR(check_host());
      // Deterministic straggler hook for the speculation tests: a triggered
      // first attempt stalls as a slow host would, while its duplicate
      // attempt (dispatched elsewhere) runs at full speed.
      if (attempt == 0 &&
          FaultInjector::Global().ShouldTrigger("worker.task.straggle")) {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
      }
      auto page = (*op)->Next();
      if (!page.ok()) return page.status();
      if (!page->has_value()) break;
      if (progress_rows != nullptr) {
        progress_rows->fetch_add(static_cast<int64_t>((*page)->num_rows()),
                                 std::memory_order_relaxed);
      }
      if (cacheable) produced.push_back(**page);
      if (buffer_output) {
        buffered.push_back(std::move(**page));
      } else {
        push_output(std::move(**page));
      }
    }
    // Success: publish and finalize the producer slot — through the attempt
    // fence when output was held back, so a speculative sibling that already
    // committed turns this attempt into a discarded no-op.
    if (buffer_output && !out->TryCommitProducer(partition, attempt)) {
      if (superseded_out != nullptr) *superseded_out = true;
      return Status::OK();
    }
    for (Page& page : buffered) push_output(std::move(page));
    if (cacheable && !truncated) {
      int64_t cache_weight = 0;
      for (const Page& page : produced) cache_weight += page.EstimateBytes();
      fragment_cache_.Put(cache_key,
                          std::make_shared<const std::vector<Page>>(
                              std::move(produced)),
                          cache_weight);
    }
    out->ProducerDone();
    close_inputs();
    if (collect_stats) {
      std::vector<OperatorStats> ops;
      (*op)->CollectStats(&ops);
      collector->AddTask(fragment->id, (*op)->stats().plan_node_id, ops,
                         task_watch.ElapsedNanos());
    }
    finish_stage();
    return Status::OK();
  };

  // Terminal failure of a task slot: latch the error into the fragment's
  // exchange (consumers see it instead of hanging), release the producer
  // slot, and keep the input/stage accounting consistent with success. The
  // terminal failure goes through the same attempt fence as success — if a
  // speculative sibling already committed the slot, there is nothing left to
  // finalize and the failure is moot.
  auto finalize_failed = [this, &exchange_refs, stage_tracker, query_id](
                             FragmentState* state, int partition,
                             const Status& st, int attempt, bool fenced) {
    PartitionedExchange* out = state->exchange.get();
    if (fenced && !out->TryCommitProducer(partition, attempt)) return;
    out->Fail(st);
    out->ProducerDone();
    for (const RemoteInput& input : state->inputs) {
      auto it = exchange_refs.find(input.fragment_id);
      if (it == exchange_refs.end()) continue;
      it->second->ConsumerDone(
          input.hash_partitioned ? partition % it->second->num_partitions()
                                 : 0);
    }
    if (stage_tracker->TaskDone(state->fragment->id)) {
      journal_.Record(query_id, QueryEventKind::kStageFinished,
                      "fragment " + std::to_string(state->fragment->id) +
                          " (failed: " + st.ToString() + ")");
    }
  };

  journal_.Record(query_id, QueryEventKind::kScheduled,
                  std::to_string(result.num_tasks) + " tasks, " +
                      std::to_string(result.num_splits) + " splits");

  // -- Dispatch: round-robin across active workers. -----------------------------
  // Tasks refused by every worker (embedded mode, or every worker draining)
  // run on query-owned threads: inline execution would deadlock, because a
  // producer can block on a bounded exchange before its consumer ever runs.
  // Retried leaf tasks resubmit concurrently from worker threads, so the
  // fallback-thread list is mutex-protected.
  std::vector<std::thread> local_threads;
  std::mutex local_mu;
  auto add_local = [&local_threads, &local_mu](std::function<void()> body) {
    std::lock_guard<std::mutex> lock(local_mu);
    local_threads.emplace_back(std::move(body));
  };
  auto next_worker = std::make_shared<std::atomic<size_t>>(0);

  // Liveness sweep, run before each retry dispatch: heartbeat every member;
  // a worker that stopped answering is blacklisted (journaled once per
  // coordinator) and — no longer ACTIVE — drops out of scheduling.
  auto blacklist_dead_workers = [this, query_id, query_metrics] {
    std::vector<std::shared_ptr<Worker>> members;
    {
      std::lock_guard<std::mutex> lock(mu_);
      members = workers_;
    }
    for (const auto& member : members) {
      if (member->Heartbeat()) continue;
      bool fresh = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        fresh = blacklisted_.insert(member->id()).second;
      }
      if (fresh) {
        metrics_.Increment("worker.blacklisted");
        query_metrics->Increment("worker.blacklisted");
        journal_.Record(query_id, QueryEventKind::kWorkerBlacklisted,
                        member->id());
      }
    }
  };

  // Intermediate stages run on dedicated worker threads (always-running
  // consumers that keep the bounded exchanges draining). Without a spool
  // they fail fast: their upstream partitions are already partially
  // consumed, so the recovery unit is the whole query (ExecutePlan's
  // restart). With exchange_spool armed, a stage task that fails with a
  // retryable status is instead re-run in place: its input partitions flip
  // to replay mode (the replacement attempt streams the complete partition
  // history from the upstream spools) and its held-back output means the
  // failed attempt leaked nothing downstream. Replay unavailable (spool
  // broken, budget blown) falls through to the fail-fast path — the ladder's
  // next rung is restart-once.
  struct StageTask {
    FragmentState* state = nullptr;
    int partition = 0;
    int attempt = 0;
  };
  auto run_stage_attempt = std::make_shared<
      std::function<void(std::shared_ptr<StageTask>, Worker*)>>();
  auto submit_stage =
      std::make_shared<std::function<void(std::shared_ptr<StageTask>)>>();
  *run_stage_attempt = [&](std::shared_ptr<StageTask> task, Worker* host) {
    static const std::vector<SplitPtr> kNoSplits;
    bool superseded = false;
    Status st = traced_task(task->state, task->partition, task->attempt, [&] {
      return run_task(task->state, kNoSplits, task->partition, host,
                      buffer_stage_output, task->attempt, &superseded,
                      /*progress_rows=*/nullptr);
    });
    if (st.ok()) {
      latch->Done();
      return;
    }
    bool deadline_expired = deadline_steady_nanos > 0 &&
                            SteadyNowNanos() >= deadline_steady_nanos;
    if (IsRetryableStatus(st) && task->attempt < stage_rerun_budget &&
        !deadline_expired) {
      // Flip every input partition this task consumes to replay mode. All
      // must succeed — a partially replayable input set would re-run the
      // task against a mix of replayed and already-consumed streams.
      Status reset = Status::OK();
      for (const RemoteInput& input : task->state->inputs) {
        auto it = exchange_refs.find(input.fragment_id);
        if (it == exchange_refs.end()) continue;
        reset = it->second->ResetPartitionForReplay(
            input.hash_partitioned
                ? task->partition % it->second->num_partitions()
                : 0);
        if (!reset.ok()) break;
      }
      if (reset.ok()) {
        ++task->attempt;
        metrics_.Increment("stage.rerun.count");
        query_metrics->Increment("stage.rerun.count");
        journal_.Record(
            query_id, QueryEventKind::kStageRerun,
            "fragment " + std::to_string(task->state->fragment->id) +
                " partition " + std::to_string(task->partition) +
                " attempt " + std::to_string(task->attempt) +
                " replaying upstream spools: " + st.ToString());
        blacklist_dead_workers();
        (*submit_stage)(task);
        return;
      }
    }
    finalize_failed(task->state, task->partition, st, task->attempt,
                    buffer_stage_output);
    latch->Done();
  };
  *submit_stage = [this, &add_local, run_stage_attempt, next_worker, &workers](
                      std::shared_ptr<StageTask> task) {
    // Re-runs prefer the healthy-worker snapshot (the failed host may have
    // just been blacklisted); first attempts use the dispatch-time list.
    std::vector<std::shared_ptr<Worker>> healthy =
        task->attempt == 0 ? workers : ActiveWorkers();
    for (size_t i = 0; i < healthy.size(); ++i) {
      auto& worker = healthy[next_worker->fetch_add(1) % healthy.size()];
      Worker* host = worker.get();
      bool submitted = worker->SubmitDedicatedTask(
          [run_stage_attempt, task, host] { (*run_stage_attempt)(task, host); });
      if (submitted) return;
    }
    add_local([run_stage_attempt, task] { (*run_stage_attempt)(task, nullptr); });
  };
  for (TaskSpec& task : stage_tasks) {
    auto stage_task = std::make_shared<StageTask>();
    stage_task->state = task.state;
    stage_task->partition = task.partition;
    (*submit_stage)(stage_task);
  }

  // Leaf tasks are the retry unit: an attempt that fails with a retryable
  // status (kUnavailable/kIoError — S3 throttle, dead worker, injected
  // fault) re-dispatches onto a fresh healthy-worker snapshot after a capped
  // exponential backoff with jitter. Output buffering above guarantees the
  // exchange saw nothing from the failed attempt. The two recursive bodies
  // live behind shared_ptr<std::function> so a resubmitted attempt can name
  // them from whichever worker thread it lands on; every frame reference
  // ([&]) stays valid because the latch holds this frame alive until the
  // final attempt of every task has finished.
  struct LeafTask {
    FragmentState* state = nullptr;
    std::vector<SplitPtr> splits;
    int partition = 0;
    int attempt = 0;
    // -- speculation bookkeeping (read by the monitor thread) --
    std::atomic<int64_t> start_nanos{0};      // first attempt began (0 = not yet)
    std::atomic<int64_t> duration_nanos{0};   // set when the task finished
    std::atomic<bool> finished{false};
    std::atomic<bool> speculated{false};      // duplicate attempt launched
    std::shared_ptr<std::atomic<int64_t>> progress_rows =
        std::make_shared<std::atomic<int64_t>>(0);
  };
  // Speculative duplicate attempts use ids far above the retry range so an
  // attempt id names its provenance in traces and fence decisions.
  constexpr int kSpeculativeAttemptBase = 100;
  auto backoff_rng = std::make_shared<Random>(static_cast<uint64_t>(query_id));
  auto backoff_mu = std::make_shared<std::mutex>();
  auto run_leaf_attempt = std::make_shared<
      std::function<void(std::shared_ptr<LeafTask>, Worker*)>>();
  auto submit_leaf =
      std::make_shared<std::function<void(std::shared_ptr<LeafTask>)>>();
  // run_leaf_attempt reaches submit_leaf through the frame ([&]), not an
  // owning copy: each owning the other's shared_ptr would be a reference
  // cycle that leaks both function objects.
  *run_leaf_attempt = [&, backoff_rng, backoff_mu](
                          std::shared_ptr<LeafTask> task, Worker* host) {
    int64_t expected_start = 0;
    task->start_nanos.compare_exchange_strong(expected_start, SteadyNowNanos());
    bool superseded = false;
    Status st = traced_task(task->state, task->partition, task->attempt, [&] {
      return run_task(task->state, task->splits, task->partition, host,
                      buffer_leaf_output, task->attempt, &superseded,
                      task->progress_rows.get());
    });
    // Mark completion for the speculation monitor on every terminal path
    // below (success, superseded, exhausted retries) — not on a retryable
    // failure that resubmits.
    auto mark_finished = [&task] {
      task->duration_nanos.store(SteadyNowNanos() -
                                 task->start_nanos.load());
      task->finished.store(true);
    };
    if (superseded) {
      // The speculative duplicate won the fence: this attempt's work is
      // discarded, the winner already finalized the slot.
      mark_finished();
      latch->Done();
      return;
    }
    if (st.ok()) {
      mark_finished();
      latch->Done();
      return;
    }
    bool deadline_expired = deadline_steady_nanos > 0 &&
                            SteadyNowNanos() >= deadline_steady_nanos;
    if (IsRetryableStatus(st) && task->attempt < max_task_retries &&
        !deadline_expired) {
      ++task->attempt;
      metrics_.Increment("task.retry.count");
      query_metrics->Increment("task.retry.count");
      journal_.Record(
          query_id, QueryEventKind::kTaskRetried,
          "fragment " + std::to_string(task->state->fragment->id) +
              " partition " + std::to_string(task->partition) + " attempt " +
              std::to_string(task->attempt) + ": " + st.ToString());
      blacklist_dead_workers();
      // Capped exponential backoff with jitter: uniform in [ceiling/2,
      // ceiling] where ceiling doubles per attempt up to 64x the base.
      int64_t ceiling_millis =
          retry_backoff_millis << std::min(task->attempt - 1, 6);
      int64_t delay_millis = 0;
      if (ceiling_millis > 0) {
        std::lock_guard<std::mutex> lock(*backoff_mu);
        delay_millis = backoff_rng->NextInRange((ceiling_millis + 1) / 2,
                                                ceiling_millis);
      }
      if (delay_millis > 0) {
        // Backoff span parented to the stage (no task context is live here —
        // the failed attempt's span already closed), so retry gaps show up
        // between the attempt spans in the trace timeline.
        int64_t backoff_span = 0;
        TraceRecorder* rec = trace != nullptr ? trace->recorder.get() : nullptr;
        if (rec != nullptr) {
          auto it = trace->stage_spans.find(task->state->fragment->id);
          backoff_span = rec->BeginSpan(
              TraceKind::kRetryBackoff, "task_retry_backoff",
              it != trace->stage_spans.end() ? it->second : trace->query_span);
        }
        // The backoff sleep honors query_timeout_millis: wake at the query
        // deadline if it lands inside the delay, so a long backoff ladder
        // can never hold a timed-out query alive past its deadline.
        auto wake = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(delay_millis);
        if (deadline_steady_nanos > 0) {
          auto deadline_tp = std::chrono::steady_clock::time_point(
              std::chrono::nanoseconds(deadline_steady_nanos));
          if (deadline_tp < wake) wake = deadline_tp;
        }
        std::this_thread::sleep_until(wake);
        if (rec != nullptr) {
          rec->EndSpanWithArgs(backoff_span,
                               {{"delay_millis", delay_millis},
                                {"attempt", task->attempt}});
        }
      }
      if (deadline_steady_nanos > 0 &&
          SteadyNowNanos() >= deadline_steady_nanos) {
        // Deadline hit during (or before) the backoff: finalize with the
        // canonical timeout status instead of burning another attempt.
        mark_finished();
        finalize_failed(
            task->state, task->partition,
            Status::Unavailable("query deadline exceeded (query_timeout_millis)"),
            task->attempt, buffer_leaf_output);
        latch->Done();
        return;
      }
      (*submit_leaf)(task);
      return;
    }
    mark_finished();
    finalize_failed(task->state, task->partition, st, task->attempt,
                    buffer_leaf_output);
    latch->Done();
  };
  *submit_leaf = [this, &add_local, run_leaf_attempt, next_worker](
                     std::shared_ptr<LeafTask> task) {
    std::vector<std::shared_ptr<Worker>> healthy = ActiveWorkers();
    for (size_t i = 0; i < healthy.size(); ++i) {
      auto& worker = healthy[next_worker->fetch_add(1) % healthy.size()];
      Worker* host = worker.get();
      auto body = [run_leaf_attempt, task, host] {
        (*run_leaf_attempt)(task, host);
      };
      // First attempts ride pool slots in consumption order (see
      // LeafConsumptionOrder). A retry re-enters the queue out of order: in
      // a pool slot it could sit behind probe-side producers blocked on a
      // bounded exchange whose consumer is still waiting for this very
      // build-side task — a deadlock — so retries get a dedicated thread.
      bool submitted = task->attempt == 0 ? worker->SubmitTask(body)
                                          : worker->SubmitDedicatedTask(body);
      if (submitted) return;
    }
    // No healthy worker accepted the task: run it on a query-owned thread.
    add_local(
        [run_leaf_attempt, task] { (*run_leaf_attempt)(task, nullptr); });
  };
  std::vector<std::shared_ptr<LeafTask>> all_leaf_tasks;
  all_leaf_tasks.reserve(leaf_tasks.size());
  for (TaskSpec& task : leaf_tasks) {
    auto leaf = std::make_shared<LeafTask>();
    leaf->state = task.state;
    leaf->splits = std::move(task.splits);
    leaf->partition = task.partition;
    all_leaf_tasks.push_back(leaf);
    (*submit_leaf)(leaf);
  }

  // -- Straggler speculation monitor. -------------------------------------------
  // Watches leaf-task progress from a coordinator-side thread. Once at least
  // half the leaf tasks have completed, a task still running past
  // quantile(completed durations) * 2 (plus a floor that keeps trivial
  // queries from speculating on noise) gets one duplicate attempt on another
  // worker. Both attempts race to the exchange's attempt fence; the loser
  // discards its output. The monitor is stopped and joined before the drain
  // barrier waits on the latch, so its latch->Add() calls are ordered before
  // the final Wait().
  auto spec_stop = std::make_shared<std::atomic<bool>>(false);
  std::thread spec_monitor;
  if (speculative_execution && !all_leaf_tasks.empty()) {
    spec_monitor = std::thread([&, spec_stop] {
      constexpr int64_t kSpeculationFloorNanos = 25'000'000;  // 25ms
      const size_t n = all_leaf_tasks.size();
      while (!spec_stop->load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::vector<int64_t> durations;
        for (const auto& task : all_leaf_tasks) {
          if (task->finished.load()) {
            durations.push_back(task->duration_nanos.load());
          }
        }
        if (durations.empty() || durations.size() * 2 < n) continue;
        std::sort(durations.begin(), durations.end());
        const size_t idx = static_cast<size_t>(
            speculation_quantile * static_cast<double>(durations.size() - 1));
        const int64_t threshold = durations[idx] * 2 + kSpeculationFloorNanos;
        const int64_t now = SteadyNowNanos();
        for (const auto& task : all_leaf_tasks) {
          if (task->finished.load() || task->speculated.load()) continue;
          const int64_t start = task->start_nanos.load();
          if (start == 0 || now - start < threshold) continue;
          if (task->speculated.exchange(true)) continue;
          latch->Add(1);
          metrics_.Increment("task.speculative.launched");
          query_metrics->Increment("task.speculative.launched");
          journal_.Record(
              query_id, QueryEventKind::kTaskSpeculated,
              "fragment " + std::to_string(task->state->fragment->id) +
                  " partition " + std::to_string(task->partition) +
                  " running " + std::to_string((now - start) / 1'000'000) +
                  "ms against threshold " +
                  std::to_string(threshold / 1'000'000) + "ms");
          if (trace != nullptr) {
            auto it = trace->stage_spans.find(task->state->fragment->id);
            int64_t span = trace->recorder->BeginSpan(
                TraceKind::kSpeculation, "speculative_attempt",
                it != trace->stage_spans.end() ? it->second
                                               : trace->query_span);
            trace->recorder->EndSpanWithArgs(
                span, {{"partition", task->partition},
                       {"elapsed_millis", (now - start) / 1'000'000},
                       {"threshold_millis", threshold / 1'000'000},
                       {"progress_rows", task->progress_rows->load()}});
          }
          // The duplicate attempt never retries and never finalizes the slot
          // as failed — the original attempt owns the failure path; the
          // duplicate either wins the fence or is discarded.
          std::shared_ptr<LeafTask> original = task;
          auto spec_run = [&, original](Worker* host) {
            bool superseded = false;
            Status st = traced_task(
                original->state, original->partition, kSpeculativeAttemptBase,
                [&] {
                  return run_task(original->state, original->splits,
                                  original->partition, host,
                                  /*buffer_output=*/true,
                                  kSpeculativeAttemptBase, &superseded,
                                  /*progress_rows=*/nullptr);
                });
            const char* outcome = superseded ? "task.speculative.wasted"
                                 : st.ok()  ? "task.speculative.won"
                                            : "task.speculative.failed";
            metrics_.Increment(outcome);
            query_metrics->Increment(outcome);
            latch->Done();
          };
          bool dispatched = false;
          std::vector<std::shared_ptr<Worker>> healthy = ActiveWorkers();
          for (size_t i = 0; i < healthy.size() && !dispatched; ++i) {
            auto& worker =
                healthy[next_worker->fetch_add(1) % healthy.size()];
            Worker* host = worker.get();
            dispatched = worker->SubmitDedicatedTask(
                [spec_run, host] { spec_run(host); });
          }
          if (!dispatched) {
            add_local([spec_run] { spec_run(nullptr); });
          }
        }
      }
    });
  }

  // Teardown helpers: close every exchange partition (turning any further
  // production into drops and waking blocked producers), then wait for all
  // tasks — including in-flight retries — to fully exit before the
  // exchanges go out of scope.
  auto shutdown_exchanges = [&] {
    for (auto& [id, state] : states) {
      if (state.exchange != nullptr) state.exchange->CloseAllPartitions();
    }
  };
  auto finish_tasks = [&] {
    // Stop the speculation monitor before waiting on the latch: after the
    // join no further latch->Add() (or dispatch) can happen, so the barrier
    // below observes a stable attempt count.
    if (spec_monitor.joinable()) {
      spec_stop->store(true);
      spec_monitor.join();
    }
    latch->Wait();
    std::lock_guard<std::mutex> lock(local_mu);
    for (std::thread& thread : local_threads) thread.join();
    local_threads.clear();
  };

  // -- Run the root fragment on the coordinator. --------------------------------
  const PlanFragment& root = fragmented.fragments[0];
  Stopwatch root_watch;
  ExecutionLimits root_limits = limits;
  root_limits.morsel_pool = root_morsel_pool_.get();
  if (memory != nullptr) {
    root_limits.task_pool = memory->user->AddChild("task.root");
  }
  OperatorBuilder builder(catalogs_, &FunctionRegistry::Default(), &exchange_refs,
                          nullptr, root_limits);
  auto root_op = builder.Build(root.root);
  if (!root_op.ok()) {
    shutdown_exchanges();
    finish_tasks();
    return root_op.status();
  }
  // The root task span lives under stage#0 like any remote task's would;
  // operator spans of the root fragment nest under it via the context scope.
  TraceRecorder* root_rec = trace != nullptr ? trace->recorder.get() : nullptr;
  int64_t root_task_span = 0;
  if (root_rec != nullptr) {
    root_task_span = root_rec->BeginSpan(
        TraceKind::kTask, "fragment" + std::to_string(root.id) + ".task0",
        trace->stage_spans.count(root.id) > 0 ? trace->stage_spans[root.id]
                                              : trace->query_span);
  }
  Status drained = Status::OK();
  {
    TraceContextScope root_scope(root_rec, root_task_span);
    while (true) {
      auto page = (*root_op)->Next();
      if (!page.ok()) {
        drained = page.status();
        break;
      }
      if (!page->has_value()) break;
      result.total_rows += static_cast<int64_t>((*page)->num_rows());
      result.pages.push_back(std::move(**page));
    }
  }
  if (root_rec != nullptr) {
    root_rec->EndSpanWithArgs(root_task_span, {{"ok", drained.ok() ? 1 : 0}});
  }
  if (!drained.ok()) {
    shutdown_exchanges();
    finish_tasks();
    return drained;
  }
  // Cancel whatever upstream production the root no longer needs (LIMIT-style
  // early exit), then wait for every producer task to fully exit before the
  // exchanges go away.
  shutdown_exchanges();
  finish_tasks();
  // Every task span is closed once the latch clears, so ending the stage
  // spans here keeps them temporal supersets of their children (a stage span
  // ended from inside the last task would close before that task's own span).
  if (trace != nullptr) {
    for (const auto& [fragment_id, span_id] : trace->stage_spans) {
      trace->recorder->EndSpan(span_id);
    }
  }

  // The exchange.* counters accumulate per-page; the high-water mark is
  // per-exchange state, surfaced as the max across the query's exchanges.
  int64_t peak_exchange_bytes = 0;
  for (auto& [id, state] : states) {
    if (state.exchange != nullptr) {
      peak_exchange_bytes = std::max(peak_exchange_bytes,
                                     state.exchange->peak_buffered_bytes());
    }
  }
  query_metrics->FindOrRegister("exchange.peak_buffered_bytes")
      ->Add(peak_exchange_bytes);
  if (memory != nullptr) {
    // Query-level memory high-water mark (user + system subtrees). On the
    // rare restarted query this accumulates one value per attempt, matching
    // how every other counter in the shared registry behaves.
    query_metrics->FindOrRegister("memory.query.peak_bytes")
        ->Add(memory->query->peak_bytes());
  }

  if (collect_stats) {
    std::vector<OperatorStats> ops;
    (*root_op)->CollectStats(&ops);
    collector->AddTask(root.id, (*root_op)->stats().plan_node_id, ops,
                       root_watch.ElapsedNanos());
    for (auto& [id, state] : states) {
      if (state.exchange != nullptr) {
        collector->SetStageExchange(id, state.exchange->num_partitions(),
                                    state.exchange->bytes_pushed());
      }
    }
    result.stats = collector->Finish();
    // Blocked-time breakdown totals into the per-query registry, before the
    // exec_metrics snapshot below so the slow-query event (which reuses that
    // snapshot) carries them. Like total_wall_nanos, these sum operator
    // Next()-frame time: a parent frame includes the children it pulled.
    int64_t exchange_wait = 0;
    int64_t spill_io = 0;
    int64_t memory_wait = 0;
    int64_t spill_write = 0;
    int64_t spill_read = 0;
    for (const auto& [node_id, op] : result.stats.operators) {
      exchange_wait += op.exchange_wait_nanos;
      spill_io += op.spill_io_nanos;
      memory_wait += op.memory_wait_nanos;
      spill_write += op.spill_write_bytes;
      spill_read += op.spill_read_bytes;
    }
    if (exchange_wait > 0) {
      query_metrics->FindOrRegister("trace.blocked.exchange_wait.nanos")
          ->Add(exchange_wait);
    }
    if (spill_io > 0) {
      query_metrics->FindOrRegister("trace.blocked.spill_io.nanos")
          ->Add(spill_io);
    }
    if (memory_wait > 0) {
      query_metrics->FindOrRegister("trace.blocked.memory_wait.nanos")
          ->Add(memory_wait);
    }
    if (spill_write > 0) {
      query_metrics->FindOrRegister("trace.spill.write_bytes")->Add(spill_write);
    }
    if (spill_read > 0) {
      query_metrics->FindOrRegister("trace.spill.read_bytes")->Add(spill_read);
    }
  }
  result.exec_metrics = query_metrics->Snapshot();
  {
    int64_t spill_runs = 0;
    int64_t spill_bytes = 0;
    auto it = result.exec_metrics.find("spill.run.written");
    if (it != result.exec_metrics.end()) spill_runs = it->second;
    it = result.exec_metrics.find("spill.byte.written");
    if (it != result.exec_metrics.end()) spill_bytes = it->second;
    if (spill_runs > 0) {
      journal_.Record(query_id, QueryEventKind::kOperatorSpilled,
                      std::to_string(spill_runs) + " runs under memory pressure",
                      {{"spill.run.written", spill_runs},
                       {"spill.byte.written", spill_bytes}});
    }
  }
  // The root stage is finished once its fragment has drained — journaled
  // unconditionally so the lifecycle is complete even with query_stats=false.
  journal_.Record(query_id, QueryEventKind::kStageFinished,
                  "fragment " + std::to_string(root.id));

  // Output metadata.
  if (root.root->kind() == PlanNodeKind::kOutput) {
    const auto* output = static_cast<const OutputNode*>(root.root.get());
    result.column_names = output->column_names();
    for (const VariablePtr& v : output->OutputVariables()) {
      result.column_types.push_back(v->type());
    }
  }
  result.wall_millis = watch.ElapsedMillis();
  queries_completed_.fetch_add(1);
  metrics_.Increment("coordinator.query.completed");
  journal_.Record(query_id, QueryEventKind::kCompleted,
                  std::to_string(result.total_rows) + " rows",
                  {{"output_rows", result.total_rows},
                   {"tasks", result.num_tasks},
                   {"splits", result.num_splits},
                   {"wall_micros", watch.ElapsedNanos() / 1000}});

  // Slow-query log: queries whose wall time crosses the session threshold
  // journal a slow_query event carrying the full per-query counter snapshot.
  std::string slow_millis = session.Property("slow_query_millis", "");
  if (!slow_millis.empty()) {
    int64_t threshold = std::strtoll(slow_millis.c_str(), nullptr, 10);
    if (threshold >= 0 && result.wall_millis >= static_cast<double>(threshold)) {
      metrics_.Increment("coordinator.query.slow");
      journal_.Record(query_id, QueryEventKind::kSlowQuery,
                      "wall_millis above threshold " + slow_millis,
                      result.exec_metrics);
    }
  }
  return result;
}

}  // namespace presto
