#ifndef PRESTO_CLUSTER_RESOURCE_GROUPS_H_
#define PRESTO_CLUSTER_RESOURCE_GROUPS_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "presto/common/metrics.h"
#include "presto/common/status.h"
#include "presto/planner/session.h"

namespace presto {

/// One admission group in the Presto-style resource-group tree ("Serving
/// Hybrid-Cloud SQL Interactive Queries at Twitter" is the blueprint:
/// interactive tenants must never starve behind batch). Every query resolves
/// to exactly one group; the group bounds how many of its queries run at
/// once, how many may wait, how much worker memory its queries may reserve
/// together, and how the coordinator degrades it under pressure.
struct ResourceGroupConfig {
  std::string name;
  /// Deficit-weighted round-robin share: when several groups have queued
  /// queries, admissions are interleaved proportionally to weight.
  int weight = 1;
  /// Max queries of this group running concurrently (its quota).
  int hard_concurrency = 4;
  /// Max queries waiting in this group's queue; arrivals beyond it are shed
  /// with kRejected (overload protection — the gateway does not blind-retry).
  int max_queued = 64;
  /// Group memory cap as a fraction of worker memory; the group's pool layer
  /// (worker -> group -> query) enforces it at reservation time. 1.0 = no
  /// cap at the group level.
  double memory_fraction = 1.0;
  /// Queued-time deadline: a query that waited this long is shed with
  /// kRejected instead of going stale in the queue. 0 = wait forever (the
  /// per-query query_timeout_millis still applies).
  int64_t queued_timeout_millis = 0;
  /// Soft degradation: under worker memory pressure the coordinator shrinks
  /// this group's task_threads to 1 before the low-memory killer fires.
  bool degradable = false;
};

struct ResourceGroupsOptions {
  /// Off = one unbounded FIFO group gated only by the admission high-water
  /// mark (the pre-resource-groups behavior, and the bench's FIFO baseline).
  bool enabled = false;
  /// Global running-query cap across all groups.
  int total_concurrency = 16;
  std::vector<ResourceGroupConfig> groups;
  /// Group used when neither the resource_group session property nor the
  /// session's group name matches a configured group.
  std::string default_group;
};

/// The stock three-tenant tree: `interactive` (high weight, wide quota,
/// never degraded), `batch` (narrow quota, shallow queue, degradable),
/// `adhoc` (default catch-all).
ResourceGroupsOptions DefaultResourceGroupTree();

/// Weighted-fair admission across resource groups. Replaces the single FIFO
/// admission queue: each group has its own FIFO, and a deficit-weighted
/// round-robin picks which group's head runs whenever slots free up, so a
/// saturated batch queue cannot starve interactive arrivals.
///
/// Thread-safe. Callers hold an admission slot from a successful
/// TryAdmit/Wait until Release. The memory gate (the coordinator's
/// high-water check) applies to every admission, grouped or not.
class ResourceGroupManager {
 public:
  /// `memory_gate` returns true while new queries may be admitted (reserved
  /// worker memory below the high-water mark); checked under the manager
  /// lock, so it must be cheap and lock-free. `metrics` (not owned) receives
  /// the per-group counters and queue-wait histograms.
  ResourceGroupManager(ResourceGroupsOptions options, MetricsRegistry* metrics,
                       std::function<bool()> memory_gate);

  /// The group this session's queries belong to: the resource_group session
  /// property if it names a configured group, else the session's group name,
  /// else the configured default.
  const ResourceGroupConfig& Resolve(const Session& session) const;

  const ResourceGroupConfig* Find(const std::string& name) const;

  /// Attempts admission. Outcomes:
  ///  - OK with *queued=false: admitted; the caller holds a slot.
  ///  - OK with *queued=true: the query is parked in the group queue (its
  ///    DRR position is fixed here, not at Wait()); the caller MUST call
  ///    Wait() next — the parked entry lives until Wait() returns.
  ///  - kRejected: shed — the group queue is full (or deeper than the
  ///    session's query_queue_max override, whichever is smaller).
  Status TryAdmit(const std::string& group, int64_t query_id,
                  int64_t session_queue_max, bool* queued);

  /// Blocks until the queued query is admitted (OK), shed by the group's
  /// queued-time deadline (kRejected), or past its own query deadline
  /// (kUnavailable carrying "query deadline exceeded", so the existing
  /// timeout plumbing classifies it). Must follow a TryAdmit that queued.
  Status Wait(const std::string& group, int64_t query_id,
              int64_t deadline_steady_nanos);

  /// Returns the admission slot taken by TryAdmit/Wait.
  void Release(const std::string& group);

  /// Wakes waiters promptly (e.g. when a query finishes or memory drains);
  /// waiters also self-poll every 10ms for pool-level releases that have no
  /// coordinator hook.
  void NotifyCapacity();

  // -- introspection (reconciliation tests, bench accounting) ---------------
  int64_t running(const std::string& group) const;
  int64_t queued(const std::string& group) const;
  int64_t total_running() const;
  std::vector<std::string> GroupNames() const;

  bool enabled() const { return options_.enabled; }
  const ResourceGroupsOptions& options() const { return options_; }

 private:
  struct Waiter {
    int64_t query_id = 0;
    bool admitted = false;
    int64_t enqueued_steady_nanos = 0;
  };

  struct Group {
    ResourceGroupConfig config;
    /// FIFO of parked queries, in TryAdmit order. Entries are owned by
    /// `waiters` (below) so a waiter outlives promotion until its Wait()
    /// call collects the slot.
    std::deque<Waiter*> queue;
    std::map<int64_t, std::unique_ptr<Waiter>> waiters;  // by query id
    int64_t running = 0;
    int64_t deficit = 0;
    MetricsRegistry::Counter* queued_counter = nullptr;
    MetricsRegistry::Counter* admitted_counter = nullptr;
    MetricsRegistry::Counter* shed_counter = nullptr;
  };

  /// Deficit-weighted round-robin: while global slots are free and the
  /// memory gate is open, admit from the eligible (non-empty queue, below
  /// hard_concurrency) group with the largest deficit, decrementing it per
  /// admission; when every eligible group is out of deficit, replenish each
  /// by its weight. One queued group therefore gets admissions proportional
  /// to weight, and an empty group's unused share is not banked.
  void PromoteLocked();

  Group* FindGroupLocked(const std::string& name);

  ResourceGroupsOptions options_;
  MetricsRegistry* metrics_;
  std::function<bool()> memory_gate_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Stable addresses: groups are fixed at construction.
  std::map<std::string, Group> groups_;
  std::vector<Group*> drr_order_;  // configured order, for deterministic ties
  int64_t total_running_ = 0;
};

}  // namespace presto

#endif  // PRESTO_CLUSTER_RESOURCE_GROUPS_H_
