#include "presto/cluster/query_journal.h"

#include <algorithm>
#include <sstream>

namespace presto {

const char* QueryEventKindToString(QueryEventKind kind) {
  switch (kind) {
    case QueryEventKind::kCreated:
      return "created";
    case QueryEventKind::kPlanned:
      return "planned";
    case QueryEventKind::kScheduled:
      return "scheduled";
    case QueryEventKind::kStageFinished:
      return "stage_finished";
    case QueryEventKind::kCompleted:
      return "completed";
    case QueryEventKind::kFailed:
      return "failed";
    case QueryEventKind::kSlowQuery:
      return "slow_query";
    case QueryEventKind::kTaskRetried:
      return "task_retried";
    case QueryEventKind::kWorkerBlacklisted:
      return "worker_blacklisted";
    case QueryEventKind::kRestarted:
      return "query_restarted";
    case QueryEventKind::kQueued:
      return "query_queued";
    case QueryEventKind::kAdmitted:
      return "query_admitted";
    case QueryEventKind::kKilledMemory:
      return "query_killed_memory";
    case QueryEventKind::kOperatorSpilled:
      return "operator_spilled";
    case QueryEventKind::kShed:
      return "query_shed";
    case QueryEventKind::kTimeoutQueued:
      return "query_timeout_queued";
    case QueryEventKind::kDegraded:
      return "query_degraded";
    case QueryEventKind::kStageRerun:
      return "stage_rerun";
    case QueryEventKind::kTaskSpeculated:
      return "task_speculated";
    case QueryEventKind::kWorkerDrained:
      return "worker_drained";
    case QueryEventKind::kWorkerReinstated:
      return "worker_reinstated";
  }
  return "unknown";
}

std::string QueryEvent::ToString() const {
  std::ostringstream out;
  out << "[" << timestamp_nanos << "] query " << query_id;
  if (!trace_id.empty()) out << " trace=" << trace_id;
  if (!resource_group.empty()) out << " group=" << resource_group;
  out << " " << QueryEventKindToString(kind);
  if (!detail.empty()) {
    out << ": " << detail;
  }
  if (!counters.empty()) {
    out << " {";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!first) out << ", ";
      first = false;
      out << name << "=" << value;
    }
    out << "}";
  }
  return out.str();
}

void QueryJournal::Record(int64_t query_id, QueryEventKind kind,
                          std::string detail,
                          std::map<std::string, int64_t> counters) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryEvent event;
  event.query_id = query_id;
  event.kind = kind;
  // Strictly increasing even when the (simulated) clock stands still, so
  // created < planned < scheduled < completed always holds by timestamp.
  event.timestamp_nanos = std::max(clock_->NowNanos(), last_timestamp_ + 1);
  last_timestamp_ = event.timestamp_nanos;
  event.sequence = next_sequence_++;
  auto trace_it = trace_ids_.find(query_id);
  if (trace_it != trace_ids_.end()) event.trace_id = trace_it->second;
  auto group_it = groups_.find(query_id);
  if (group_it != groups_.end()) event.resource_group = group_it->second;
  event.detail = std::move(detail);
  event.counters = std::move(counters);
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) {
    events_.pop_front();
  }
}

void QueryJournal::SetTraceId(int64_t query_id, std::string trace_id) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_ids_[query_id] = std::move(trace_id);
  // Bounded: query ids are assigned monotonically, so pruning the smallest
  // keys drops the oldest queries.
  while (trace_ids_.size() > 1024) trace_ids_.erase(trace_ids_.begin());
}

void QueryJournal::SetResourceGroup(int64_t query_id, std::string group) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_[query_id] = std::move(group);
  while (groups_.size() > 1024) groups_.erase(groups_.begin());
}

std::string QueryJournal::TraceIdFor(int64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = trace_ids_.find(query_id);
  return it == trace_ids_.end() ? "" : it->second;
}

std::vector<QueryEvent> QueryJournal::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryEvent>(events_.begin(), events_.end());
}

std::vector<QueryEvent> QueryJournal::EventsForQuery(int64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryEvent> out;
  for (const auto& event : events_) {
    if (event.query_id == query_id) out.push_back(event);
  }
  return out;
}

int64_t QueryJournal::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}

}  // namespace presto
