#include "presto/cluster/gateway.h"

namespace presto {

namespace {
constexpr char kRoutingSchema[] = "gateway";
constexpr char kRoutingTable[] = "routing";
}  // namespace

PrestoGateway::PrestoGateway(mysqlite::MySqlLite* routing_db) : db_(routing_db) {
  // The routing table may already exist (shared MySQL instance).
  (void)db_->CreateTable(
      kRoutingSchema, kRoutingTable,
      Type::Row({"principal", "kind", "cluster"},
                {Type::Varchar(), Type::Varchar(), Type::Varchar()}));
}

Status PrestoGateway::RegisterCluster(const std::string& name,
                                      PrestoCluster* cluster) {
  std::lock_guard<std::mutex> lock(mu_);
  if (clusters_.count(name) > 0) {
    return Status::AlreadyExists("cluster already registered: " + name);
  }
  clusters_[name] = cluster;
  return Status::OK();
}

Status PrestoGateway::SetRoute(const std::string& kind,
                               const std::string& principal,
                               const std::string& cluster) {
  // Upsert: delete then insert.
  RETURN_IF_ERROR(db_->Delete(kRoutingSchema, kRoutingTable,
                              {{"principal", mysqlite::CompareOp::kEq,
                                {Value::String(principal)}},
                               {"kind", mysqlite::CompareOp::kEq,
                                {Value::String(kind)}}})
                      .status());
  return db_->Insert(kRoutingSchema, kRoutingTable,
                     {{Value::String(principal), Value::String(kind),
                       Value::String(cluster)}});
}

Status PrestoGateway::SetUserRoute(const std::string& user,
                                   const std::string& cluster) {
  return SetRoute("user", user, cluster);
}

Status PrestoGateway::SetGroupRoute(const std::string& group,
                                    const std::string& cluster) {
  return SetRoute("group", group, cluster);
}

Status PrestoGateway::SetDefaultRoute(const std::string& cluster) {
  return SetRoute("default", "*", cluster);
}

Status PrestoGateway::RemoveRoutes(const std::string& principal) {
  return db_->Delete(kRoutingSchema, kRoutingTable,
                     {{"principal", mysqlite::CompareOp::kEq,
                       {Value::String(principal)}}})
      .status();
}

Result<std::string> PrestoGateway::LookupRoute(const std::string& kind,
                                               const std::string& principal) {
  mysqlite::ScanRequest request;
  request.columns = {"cluster"};
  request.predicates = {{"kind", mysqlite::CompareOp::kEq, {Value::String(kind)}},
                        {"principal", mysqlite::CompareOp::kEq,
                         {Value::String(principal)}}};
  request.limit = 1;
  ASSIGN_OR_RETURN(mysqlite::ScanResult result,
                   db_->Scan(kRoutingSchema, kRoutingTable, request));
  if (result.rows.empty()) return Status::NotFound("no route");
  return result.rows[0][0].string_value();
}

Result<PrestoCluster*> PrestoGateway::Route(const Session& session) {
  metrics_.Increment("gateway.query.requests");
  std::string target;
  auto by_user = LookupRoute("user", session.user);
  if (by_user.ok()) {
    target = *by_user;
  } else {
    auto by_group = LookupRoute("group", session.group);
    if (by_group.ok()) {
      target = *by_group;
    } else {
      ASSIGN_OR_RETURN(target, LookupRoute("default", "*"));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clusters_.find(target);
  if (it == clusters_.end()) {
    return Status::NotFound("route points at unregistered cluster: " + target);
  }
  metrics_.Increment("gateway.query.redirects." + target);
  return it->second;
}

Result<QueryResult> PrestoGateway::Submit(const std::string& sql,
                                          const Session& session) {
  ASSIGN_OR_RETURN(PrestoCluster * cluster, Route(session));
  return cluster->Execute(sql, session);
}

Status PrestoGateway::DrainClusterRoutes(const std::string& from,
                                         const std::string& to) {
  metrics_.Increment("gateway.routes.drained");
  return db_->Update(kRoutingSchema, kRoutingTable,
                     {{"cluster", mysqlite::CompareOp::kEq, {Value::String(from)}}},
                     {{"cluster", Value::String(to)}})
      .status();
}

}  // namespace presto
