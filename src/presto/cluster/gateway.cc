#include "presto/cluster/gateway.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "presto/common/fault_injection.h"
#include "presto/common/random.h"

namespace presto {

namespace {
constexpr char kRoutingSchema[] = "gateway";
constexpr char kRoutingTable[] = "routing";
}  // namespace

PrestoGateway::PrestoGateway(mysqlite::MySqlLite* routing_db,
                             int unhealthy_threshold,
                             int64_t overload_backoff_millis)
    : db_(routing_db),
      unhealthy_threshold_(std::max(1, unhealthy_threshold)),
      overload_backoff_millis_(std::max<int64_t>(0, overload_backoff_millis)) {
  // The routing table may already exist (shared MySQL instance).
  (void)db_->CreateTable(
      kRoutingSchema, kRoutingTable,
      Type::Row({"principal", "kind", "cluster"},
                {Type::Varchar(), Type::Varchar(), Type::Varchar()}));
}

Status PrestoGateway::RegisterCluster(const std::string& name,
                                      PrestoCluster* cluster) {
  std::lock_guard<std::mutex> lock(mu_);
  if (clusters_.count(name) > 0) {
    return Status::AlreadyExists("cluster already registered: " + name);
  }
  clusters_[name].cluster = cluster;
  return Status::OK();
}

void PrestoGateway::ReportClusterFailure(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clusters_.find(name);
  if (it == clusters_.end()) return;
  ClusterEntry& entry = it->second;
  ++entry.consecutive_failures;
  if (entry.healthy && entry.consecutive_failures >= unhealthy_threshold_) {
    entry.healthy = false;
    metrics_.Increment("gateway.cluster.unhealthy");
  }
}

void PrestoGateway::ReportClusterSuccess(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clusters_.find(name);
  if (it == clusters_.end()) return;
  ClusterEntry& entry = it->second;
  entry.consecutive_failures = 0;
  if (!entry.healthy) {
    entry.healthy = true;
    metrics_.Increment("gateway.cluster.recovered");
  }
}

bool PrestoGateway::IsClusterHealthy(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clusters_.find(name);
  return it != clusters_.end() && it->second.healthy;
}

Result<std::pair<std::string, PrestoCluster*>> PrestoGateway::PickHealthyLocked(
    const std::string& target) {
  auto it = clusters_.find(target);
  if (it == clusters_.end()) {
    return Status::NotFound("route points at unregistered cluster: " + target);
  }
  if (it->second.healthy) {
    return std::make_pair(target, it->second.cluster);
  }
  // Failover: first healthy cluster in name order, so repeated failovers
  // land on the same stand-in instead of spraying traffic.
  for (auto& [name, entry] : clusters_) {
    if (entry.healthy) {
      metrics_.Increment("gateway.route.failover");
      return std::make_pair(name, entry.cluster);
    }
  }
  return Status::Unavailable("no healthy cluster to route to (target " +
                             target + " and all alternates are unhealthy)");
}

Status PrestoGateway::SetRoute(const std::string& kind,
                               const std::string& principal,
                               const std::string& cluster) {
  // Upsert: delete then insert.
  RETURN_IF_ERROR(db_->Delete(kRoutingSchema, kRoutingTable,
                              {{"principal", mysqlite::CompareOp::kEq,
                                {Value::String(principal)}},
                               {"kind", mysqlite::CompareOp::kEq,
                                {Value::String(kind)}}})
                      .status());
  return db_->Insert(kRoutingSchema, kRoutingTable,
                     {{Value::String(principal), Value::String(kind),
                       Value::String(cluster)}});
}

Status PrestoGateway::SetUserRoute(const std::string& user,
                                   const std::string& cluster) {
  return SetRoute("user", user, cluster);
}

Status PrestoGateway::SetGroupRoute(const std::string& group,
                                    const std::string& cluster) {
  return SetRoute("group", group, cluster);
}

Status PrestoGateway::SetDefaultRoute(const std::string& cluster) {
  return SetRoute("default", "*", cluster);
}

Status PrestoGateway::RemoveRoutes(const std::string& principal) {
  return db_->Delete(kRoutingSchema, kRoutingTable,
                     {{"principal", mysqlite::CompareOp::kEq,
                       {Value::String(principal)}}})
      .status();
}

Result<std::string> PrestoGateway::LookupRoute(const std::string& kind,
                                               const std::string& principal) {
  mysqlite::ScanRequest request;
  request.columns = {"cluster"};
  request.predicates = {{"kind", mysqlite::CompareOp::kEq, {Value::String(kind)}},
                        {"principal", mysqlite::CompareOp::kEq,
                         {Value::String(principal)}}};
  request.limit = 1;
  ASSIGN_OR_RETURN(mysqlite::ScanResult result,
                   db_->Scan(kRoutingSchema, kRoutingTable, request));
  if (result.rows.empty()) return Status::NotFound("no route");
  return result.rows[0][0].string_value();
}

Result<PrestoCluster*> PrestoGateway::Route(const Session& session) {
  metrics_.Increment("gateway.query.requests");
  std::string target;
  auto by_user = LookupRoute("user", session.user);
  if (by_user.ok()) {
    target = *by_user;
  } else {
    auto by_group = LookupRoute("group", session.group);
    if (by_group.ok()) {
      target = *by_group;
    } else {
      ASSIGN_OR_RETURN(target, LookupRoute("default", "*"));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(auto picked, PickHealthyLocked(target));
  metrics_.Increment("gateway.query.redirects." + picked.first);
  return picked.second;
}

Result<QueryResult> PrestoGateway::Submit(const std::string& sql,
                                          const Session& session) {
  // Route, execute, and keep failing over while clusters die under the
  // query: each retryable failure counts against its cluster's health, and
  // the next attempt re-routes (which skips anything now unhealthy). A
  // terminal error (bad SQL, unknown table) returns immediately — rerunning
  // it elsewhere would fail identically and poison every cluster's score.
  // Enough attempts for the routed target to exhaust its failure threshold
  // and the query to still try every other cluster once.
  size_t attempts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempts = std::max<size_t>(1, clusters_.size()) +
               static_cast<size_t>(unhealthy_threshold_) - 1;
  }
  Status last;
  // Clusters that refused this query for overload (kResourceExhausted:
  // memory-killed; kRejected: resource-group load shed). Overload is a
  // property of the cluster's current load, not its health, so these
  // failovers carry no health penalty — but each overloaded cluster is
  // tried at most once, and each rejection is preceded by a jittered
  // backoff so a shedding cluster isn't immediately hammered elsewhere.
  std::set<std::string> overloaded;
  Random jitter(reinterpret_cast<uint64_t>(&last) ^ 0x9e3779b97f4a7c15ULL);
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    PrestoCluster* cluster = nullptr;
    if (overloaded.empty()) {
      auto routed = Route(session);
      if (!routed.ok()) return routed.status();
      cluster = *routed;
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [name, entry] : clusters_) {
        if (entry.healthy && overloaded.count(name) == 0) {
          cluster = entry.cluster;
          break;
        }
      }
      if (cluster == nullptr) return last;  // everywhere healthy is overloaded
    }
    auto result = cluster->Execute(sql, session);
    if (result.ok()) {
      ReportClusterSuccess(cluster->name());
      return result;
    }
    const StatusCode code = result.status().code();
    if (code == StatusCode::kResourceExhausted ||
        code == StatusCode::kRejected) {
      last = result.status();
      overloaded.insert(cluster->name());
      metrics_.Increment("gateway.query.overload_failover");
      if (code == StatusCode::kRejected) {
        metrics_.Increment("gateway.route.shed");
      }
      if (overload_backoff_millis_ > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            jitter.NextInRange(overload_backoff_millis_ / 2,
                               overload_backoff_millis_)));
      }
      continue;
    }
    if (!IsRetryableStatus(result.status())) {
      ReportClusterSuccess(cluster->name());
      return result;
    }
    last = result.status();
    ReportClusterFailure(cluster->name());
    metrics_.Increment("gateway.query.retried");
  }
  return last;
}

Status PrestoGateway::DrainClusterRoutes(const std::string& from,
                                         const std::string& to) {
  metrics_.Increment("gateway.routes.drained");
  return db_->Update(kRoutingSchema, kRoutingTable,
                     {{"cluster", mysqlite::CompareOp::kEq, {Value::String(from)}}},
                     {{"cluster", Value::String(to)}})
      .status();
}

}  // namespace presto
