#include "presto/cluster/worker.h"

#include <algorithm>

namespace presto {

const char* WorkerStateToString(WorkerState state) {
  switch (state) {
    case WorkerState::kActive:
      return "ACTIVE";
    case WorkerState::kShuttingDown:
      return "SHUTTING_DOWN";
    case WorkerState::kShutDown:
      return "SHUT_DOWN";
    case WorkerState::kDead:
      return "DEAD";
  }
  return "?";
}

Worker::Worker(std::string id, size_t execution_slots, Clock* clock)
    : id_(std::move(id)), pool_(execution_slots) {
  // At least two helper threads even on small machines so parallel chains
  // genuinely interleave (and sanitizers see real concurrency); capped so a
  // wide cluster simulation doesn't multiply idle threads.
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  morsel_pool_ = std::make_unique<WorkStealingPool>(
      std::min<size_t>(8, std::max<size_t>(2, hw)));
  if (clock == nullptr) {
    owned_clock_ = std::make_unique<SystemClock>();
    clock_ = owned_clock_.get();
  } else {
    clock_ = clock;
  }
}

Worker::~Worker() {
  {
    std::lock_guard<std::mutex> join_lock(join_mu_);
    if (shutdown_thread_.joinable()) shutdown_thread_.join();
  }
  // Detached dedicated-task threads hold `this`; wait for every active task
  // (pool tasks keep draining on the still-running pool) before teardown.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return active_tasks_.load() == 0; });
  }
  pool_.Shutdown();
}

bool Worker::SubmitTask(std::function<void()> task) {
  if (state_.load() != WorkerState::kActive) return false;
  active_tasks_.fetch_add(1);
  bool submitted = pool_.Submit([this, task = std::move(task)] {
    Stopwatch task_watch;
    task();
    busy_nanos_counter_->Add(task_watch.ElapsedNanos());
    tasks_completed_counter_->Add(1);
    tasks_completed_.fetch_add(1);
    if (active_tasks_.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      drained_cv_.notify_all();
    }
  });
  if (!submitted) {
    active_tasks_.fetch_sub(1);
    return false;
  }
  tasks_submitted_counter_->Add(1);
  return true;
}

bool Worker::SubmitDedicatedTask(std::function<void()> task) {
  if (state_.load() != WorkerState::kActive) return false;
  active_tasks_.fetch_add(1);
  // Detached rather than pooled: joining would require reaping machinery
  // somewhere, and the active-task drain already provides the lifecycle
  // barrier (the decrement + notify below is the thread's last access to
  // this worker, and both the destructor and graceful shutdown wait for it).
  std::thread([this, task = std::move(task)] {
    Stopwatch task_watch;
    task();
    busy_nanos_counter_->Add(task_watch.ElapsedNanos());
    tasks_completed_counter_->Add(1);
    tasks_completed_.fetch_add(1);
    if (active_tasks_.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      drained_cv_.notify_all();
    }
  }).detach();
  tasks_submitted_counter_->Add(1);
  return true;
}

void Worker::RequestGracefulShutdown(int64_t grace_period_nanos) {
  (void)TryRequestGracefulShutdown(grace_period_nanos);
}

Status Worker::TryRequestGracefulShutdown(int64_t grace_period_nanos) {
  WorkerState expected = WorkerState::kActive;
  if (!state_.compare_exchange_strong(expected, WorkerState::kShuttingDown)) {
    if (expected == WorkerState::kDead) {
      return Status::Unavailable("worker is dead: " + id_);
    }
    return Status::AlreadyExists("worker already draining or shut down: " +
                                 id_);
  }
  shutdown_thread_ = std::thread(
      [this, grace_period_nanos] { GracefulShutdownSequence(grace_period_nanos); });
  return Status::OK();
}

Status Worker::Drain() {
  WorkerState expected = WorkerState::kActive;
  if (!state_.compare_exchange_strong(expected, WorkerState::kShuttingDown)) {
    if (expected == WorkerState::kDead) {
      return Status::Unavailable("worker is dead: " + id_);
    }
    return Status::AlreadyExists("worker already draining or shut down: " +
                                 id_);
  }
  // SubmitTask/SubmitDedicatedTask refuse from here on; wait out whatever
  // was already running (the caller has stopped routing new work here, so
  // the active count only falls).
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return active_tasks_.load() == 0; });
  }
  state_.store(WorkerState::kShutDown);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_cv_.notify_all();
  }
  return Status::OK();
}

Status Worker::Revive() {
  WorkerState expected = WorkerState::kDead;
  if (!state_.compare_exchange_strong(expected, WorkerState::kActive)) {
    return Status::InvalidArgument("worker is not dead: " + id_);
  }
  return Status::OK();
}

void Worker::Kill() {
  // Only an active worker can crash; a draining or drained worker is
  // already leaving the fleet through the graceful protocol.
  WorkerState expected = WorkerState::kActive;
  if (!state_.compare_exchange_strong(expected, WorkerState::kDead)) return;
  // Wake anything parked on this worker's lifecycle waits; running tasks
  // notice kDead cooperatively and drain active_tasks_ on their way out.
  std::lock_guard<std::mutex> lock(mu_);
  drained_cv_.notify_all();
  shutdown_cv_.notify_all();
}

bool Worker::Heartbeat() {
  if (state_.load() == WorkerState::kDead) return false;
  heartbeats_.fetch_add(1);
  return true;
}

void Worker::GracefulShutdownSequence(int64_t grace_period_nanos) {
  // 1. Sleep for shutdown.grace-period so the coordinator notices the
  //    SHUTTING_DOWN state and stops sending tasks.
  clock_->AdvanceNanos(grace_period_nanos);
  // 2. Block until all active tasks are complete.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return active_tasks_.load() == 0; });
  }
  // 3. Sleep for the grace period again so the coordinator sees all tasks
  //    complete.
  clock_->AdvanceNanos(grace_period_nanos);
  // 4. Shut down.
  state_.store(WorkerState::kShutDown);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_cv_.notify_all();
  }
}

void Worker::AwaitShutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [this] {
      WorkerState s = state_.load();
      return s == WorkerState::kShutDown || s == WorkerState::kDead;
    });
  }
  // Reap the shutdown thread here rather than leaving it for the destructor:
  // long-lived clusters would otherwise hold one finished-but-unjoined thread
  // per drained worker.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (shutdown_thread_.joinable() &&
      shutdown_thread_.get_id() != std::this_thread::get_id()) {
    shutdown_thread_.join();
  }
}

}  // namespace presto
