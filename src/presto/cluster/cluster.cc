#include "presto/cluster/cluster.h"

namespace presto {

PrestoCluster::PrestoCluster(std::string name, size_t num_workers,
                             size_t slots_per_worker, CoordinatorOptions options)
    : name_(std::move(name)), coordinator_(&catalogs_, options) {
  // The geo plugin is idempotently registered into the default registry.
  (void)geo::RegisterGeoFunctions(&FunctionRegistry::Default());
  for (size_t i = 0; i < num_workers; ++i) {
    ExpandWorker(slots_per_worker);
  }
}

std::string PrestoCluster::ExpandWorker(size_t slots) {
  std::string id = name_ + "-worker-" + std::to_string(next_worker_id_++);
  auto worker = std::make_shared<Worker>(id, slots);
  workers_.push_back(worker);
  coordinator_.AddWorker(std::move(worker));
  return id;
}

std::string PrestoCluster::RenderMetricsText() {
  MetricsExposition exposition;
  exposition.AddRegistry("", &coordinator_.metrics());
  exposition.AddRegistry("", &coordinator_.fragment_cache_metrics());
  // Same-named worker counters sum across the fleet.
  for (const auto& worker : workers_) {
    exposition.AddRegistry("", &worker->metrics());
  }
  for (const auto& [prefix, registry] : extra_metrics_) {
    exposition.AddRegistry(prefix, registry);
  }
  exposition.AddGauge("cluster.workers.active", [this] {
    return static_cast<int64_t>(coordinator_.ActiveWorkers().size());
  });
  exposition.AddGauge("coordinator.journal.events", [this] {
    return coordinator_.journal().events_recorded();
  });
  return exposition.RenderText();
}

Status PrestoCluster::ShrinkWorkerAndWait(const std::string& worker_id,
                                          int64_t grace_period_nanos) {
  RETURN_IF_ERROR(coordinator_.ShrinkWorker(worker_id, grace_period_nanos));
  for (const auto& worker : workers_) {
    if (worker->id() == worker_id) {
      worker->AwaitShutdown();
      return Status::OK();
    }
  }
  return Status::NotFound("worker not tracked: " + worker_id);
}

}  // namespace presto
