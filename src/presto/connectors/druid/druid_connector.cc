#include "presto/connectors/druid/druid_connector.h"

#include <algorithm>

#include "presto/vector/vector_builder.h"

namespace presto {

namespace {

struct DruidSplit final : public ConnectorSplit {
  std::string datasource;

  std::string ToString() const override { return "druid[" + datasource + "]"; }
};

// Converts a DruidResult into a single Page (string payloads are moved,
// not copied).
Result<Page> ResultToPage(druid::DruidResult result) {
  std::vector<VectorBuilder> builders;
  builders.reserve(result.column_types.size());
  for (const TypePtr& type : result.column_types) builders.emplace_back(type);
  for (auto& row : result.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      RETURN_IF_ERROR(builders[c].Append(std::move(row[c])));
    }
  }
  std::vector<VectorPtr> columns;
  columns.reserve(builders.size());
  for (auto& b : builders) columns.push_back(b.Build());
  return Page(std::move(columns), result.rows.size());
}

class DruidPageSource final : public ConnectorPageSource {
 public:
  DruidPageSource(druid::DruidStore* store, druid::DruidQuery query)
      : store_(store), query_(std::move(query)) {}

  Result<std::optional<Page>> NextPage() override {
    if (done_) return std::optional<Page>();
    done_ = true;
    ASSIGN_OR_RETURN(druid::DruidResult result, store_->Execute(query_));
    if (result.rows.empty()) return std::optional<Page>();
    ASSIGN_OR_RETURN(Page page, ResultToPage(std::move(result)));
    return std::optional<Page>(std::move(page));
  }

 private:
  druid::DruidStore* store_;
  druid::DruidQuery query_;
  bool done_ = false;
};

bool IsDimension(const druid::DatasourceSchema& schema, const std::string& name) {
  return std::find(schema.dimensions.begin(), schema.dimensions.end(), name) !=
         schema.dimensions.end();
}

bool IsMetric(const druid::DatasourceSchema& schema, const std::string& name) {
  return std::find(schema.metrics.begin(), schema.metrics.end(), name) !=
         schema.metrics.end();
}

// Builds the native query encoded by an accepted pushdown.
Result<druid::DruidQuery> BuildQuery(const std::string& datasource,
                                     const druid::DatasourceSchema& schema,
                                     const AcceptedPushdown& pushdown) {
  druid::DruidQuery query;
  query.datasource = datasource;
  for (const SimplePredicate& pred : pushdown.request.predicates) {
    if (pred.column == "__time") {
      for (const Value& v : pred.values) {
        int64_t t = v.int_value();
        switch (pred.op) {
          case SimplePredicate::Op::kEq:
            query.interval.start = std::max(query.interval.start, t);
            query.interval.end = std::min(query.interval.end, t + 1);
            break;
          case SimplePredicate::Op::kGe:
            query.interval.start = std::max(query.interval.start, t);
            break;
          case SimplePredicate::Op::kGt:
            query.interval.start = std::max(query.interval.start, t + 1);
            break;
          case SimplePredicate::Op::kLt:
            query.interval.end = std::min(query.interval.end, t);
            break;
          case SimplePredicate::Op::kLe:
            query.interval.end = std::min(query.interval.end, t + 1);
            break;
          default:
            return Status::Internal("unexpected accepted __time predicate");
        }
      }
      continue;
    }
    druid::DimensionFilter filter;
    filter.dimension = pred.column;
    for (const Value& v : pred.values) {
      filter.values.push_back(v.string_value());
    }
    query.filters.push_back(std::move(filter));
  }
  if (pushdown.aggregations_pushed) {
    query.dimensions = pushdown.request.group_by;
    for (const PushedAggregation& agg : pushdown.request.aggregations) {
      druid::DruidAggregation native;
      native.output_name = agg.output_name;
      native.metric = agg.argument;
      if (agg.function == "count") {
        native.kind = druid::AggKind::kCount;
      } else if (agg.function == "sum") {
        native.kind = druid::AggKind::kSum;
      } else if (agg.function == "min") {
        native.kind = druid::AggKind::kMin;
      } else if (agg.function == "max") {
        native.kind = druid::AggKind::kMax;
      } else {
        return Status::Internal("unexpected accepted aggregation: " + agg.function);
      }
      query.aggregations.push_back(std::move(native));
    }
  } else {
    query.scan_columns = pushdown.request.columns;
  }
  if (pushdown.limit_pushed) query.limit = pushdown.request.limit;
  (void)schema;
  return query;
}

}  // namespace

std::vector<std::string> DruidConnector::ListTables(const std::string& schema) {
  if (schema != "default") return {};
  return store_->ListDatasources();
}

Result<TypePtr> DruidConnector::GetTableSchema(const std::string& schema,
                                               const std::string& table) {
  if (schema != "default") return Status::NotFound("no such schema: " + schema);
  return store_->TableType(table);
}

Result<AcceptedPushdown> DruidConnector::NegotiatePushdown(
    const std::string& schema, const std::string& table,
    const PushdownRequest& desired) {
  if (schema != "default") return Status::NotFound("no such schema: " + schema);
  ASSIGN_OR_RETURN(druid::DatasourceSchema ds, store_->GetSchema(table));
  AcceptedPushdown accepted;

  // Predicate pushdown: dimension equality/IN (string literals) and __time
  // ranges. Anything else stays residual in the engine.
  for (size_t i = 0; i < desired.predicates.size(); ++i) {
    const SimplePredicate& pred = desired.predicates[i];
    bool ok = false;
    if (pred.column == "__time") {
      ok = pred.op != SimplePredicate::Op::kNe &&
           pred.op != SimplePredicate::Op::kIn;
      for (const Value& v : pred.values) ok = ok && v.is_int();
    } else if (IsDimension(ds, pred.column)) {
      ok = pred.op == SimplePredicate::Op::kEq ||
           pred.op == SimplePredicate::Op::kIn;
      for (const Value& v : pred.values) ok = ok && v.is_string();
    }
    if (ok) {
      accepted.request.predicates.push_back(pred);
      accepted.predicate_indices.push_back(i);
    }
  }

  // Aggregation pushdown: group keys must be dimensions; functions must map
  // to native Druid aggregators over metrics.
  bool aggregations_ok = !desired.aggregations.empty() || !desired.group_by.empty();
  if (desired.aggregations.empty() && desired.group_by.empty()) {
    aggregations_ok = false;
  }
  for (const std::string& key : desired.group_by) {
    if (!IsDimension(ds, key)) aggregations_ok = false;
  }
  for (const PushedAggregation& agg : desired.aggregations) {
    if (agg.function == "count" && agg.argument.empty()) continue;
    if ((agg.function == "sum" || agg.function == "min" ||
         agg.function == "max") &&
        IsMetric(ds, agg.argument)) {
      continue;
    }
    aggregations_ok = false;
  }
  // Only push the aggregation when every filter went down too — otherwise
  // the connector would aggregate unfiltered rows.
  if (aggregations_ok &&
      accepted.predicate_indices.size() == desired.predicates.size()) {
    accepted.aggregations_pushed = true;
    accepted.request.group_by = desired.group_by;
    accepted.request.aggregations = desired.aggregations;
    std::vector<std::string> names;
    std::vector<TypePtr> types;
    for (const std::string& key : desired.group_by) {
      names.push_back(key);
      types.push_back(Type::Varchar());
    }
    for (const PushedAggregation& agg : desired.aggregations) {
      names.push_back(agg.output_name);
      types.push_back(agg.function == "count" ? Type::Bigint() : Type::Double());
    }
    accepted.output_schema = Type::Row(std::move(names), std::move(types));
  } else {
    // Projection pushdown (scan).
    ASSIGN_OR_RETURN(TypePtr table_type, store_->TableType(table));
    accepted.request.columns = desired.columns;
    std::vector<std::string> names;
    std::vector<TypePtr> types;
    for (const std::string& column : desired.columns) {
      auto idx = table_type->FindField(column);
      if (!idx.has_value()) return Status::NotFound("no such column: " + column);
      names.push_back(column);
      types.push_back(table_type->child(*idx));
    }
    accepted.output_schema = Type::Row(std::move(names), std::move(types));
  }

  // Limit pushdown: safe as an upper bound when all predicates went down.
  if (desired.limit >= 0 &&
      accepted.predicate_indices.size() == desired.predicates.size()) {
    accepted.limit_pushed = true;
    accepted.request.limit = desired.limit;
  }
  // Druid filters are exact (native filter clauses), not pruning hints.
  accepted.predicates_enforced = true;
  return accepted;
}

Result<std::vector<SplitPtr>> DruidConnector::CreateSplits(
    const std::string& schema, const std::string& table,
    const AcceptedPushdown& pushdown, size_t target_splits) {
  (void)schema;
  (void)pushdown;
  (void)target_splits;
  // One split per query: the store executes the whole native query itself
  // (Druid brokers fan out internally).
  auto split = std::make_shared<DruidSplit>();
  split->datasource = table;
  return std::vector<SplitPtr>{split};
}

Result<std::unique_ptr<ConnectorPageSource>> DruidConnector::CreatePageSource(
    const SplitPtr& split, const AcceptedPushdown& pushdown) {
  auto druid_split = std::dynamic_pointer_cast<const DruidSplit>(
      std::shared_ptr<const ConnectorSplit>(split));
  if (druid_split == nullptr) {
    return Status::InvalidArgument("split is not a druid split");
  }
  ASSIGN_OR_RETURN(druid::DatasourceSchema ds,
                   store_->GetSchema(druid_split->datasource));
  ASSIGN_OR_RETURN(druid::DruidQuery query,
                   BuildQuery(druid_split->datasource, ds, pushdown));
  return std::unique_ptr<ConnectorPageSource>(
      new DruidPageSource(store_, std::move(query)));
}

}  // namespace presto
