#ifndef PRESTO_CONNECTORS_DRUID_DRUID_CONNECTOR_H_
#define PRESTO_CONNECTORS_DRUID_DRUID_CONNECTOR_H_

#include "presto/connector/connector.h"
#include "presto/druid/druid_store.h"

namespace presto {

/// Presto-Druid connector (Sections IV.A/IV.B): exposes mini-Druid
/// datasources as tables under schema "default" and pushes down
///   * dimension equality/IN predicates (served by bitmap inverted indexes),
///   * __time range predicates (segment pruning),
///   * LIMIT,
///   * count/sum/min/max aggregations with GROUP BY on dimensions —
///     "only aggregated results are streamed into the Presto engine".
/// Results of pushed aggregations are treated as partial aggregates by the
/// engine, which runs the final step (cheap: a handful of rows).
class DruidConnector : public Connector {
 public:
  explicit DruidConnector(druid::DruidStore* store) : store_(store) {}

  std::string name() const override { return "druid"; }

  std::vector<std::string> ListSchemas() override { return {"default"}; }
  std::vector<std::string> ListTables(const std::string& schema) override;
  Result<TypePtr> GetTableSchema(const std::string& schema,
                                 const std::string& table) override;

  Result<AcceptedPushdown> NegotiatePushdown(
      const std::string& schema, const std::string& table,
      const PushdownRequest& desired) override;

  Result<std::vector<SplitPtr>> CreateSplits(const std::string& schema,
                                             const std::string& table,
                                             const AcceptedPushdown& pushdown,
                                             size_t target_splits) override;

  Result<std::unique_ptr<ConnectorPageSource>> CreatePageSource(
      const SplitPtr& split, const AcceptedPushdown& pushdown) override;

  druid::DruidStore* store() { return store_; }

 private:
  druid::DruidStore* store_;
};

}  // namespace presto

#endif  // PRESTO_CONNECTORS_DRUID_DRUID_CONNECTOR_H_
