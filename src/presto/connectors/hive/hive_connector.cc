#include "presto/connectors/hive/hive_connector.h"

#include <algorithm>

#include "presto/common/fault_injection.h"
#include "presto/common/trace.h"
#include "presto/vector/vector_builder.h"

namespace presto {

namespace {

std::vector<std::string> SplitPath(const std::string& dotted) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= dotted.size()) {
    size_t dot = dotted.find('.', start);
    if (dot == std::string::npos) {
      parts.push_back(dotted.substr(start));
      break;
    }
    parts.push_back(dotted.substr(start, dot - start));
    start = dot + 1;
  }
  return parts;
}

// True when `dotted` names a non-repeated scalar leaf (structs-only path).
bool IsScalarLeafPath(const TypePtr& row_type, const std::string& dotted) {
  std::vector<std::string> parts = SplitPath(dotted);
  const Type* node = row_type.get();
  for (size_t i = 0; i < parts.size(); ++i) {
    if (node->kind() != TypeKind::kRow) return false;
    auto idx = node->FindField(parts[i]);
    if (!idx.has_value()) return false;
    node = node->child(*idx).get();
  }
  return node->IsScalar();
}

// Partition-value predicate evaluation (string compare semantics).
bool PartitionMatches(const std::string& value, const SimplePredicate& pred) {
  Value v = Value::String(value);
  switch (pred.op) {
    case SimplePredicate::Op::kEq:
      return v.Compare(pred.values[0]) == 0;
    case SimplePredicate::Op::kNe:
      return v.Compare(pred.values[0]) != 0;
    case SimplePredicate::Op::kLt:
      return v.Compare(pred.values[0]) < 0;
    case SimplePredicate::Op::kLe:
      return v.Compare(pred.values[0]) <= 0;
    case SimplePredicate::Op::kGt:
      return v.Compare(pred.values[0]) > 0;
    case SimplePredicate::Op::kGe:
      return v.Compare(pred.values[0]) >= 0;
    case SimplePredicate::Op::kIn:
      for (const Value& candidate : pred.values) {
        if (v.Compare(candidate) == 0) return true;
      }
      return false;
  }
  return false;
}

struct HiveSplit final : public ConnectorSplit {
  std::string file_path;
  std::string partition_column;  // empty = unpartitioned
  std::string partition_value;
  TypePtr table_schema;  // current table schema (files may be older)

  std::string ToString() const override { return "hive[" + file_path + "]"; }
};

// Adapts a vector read under the file's (possibly older, possibly pruned)
// schema to the target type: ROW fields missing in the file become all-NULL
// children — the schema-evolution read rule.
Result<VectorPtr> AdaptVector(const VectorPtr& actual, const TypePtr& target) {
  if (actual->type()->Equals(*target)) return actual;
  if (target->kind() != TypeKind::kRow ||
      actual->type()->kind() != TypeKind::kRow) {
    return Status::SchemaViolation("cannot adapt " + actual->type()->ToString() +
                                   " to " + target->ToString());
  }
  ASSIGN_OR_RETURN(VectorPtr flat, Vector::Flatten(actual));
  const auto* row = static_cast<const RowVector*>(flat.get());
  size_t n = row->size();
  std::vector<VectorPtr> children;
  for (size_t f = 0; f < target->NumChildren(); ++f) {
    const std::string& name = target->field_name(f);
    auto idx = actual->type()->FindField(name);
    if (!idx.has_value()) {
      ASSIGN_OR_RETURN(VectorPtr nulls, MakeAllNullVector(target->child(f), n));
      children.push_back(std::move(nulls));
    } else {
      ASSIGN_OR_RETURN(VectorPtr child,
                       AdaptVector(row->child(*idx), target->child(f)));
      children.push_back(std::move(child));
    }
  }
  std::vector<uint8_t> nulls(n, 0);
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    if (row->IsNull(i)) {
      nulls[i] = 1;
      any = true;
    }
  }
  if (!any) nulls.clear();
  return VectorPtr(std::make_shared<RowVector>(target, n, std::move(children),
                                               std::move(nulls)));
}

// -----------------------------------------------------------------------------
// Page source
// -----------------------------------------------------------------------------

class HivePageSource final : public ConnectorPageSource {
 public:
  HivePageSource(HiveConnector* connector,
                 std::shared_ptr<const HiveSplit> split,
                 AcceptedPushdown pushdown)
      : connector_(connector),
        split_(std::move(split)),
        pushdown_(std::move(pushdown)) {}

  Result<std::optional<Page>> NextPage() override {
    RETURN_IF_ERROR(EnsureOpen());
    if (exhausted_) return std::optional<Page>();
    while (true) {
      std::optional<Page> raw;
      if (legacy_reader_ != nullptr) {
        TraceEventScope span(TraceKind::kScanDecode, "scan-decode");
        ASSIGN_OR_RETURN(raw, legacy_reader_->NextBatch(file_columns_));
      } else if (native_reader_ != nullptr) {
        TraceEventScope span(TraceKind::kScanDecode, "scan-decode");
        ASSIGN_OR_RETURN(raw, native_reader_->NextBatch(scan_spec_));
      } else {
        raw = std::nullopt;  // file contributes nothing (predicate on missing leaf)
      }
      if (!raw.has_value()) {
        exhausted_ = true;
        return std::optional<Page>();
      }
      if (raw->num_rows() == 0) continue;
      ASSIGN_OR_RETURN(Page out, AssembleOutput(*raw));
      if (limit_ >= 0) {
        if (rows_emitted_ >= limit_) {
          exhausted_ = true;
          return std::optional<Page>();
        }
        if (rows_emitted_ + static_cast<int64_t>(out.num_rows()) > limit_) {
          std::vector<int32_t> rows(limit_ - rows_emitted_);
          for (size_t i = 0; i < rows.size(); ++i) {
            rows[i] = static_cast<int32_t>(i);
          }
          out = out.SliceRows(rows);
        }
      }
      rows_emitted_ += static_cast<int64_t>(out.num_rows());
      return std::optional<Page>(std::move(out));
    }
  }

  ScanSourceStats scan_stats() const override {
    const lakefile::ReaderStats* rs = nullptr;
    if (native_reader_ != nullptr) {
      rs = &native_reader_->stats();
    } else if (legacy_reader_ != nullptr) {
      rs = &legacy_reader_->stats();
    }
    if (rs == nullptr) return {};
    ScanSourceStats s;
    s.row_groups_total = rs->row_groups_total;
    s.row_groups_skipped =
        rs->row_groups_skipped_stats + rs->row_groups_skipped_dictionary;
    s.pages_total = rs->pages_total;
    s.pages_read = rs->pages_read;
    s.pages_skipped_stats = rs->pages_skipped_stats;
    s.pages_skipped_lazy = rs->pages_skipped_lazy;
    s.rows_pruned_late = rs->rows_pruned_late;
    s.dict_code_filter_hits = rs->dict_code_filter_hits;
    s.bytes_read = rs->bytes_read;
    return s;
  }

 private:
  Status EnsureOpen() {
    if (opened_) return Status::OK();
    opened_ = true;
    const HiveConnectorOptions& options = connector_->options();
    FileSystem* fs = connector_->file_system();
    limit_ = pushdown_.limit_pushed ? pushdown_.request.limit : -1;

    // File handle + footer via the worker cache.
    std::shared_ptr<RandomAccessFile> file;
    std::shared_ptr<const lakefile::FileFooter> footer;
    if (options.enable_footer_cache) {
      ASSIGN_OR_RETURN(file,
                       connector_->footer_cache().OpenFile(fs, split_->file_path));
      ASSIGN_OR_RETURN(footer, connector_->footer_cache().GetFooter(
                                   fs, split_->file_path));
    } else {
      ASSIGN_OR_RETURN(file, fs->OpenForRead(split_->file_path));
      ASSIGN_OR_RETURN(lakefile::FileFooter parsed,
                       lakefile::ReadFooter(file.get()));
      footer = std::make_shared<const lakefile::FileFooter>(std::move(parsed));
    }
    RETURN_IF_ERROR(
        CheckReadCompatible(*split_->table_schema, *footer->schema));

    // Which requested columns exist in the file (schema evolution).
    for (const std::string& column : pushdown_.request.columns) {
      if (column == split_->partition_column) continue;
      if (footer->schema->FindField(column).has_value()) {
        file_columns_.push_back(column);
      }
    }

    if (options.use_legacy_reader) {
      ASSIGN_OR_RETURN(legacy_reader_,
                       lakefile::LegacyLakeFileReader::Open(file, footer));
      return Status::OK();
    }

    // Native reader scan spec: prune leaves to those present in the file;
    // predicates on leaves the file lacks mean no row can match.
    ASSIGN_OR_RETURN(std::vector<lakefile::Leaf> file_leaves,
                     lakefile::EnumerateLeaves(*footer->schema));
    std::set<std::string> file_leaf_paths;
    for (const auto& leaf : file_leaves) file_leaf_paths.insert(leaf.path);

    for (const SimplePredicate& pred : pushdown_.request.predicates) {
      if (pred.column == split_->partition_column) continue;
      if (file_leaf_paths.count(pred.column) == 0) {
        return Status::OK();  // reader stays null: zero rows from this file
      }
      // lakefile::LeafPredicate IS SimplePredicate: accepted conjuncts flow
      // into the file reader without translation.
      scan_spec_.predicates.push_back(pred);
    }
    scan_spec_.columns = file_columns_;
    for (const std::string& leaf : pushdown_.request.required_leaves) {
      if (file_leaf_paths.count(leaf) > 0) {
        scan_spec_.required_leaves.push_back(leaf);
      }
    }
    ASSIGN_OR_RETURN(native_reader_, lakefile::NativeLakeFileReader::Open(
                                         file, options.reader, footer));
    return Status::OK();
  }

  // Maps the reader's output page to the requested output layout: inserts
  // the partition column, null-fills missing columns, adapts pruned/evolved
  // struct types.
  Result<Page> AssembleOutput(const Page& raw) {
    size_t n = raw.num_rows();
    std::vector<VectorPtr> columns;
    columns.reserve(pushdown_.request.columns.size());
    for (size_t c = 0; c < pushdown_.request.columns.size(); ++c) {
      const std::string& column = pushdown_.request.columns[c];
      const TypePtr& target = pushdown_.output_schema->child(c);
      if (column == split_->partition_column) {
        ASSIGN_OR_RETURN(
            VectorPtr part,
            MakeConstantPartitionVector(split_->partition_value, n));
        columns.push_back(std::move(part));
        continue;
      }
      auto it = std::find(file_columns_.begin(), file_columns_.end(), column);
      if (it == file_columns_.end()) {
        ASSIGN_OR_RETURN(VectorPtr nulls, MakeAllNullVector(target, n));
        columns.push_back(std::move(nulls));
        continue;
      }
      size_t raw_index = static_cast<size_t>(it - file_columns_.begin());
      ASSIGN_OR_RETURN(VectorPtr adapted,
                       AdaptVector(raw.column(raw_index), target));
      columns.push_back(std::move(adapted));
    }
    return Page(std::move(columns), n);
  }

  static Result<VectorPtr> MakeConstantPartitionVector(const std::string& value,
                                                       size_t n) {
    std::vector<std::string> values(n, value);
    return MakeVarcharVector(std::move(values));
  }

  HiveConnector* connector_;
  std::shared_ptr<const HiveSplit> split_;
  AcceptedPushdown pushdown_;

  bool opened_ = false;
  bool exhausted_ = false;
  std::vector<std::string> file_columns_;
  lakefile::ScanSpec scan_spec_;
  std::unique_ptr<lakefile::NativeLakeFileReader> native_reader_;
  std::unique_ptr<lakefile::LegacyLakeFileReader> legacy_reader_;
  int64_t limit_ = -1;
  int64_t rows_emitted_ = 0;
};

}  // namespace

// -----------------------------------------------------------------------------
// HiveConnector
// -----------------------------------------------------------------------------

HiveConnector::HiveConnector(FileSystem* fs, std::string root,
                             HiveConnectorOptions options)
    : fs_(fs), root_(std::move(root)), options_(options) {}

std::string HiveConnector::TableDir(const std::string& schema,
                                    const std::string& table) const {
  return root_ + "/" + schema + "/" + table;
}

Result<HiveConnector::TableMeta*> HiveConnector::FindTableLocked(
    const std::string& schema, const std::string& table) {
  auto s = tables_.find(schema);
  if (s == tables_.end()) return Status::NotFound("no such schema: " + schema);
  auto t = s->second.find(table);
  if (t == s->second.end()) {
    return Status::NotFound("no such table: " + schema + "." + table);
  }
  return &t->second;
}

Status HiveConnector::CreateTable(const std::string& schema,
                                  const std::string& table, TypePtr row_type,
                                  const std::string& partition_column) {
  if (row_type == nullptr || row_type->kind() != TypeKind::kRow) {
    return Status::InvalidArgument("table type must be a ROW type");
  }
  if (!partition_column.empty()) {
    auto idx = row_type->FindField(partition_column);
    if (!idx.has_value()) {
      return Status::InvalidArgument("partition column not in schema: " +
                                     partition_column);
    }
    if (row_type->child(*idx)->kind() != TypeKind::kVarchar) {
      return Status::InvalidArgument("partition column must be VARCHAR");
    }
  }
  RETURN_IF_ERROR(schema_registry_.RegisterTable(schema + "." + table, row_type));
  std::lock_guard<std::mutex> lock(mu_);
  TableMeta meta;
  meta.partition_column = partition_column;
  tables_[schema][table] = std::move(meta);
  return Status::OK();
}

Status HiveConnector::EvolveSchema(const std::string& schema,
                                   const std::string& table, TypePtr new_type) {
  return schema_registry_.EvolveTable(schema + "." + table, std::move(new_type));
}

Status HiveConnector::WriteDataFile(const std::string& schema,
                                    const std::string& table,
                                    const std::string& partition_value,
                                    const std::vector<Page>& pages,
                                    lakefile::WriterOptions writer_options,
                                    lakefile::WriterMode writer_mode,
                                    TypePtr file_schema) {
  std::string partition_column;
  int64_t file_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ASSIGN_OR_RETURN(TableMeta * meta, FindTableLocked(schema, table));
    partition_column = meta->partition_column;
    if (partition_column.empty() && !partition_value.empty()) {
      return Status::InvalidArgument("table is not partitioned");
    }
    if (!partition_column.empty() && partition_value.empty()) {
      return Status::InvalidArgument("partition value required");
    }
    file_id = meta->next_file_id++;
    // New partitions default to sealed; near-real-time partitions are
    // explicitly opened via SetPartitionSealed(..., false).
    meta->partition_sealed.emplace(partition_value, true);
  }
  if (file_schema == nullptr) {
    ASSIGN_OR_RETURN(file_schema,
                     schema_registry_.CurrentSchema(schema + "." + table));
  }
  // The partition column is encoded in the directory name, not the file:
  // drop it from the file schema.
  TypePtr on_disk = file_schema;
  std::optional<size_t> partition_index;
  if (!partition_column.empty()) {
    partition_index = file_schema->FindField(partition_column);
    if (partition_index.has_value()) {
      std::vector<std::string> names;
      std::vector<TypePtr> types;
      for (size_t i = 0; i < file_schema->NumChildren(); ++i) {
        if (i == *partition_index) continue;
        names.push_back(file_schema->field_name(i));
        types.push_back(file_schema->child(i));
      }
      on_disk = Type::Row(std::move(names), std::move(types));
    }
  }
  std::vector<Page> on_disk_pages;
  for (const Page& page : pages) {
    if (partition_index.has_value()) {
      std::vector<VectorPtr> columns;
      for (size_t i = 0; i < page.num_columns(); ++i) {
        if (i == *partition_index) continue;
        columns.push_back(page.column(i));
      }
      on_disk_pages.emplace_back(std::move(columns), page.num_rows());
    } else {
      on_disk_pages.push_back(page);
    }
  }
  ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                   lakefile::WriteLakeFile(on_disk, on_disk_pages,
                                           writer_options, writer_mode));
  std::string dir = TableDir(schema, table);
  if (!partition_column.empty()) {
    dir += "/" + partition_column + "=" + partition_value;
  }
  std::string path = dir + "/part-" + std::to_string(file_id) + ".lake";
  RETURN_IF_ERROR(fs_->WriteFile(path, bytes));
  file_list_cache_.Invalidate(dir);
  file_list_cache_.Invalidate(TableDir(schema, table));  // partition set changed
  footer_cache_.Invalidate(path);
  return Status::OK();
}

Status HiveConnector::SetPartitionSealed(const std::string& schema,
                                         const std::string& table,
                                         const std::string& partition_value,
                                         bool sealed) {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(TableMeta * meta, FindTableLocked(schema, table));
  meta->partition_sealed[partition_value] = sealed;
  return Status::OK();
}

std::vector<std::string> HiveConnector::ListSchemas() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, tables] : tables_) out.push_back(name);
  return out;
}

std::vector<std::string> HiveConnector::ListTables(const std::string& schema) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  auto s = tables_.find(schema);
  if (s == tables_.end()) return out;
  for (const auto& [name, meta] : s->second) out.push_back(name);
  return out;
}

Result<TypePtr> HiveConnector::GetTableSchema(const std::string& schema,
                                              const std::string& table) {
  return schema_registry_.CurrentSchema(schema + "." + table);
}

Result<AcceptedPushdown> HiveConnector::NegotiatePushdown(
    const std::string& schema, const std::string& table,
    const PushdownRequest& desired) {
  ASSIGN_OR_RETURN(TypePtr row_type, GetTableSchema(schema, table));
  std::string partition_column;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ASSIGN_OR_RETURN(TableMeta * meta, FindTableLocked(schema, table));
    partition_column = meta->partition_column;
  }

  AcceptedPushdown accepted;
  accepted.request.columns = desired.columns;

  bool legacy = options_.use_legacy_reader;
  if (!legacy) {
    // Predicates: partition column, or non-repeated scalar leaf paths.
    for (size_t i = 0; i < desired.predicates.size(); ++i) {
      const SimplePredicate& pred = desired.predicates[i];
      bool pushable = false;
      if (!partition_column.empty() && pred.column == partition_column) {
        pushable = true;
        for (const Value& v : pred.values) pushable = pushable && v.is_string();
      } else if (IsScalarLeafPath(row_type, pred.column)) {
        pushable = true;
      }
      if (pushable) {
        accepted.request.predicates.push_back(pred);
        accepted.predicate_indices.push_back(i);
      }
    }
    accepted.request.required_leaves = desired.required_leaves;
    if (desired.limit >= 0 &&
        accepted.predicate_indices.size() == desired.predicates.size()) {
      accepted.limit_pushed = true;
      accepted.request.limit = desired.limit;
    }
    // The native reader evaluates every absorbed conjunct row-by-row (page
    // stats and dictionary codes only prune; survivors are still tested), so
    // emitted rows are exactly the matching rows and the engine may drop the
    // absorbed conjuncts from its residual filter.
    accepted.predicates_enforced = true;
  }

  // Output schema keeps the FULL table column types: nested column pruning
  // is an I/O optimization inside the reader, and the page source null-fills
  // pruned-away struct fields so upstream dereference indices stay valid.
  std::vector<std::string> names;
  std::vector<TypePtr> types;
  for (const std::string& column : desired.columns) {
    auto idx = row_type->FindField(column);
    if (!idx.has_value()) return Status::NotFound("no such column: " + column);
    names.push_back(column);
    types.push_back(row_type->child(*idx));
  }
  accepted.output_schema = Type::Row(std::move(names), std::move(types));
  return accepted;
}

Result<std::vector<SplitPtr>> HiveConnector::CreateSplits(
    const std::string& schema, const std::string& table,
    const AcceptedPushdown& pushdown, size_t target_splits) {
  (void)target_splits;  // one split per file
  ASSIGN_OR_RETURN(TypePtr row_type, GetTableSchema(schema, table));
  std::string partition_column;
  std::map<std::string, bool> sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ASSIGN_OR_RETURN(TableMeta * meta, FindTableLocked(schema, table));
    partition_column = meta->partition_column;
    sealed = meta->partition_sealed;
  }
  std::string table_dir = TableDir(schema, table);

  // Enumerate partitions (or the bare table directory).
  struct PartitionRef {
    std::string dir;
    std::string value;
  };
  std::vector<PartitionRef> partitions;
  if (partition_column.empty()) {
    partitions.push_back({table_dir, ""});
  } else {
    // Partition enumeration also goes through the file-list cache: the set
    // of partition directories only changes on writes, which invalidate the
    // table-dir entry, so cached listings stay fresh.
    ASSIGN_OR_RETURN(
        std::shared_ptr<const std::vector<FileInfo>> entries_ptr,
        file_list_cache_.List(fs_, table_dir,
                              /*sealed=*/options_.enable_file_list_cache));
    const std::vector<FileInfo>& entries = *entries_ptr;
    std::string prefix = partition_column + "=";
    for (const FileInfo& entry : entries) {
      if (!entry.is_directory) continue;
      std::string dirname = entry.path.substr(entry.path.rfind('/') + 1);
      if (dirname.rfind(prefix, 0) != 0) continue;
      std::string value = dirname.substr(prefix.size());
      // Partition pruning against pushed partition-column predicates.
      bool keep = true;
      for (const SimplePredicate& pred : pushdown.request.predicates) {
        if (pred.column == partition_column && !PartitionMatches(value, pred)) {
          keep = false;
          break;
        }
      }
      if (keep) partitions.push_back({entry.path, value});
    }
  }

  std::vector<SplitPtr> splits;
  for (const PartitionRef& partition : partitions) {
    auto sealed_it = sealed.find(partition.value);
    bool is_sealed = sealed_it != sealed.end() && sealed_it->second;
    Result<std::shared_ptr<const std::vector<FileInfo>>> files =
        options_.enable_file_list_cache
            ? file_list_cache_.List(fs_, partition.dir, is_sealed)
            : file_list_cache_.List(fs_, partition.dir, /*sealed=*/false);
    if (!files.ok()) {
      if (files.status().code() == StatusCode::kNotFound) continue;
      return files.status();
    }
    for (const FileInfo& info : **files) {
      if (info.is_directory) continue;
      auto split = std::make_shared<HiveSplit>();
      split->file_path = info.path;
      split->partition_column = partition_column;
      split->partition_value = partition.value;
      split->table_schema = row_type;
      splits.push_back(std::move(split));
    }
  }
  return splits;
}

Result<std::unique_ptr<ConnectorPageSource>> HiveConnector::CreatePageSource(
    const SplitPtr& split, const AcceptedPushdown& pushdown) {
  RETURN_IF_ERROR(FaultInjector::Global().Hit("connector.split.open"));
  auto hive_split = std::dynamic_pointer_cast<const HiveSplit>(
      std::shared_ptr<const ConnectorSplit>(split));
  if (hive_split == nullptr) {
    return Status::InvalidArgument("split is not a hive split");
  }
  return std::unique_ptr<ConnectorPageSource>(
      new HivePageSource(this, std::move(hive_split), pushdown));
}

}  // namespace presto
