#ifndef PRESTO_CONNECTORS_HIVE_HIVE_CONNECTOR_H_
#define PRESTO_CONNECTORS_HIVE_HIVE_CONNECTOR_H_

#include <map>
#include <mutex>
#include <set>

#include "presto/cache/file_list_cache.h"
#include "presto/cache/footer_cache.h"
#include "presto/connector/connector.h"
#include "presto/fs/file_system.h"
#include "presto/lakefile/reader.h"
#include "presto/lakefile/writer.h"
#include "presto/types/schema_evolution.h"

namespace presto {

/// Behaviour switches of the Hive connector. `use_legacy_reader` swaps in
/// the row-materializing original reader (the Figure 17 baseline), which
/// also disables every pushdown since that reader supports none of them.
struct HiveConnectorOptions {
  lakefile::ReaderOptions reader;
  bool use_legacy_reader = false;
  bool enable_file_list_cache = true;
  bool enable_footer_cache = true;
};

/// Presto-Hive connector over lakefiles on a FileSystem (HDFS or S3
/// simulation). Tables live under `<root>/<schema>/<table>`; a table may be
/// partitioned by one VARCHAR column whose values map to
/// `<table-dir>/<column>=<value>/` directories, each holding lakefiles.
///
/// Implements: projection pushdown with nested column pruning, predicate
/// pushdown (partition pruning + row-group/dictionary skipping inside the
/// reader), limit pushdown, the coordinator file-list cache (sealed
/// partitions only, Section VII.A), the worker footer/handle cache
/// (Section VII.B), and schema evolution (Section V.A): files written under
/// older schema versions null-fill added fields and ignore removed ones.
class HiveConnector : public Connector {
 public:
  HiveConnector(FileSystem* fs, std::string root,
                HiveConnectorOptions options = HiveConnectorOptions());

  std::string name() const override { return "hive"; }

  // -- DDL / ingest (the "metastore" side) -----------------------------------
  Status CreateTable(const std::string& schema, const std::string& table,
                     TypePtr row_type, const std::string& partition_column = "");

  /// Validates and records a schema evolution (add/remove fields only).
  Status EvolveSchema(const std::string& schema, const std::string& table,
                      TypePtr new_type);

  /// Writes pages as one new lakefile in the given partition ("" for
  /// unpartitioned tables). The file is written under the CURRENT table
  /// schema unless `file_schema` overrides it (to simulate old files).
  Status WriteDataFile(const std::string& schema, const std::string& table,
                       const std::string& partition_value,
                       const std::vector<Page>& pages,
                       lakefile::WriterOptions writer_options = {},
                       lakefile::WriterMode writer_mode = lakefile::WriterMode::kNative,
                       TypePtr file_schema = nullptr);

  /// Marks a partition sealed (cacheable) or open (near-real-time ingest;
  /// file listings always go to storage).
  Status SetPartitionSealed(const std::string& schema, const std::string& table,
                            const std::string& partition_value, bool sealed);

  // -- Connector interface ------------------------------------------------------
  std::vector<std::string> ListSchemas() override;
  std::vector<std::string> ListTables(const std::string& schema) override;
  Result<TypePtr> GetTableSchema(const std::string& schema,
                                 const std::string& table) override;

  Result<AcceptedPushdown> NegotiatePushdown(
      const std::string& schema, const std::string& table,
      const PushdownRequest& desired) override;

  Result<std::vector<SplitPtr>> CreateSplits(const std::string& schema,
                                             const std::string& table,
                                             const AcceptedPushdown& pushdown,
                                             size_t target_splits) override;

  Result<std::unique_ptr<ConnectorPageSource>> CreatePageSource(
      const SplitPtr& split, const AcceptedPushdown& pushdown) override;

  FileListCache& file_list_cache() { return file_list_cache_; }
  FooterCache& footer_cache() { return footer_cache_; }
  FileSystem* file_system() { return fs_; }
  const HiveConnectorOptions& options() const { return options_; }
  void set_options(const HiveConnectorOptions& options) { options_ = options; }

 private:
  struct TableMeta {
    std::string partition_column;  // empty = unpartitioned
    std::map<std::string, bool> partition_sealed;
    int64_t next_file_id = 0;
  };

  std::string TableDir(const std::string& schema, const std::string& table) const;

  Result<TableMeta*> FindTableLocked(const std::string& schema,
                                     const std::string& table);

  FileSystem* fs_;
  std::string root_;
  HiveConnectorOptions options_;
  SchemaRegistry schema_registry_;
  FileListCache file_list_cache_;
  FooterCache footer_cache_;

  std::mutex mu_;
  std::map<std::string, std::map<std::string, TableMeta>> tables_;
};

}  // namespace presto

#endif  // PRESTO_CONNECTORS_HIVE_HIVE_CONNECTOR_H_
