#ifndef PRESTO_CONNECTORS_MYSQL_MYSQL_CONNECTOR_H_
#define PRESTO_CONNECTORS_MYSQL_MYSQL_CONNECTOR_H_

#include "presto/connector/connector.h"
#include "presto/mysqlite/mysqlite.h"

namespace presto {

/// Presto-MySQL connector: "users could join Hadoop data with MySQL data
/// using Presto-Hive-connector and Presto-MySQL-connector, no need to copy
/// any data" (Section IV.A). Pushes projections, predicates, and limits into
/// the row store's scan API; joins and aggregations stay in the engine.
class MySqlConnector : public Connector {
 public:
  explicit MySqlConnector(mysqlite::MySqlLite* db) : db_(db) {}

  std::string name() const override { return "mysql"; }

  std::vector<std::string> ListSchemas() override { return db_->ListSchemas(); }
  std::vector<std::string> ListTables(const std::string& schema) override {
    return db_->ListTables(schema);
  }
  Result<TypePtr> GetTableSchema(const std::string& schema,
                                 const std::string& table) override {
    return db_->TableType(schema, table);
  }

  Result<AcceptedPushdown> NegotiatePushdown(
      const std::string& schema, const std::string& table,
      const PushdownRequest& desired) override;

  Result<std::vector<SplitPtr>> CreateSplits(const std::string& schema,
                                             const std::string& table,
                                             const AcceptedPushdown& pushdown,
                                             size_t target_splits) override;

  Result<std::unique_ptr<ConnectorPageSource>> CreatePageSource(
      const SplitPtr& split, const AcceptedPushdown& pushdown) override;

  mysqlite::MySqlLite* db() { return db_; }

 private:
  mysqlite::MySqlLite* db_;
};

}  // namespace presto

#endif  // PRESTO_CONNECTORS_MYSQL_MYSQL_CONNECTOR_H_
