#include "presto/connectors/mysql/mysql_connector.h"

#include "presto/vector/vector_builder.h"

namespace presto {

namespace {

struct MySqlSplit final : public ConnectorSplit {
  std::string schema;
  std::string table;

  std::string ToString() const override {
    return "mysql[" + schema + "." + table + "]";
  }
};

mysqlite::CompareOp ToMySqlOp(SimplePredicate::Op op) {
  switch (op) {
    case SimplePredicate::Op::kEq:
      return mysqlite::CompareOp::kEq;
    case SimplePredicate::Op::kNe:
      return mysqlite::CompareOp::kNe;
    case SimplePredicate::Op::kLt:
      return mysqlite::CompareOp::kLt;
    case SimplePredicate::Op::kLe:
      return mysqlite::CompareOp::kLe;
    case SimplePredicate::Op::kGt:
      return mysqlite::CompareOp::kGt;
    case SimplePredicate::Op::kGe:
      return mysqlite::CompareOp::kGe;
    case SimplePredicate::Op::kIn:
      return mysqlite::CompareOp::kIn;
  }
  return mysqlite::CompareOp::kEq;
}

class MySqlPageSource final : public ConnectorPageSource {
 public:
  MySqlPageSource(mysqlite::MySqlLite* db, std::string schema, std::string table,
                  mysqlite::ScanRequest request)
      : db_(db),
        schema_(std::move(schema)),
        table_(std::move(table)),
        request_(std::move(request)) {}

  Result<std::optional<Page>> NextPage() override {
    if (done_) return std::optional<Page>();
    done_ = true;
    ASSIGN_OR_RETURN(mysqlite::ScanResult result,
                     db_->Scan(schema_, table_, request_));
    if (result.rows.empty()) return std::optional<Page>();
    std::vector<VectorBuilder> builders;
    for (const TypePtr& type : result.column_types) builders.emplace_back(type);
    for (auto& row : result.rows) {
      for (size_t c = 0; c < row.size(); ++c) {
        RETURN_IF_ERROR(builders[c].Append(std::move(row[c])));
      }
    }
    std::vector<VectorPtr> columns;
    for (auto& b : builders) columns.push_back(b.Build());
    return std::optional<Page>(Page(std::move(columns), result.rows.size()));
  }

 private:
  mysqlite::MySqlLite* db_;
  std::string schema_;
  std::string table_;
  mysqlite::ScanRequest request_;
  bool done_ = false;
};

}  // namespace

Result<AcceptedPushdown> MySqlConnector::NegotiatePushdown(
    const std::string& schema, const std::string& table,
    const PushdownRequest& desired) {
  ASSIGN_OR_RETURN(TypePtr row_type, db_->TableType(schema, table));
  AcceptedPushdown accepted;
  accepted.request.columns = desired.columns;
  // All scalar-column comparisons can run server-side.
  for (size_t i = 0; i < desired.predicates.size(); ++i) {
    const SimplePredicate& pred = desired.predicates[i];
    if (row_type->FindField(pred.column).has_value()) {
      accepted.request.predicates.push_back(pred);
      accepted.predicate_indices.push_back(i);
    }
  }
  if (desired.limit >= 0 &&
      accepted.predicate_indices.size() == desired.predicates.size()) {
    accepted.limit_pushed = true;
    accepted.request.limit = desired.limit;
  }
  // The server applies WHERE exactly, so absorbed conjuncts need no engine
  // re-check.
  accepted.predicates_enforced = true;
  std::vector<std::string> names;
  std::vector<TypePtr> types;
  for (const std::string& column : desired.columns) {
    auto idx = row_type->FindField(column);
    if (!idx.has_value()) return Status::NotFound("no such column: " + column);
    names.push_back(column);
    types.push_back(row_type->child(*idx));
  }
  accepted.output_schema = Type::Row(std::move(names), std::move(types));
  return accepted;
}

Result<std::vector<SplitPtr>> MySqlConnector::CreateSplits(
    const std::string& schema, const std::string& table,
    const AcceptedPushdown& pushdown, size_t target_splits) {
  (void)pushdown;
  (void)target_splits;
  auto split = std::make_shared<MySqlSplit>();
  split->schema = schema;
  split->table = table;
  return std::vector<SplitPtr>{split};
}

Result<std::unique_ptr<ConnectorPageSource>> MySqlConnector::CreatePageSource(
    const SplitPtr& split, const AcceptedPushdown& pushdown) {
  auto mysql_split = std::dynamic_pointer_cast<const MySqlSplit>(
      std::shared_ptr<const ConnectorSplit>(split));
  if (mysql_split == nullptr) {
    return Status::InvalidArgument("split is not a mysql split");
  }
  mysqlite::ScanRequest request;
  request.columns = pushdown.request.columns;
  for (const SimplePredicate& pred : pushdown.request.predicates) {
    request.predicates.push_back(
        mysqlite::ColumnPredicate{pred.column, ToMySqlOp(pred.op), pred.values});
  }
  if (pushdown.limit_pushed) request.limit = pushdown.request.limit;
  return std::unique_ptr<ConnectorPageSource>(
      new MySqlPageSource(db_, mysql_split->schema, mysql_split->table,
                          std::move(request)));
}

}  // namespace presto
