#ifndef PRESTO_CONNECTORS_MEMORY_MEMORY_CONNECTOR_H_
#define PRESTO_CONNECTORS_MEMORY_MEMORY_CONNECTOR_H_

#include <map>
#include <mutex>

#include "presto/connector/connector.h"

namespace presto {

/// In-memory table connector: the simplest connector (projection and limit
/// pushdown only — filtering and aggregation stay in the engine). Used for
/// quickstarts, tests, and as the baseline "no pushdown support" connector
/// in ablation benches.
class MemoryConnector : public Connector {
 public:
  std::string name() const override { return "memory"; }

  Status CreateTable(const std::string& schema, const std::string& table,
                     TypePtr row_type);
  Status AppendPage(const std::string& schema, const std::string& table,
                    Page page);

  std::vector<std::string> ListSchemas() override;
  std::vector<std::string> ListTables(const std::string& schema) override;
  Result<TypePtr> GetTableSchema(const std::string& schema,
                                 const std::string& table) override;

  Result<AcceptedPushdown> NegotiatePushdown(
      const std::string& schema, const std::string& table,
      const PushdownRequest& desired) override;

  Result<std::vector<SplitPtr>> CreateSplits(const std::string& schema,
                                             const std::string& table,
                                             const AcceptedPushdown& pushdown,
                                             size_t target_splits) override;

  Result<std::unique_ptr<ConnectorPageSource>> CreatePageSource(
      const SplitPtr& split, const AcceptedPushdown& pushdown) override;

 private:
  struct Table {
    TypePtr row_type;
    std::vector<Page> pages;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, std::shared_ptr<Table>>> schemas_;
};

}  // namespace presto

#endif  // PRESTO_CONNECTORS_MEMORY_MEMORY_CONNECTOR_H_
