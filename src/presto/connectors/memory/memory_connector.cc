#include "presto/connectors/memory/memory_connector.h"

#include "presto/common/fault_injection.h"

namespace presto {

namespace {

struct MemorySplit final : public ConnectorSplit {
  std::shared_ptr<const std::vector<Page>> pages;
  size_t begin = 0;
  size_t end = 0;
  TypePtr row_type;

  std::string ToString() const override {
    return "memory[pages " + std::to_string(begin) + ".." + std::to_string(end) + ")";
  }
};

class MemoryPageSource final : public ConnectorPageSource {
 public:
  MemoryPageSource(std::shared_ptr<const MemorySplit> split,
                   std::vector<int> projection, int64_t limit)
      : split_(std::move(split)),
        projection_(std::move(projection)),
        limit_(limit),
        next_(split_->begin) {}

  Result<std::optional<Page>> NextPage() override {
    RETURN_IF_ERROR(FaultInjector::Global().Hit("connector.split.read"));
    while (next_ < split_->end) {
      const Page& page = (*split_->pages)[next_++];
      if (page.num_rows() == 0) continue;
      std::vector<VectorPtr> columns;
      columns.reserve(projection_.size());
      for (int c : projection_) columns.push_back(page.column(c));
      Page out(std::move(columns), page.num_rows());
      if (limit_ >= 0) {
        if (rows_emitted_ >= limit_) return std::optional<Page>();
        if (rows_emitted_ + static_cast<int64_t>(out.num_rows()) > limit_) {
          std::vector<int32_t> rows(limit_ - rows_emitted_);
          for (size_t i = 0; i < rows.size(); ++i) {
            rows[i] = static_cast<int32_t>(i);
          }
          out = out.SliceRows(rows);
        }
      }
      rows_emitted_ += static_cast<int64_t>(out.num_rows());
      return std::optional<Page>(std::move(out));
    }
    return std::optional<Page>();
  }

 private:
  std::shared_ptr<const MemorySplit> split_;
  std::vector<int> projection_;
  int64_t limit_;
  size_t next_;
  int64_t rows_emitted_ = 0;
};

}  // namespace

Status MemoryConnector::CreateTable(const std::string& schema,
                                    const std::string& table, TypePtr row_type) {
  if (row_type == nullptr || row_type->kind() != TypeKind::kRow) {
    return Status::InvalidArgument("table type must be a ROW type");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (schemas_[schema].count(table) > 0) {
    return Status::AlreadyExists("table exists: " + schema + "." + table);
  }
  auto t = std::make_shared<Table>();
  t->row_type = std::move(row_type);
  schemas_[schema][table] = std::move(t);
  return Status::OK();
}

Status MemoryConnector::AppendPage(const std::string& schema,
                                   const std::string& table, Page page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto s = schemas_.find(schema);
  if (s == schemas_.end() || s->second.count(table) == 0) {
    return Status::NotFound("no such table: " + schema + "." + table);
  }
  Table& t = *s->second[table];
  if (page.num_columns() != t.row_type->NumChildren()) {
    return Status::InvalidArgument("page width does not match table schema");
  }
  t.pages.push_back(std::move(page));
  return Status::OK();
}

std::vector<std::string> MemoryConnector::ListSchemas() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, tables] : schemas_) out.push_back(name);
  return out;
}

std::vector<std::string> MemoryConnector::ListTables(const std::string& schema) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  auto s = schemas_.find(schema);
  if (s == schemas_.end()) return out;
  for (const auto& [name, table] : s->second) out.push_back(name);
  return out;
}

Result<TypePtr> MemoryConnector::GetTableSchema(const std::string& schema,
                                                const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto s = schemas_.find(schema);
  if (s == schemas_.end() || s->second.count(table) == 0) {
    return Status::NotFound("no such table: " + schema + "." + table);
  }
  return s->second[table]->row_type;
}

Result<AcceptedPushdown> MemoryConnector::NegotiatePushdown(
    const std::string& schema, const std::string& table,
    const PushdownRequest& desired) {
  ASSIGN_OR_RETURN(TypePtr row_type, GetTableSchema(schema, table));
  AcceptedPushdown accepted;
  accepted.request.columns = desired.columns;
  // Filters can only be applied above; a limit alone is a valid upper bound.
  accepted.limit_pushed = desired.limit >= 0 && desired.predicates.empty();
  accepted.request.limit = accepted.limit_pushed ? desired.limit : -1;
  std::vector<std::string> names;
  std::vector<TypePtr> types;
  for (const std::string& column : desired.columns) {
    auto idx = row_type->FindField(column);
    if (!idx.has_value()) {
      return Status::NotFound("no such column: " + column);
    }
    names.push_back(column);
    types.push_back(row_type->child(*idx));
  }
  accepted.output_schema = Type::Row(std::move(names), std::move(types));
  return accepted;
}

Result<std::vector<SplitPtr>> MemoryConnector::CreateSplits(
    const std::string& schema, const std::string& table,
    const AcceptedPushdown& pushdown, size_t target_splits) {
  (void)pushdown;
  std::shared_ptr<Table> t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto s = schemas_.find(schema);
    if (s == schemas_.end() || s->second.count(table) == 0) {
      return Status::NotFound("no such table: " + schema + "." + table);
    }
    t = s->second[table];
  }
  auto pages = std::make_shared<const std::vector<Page>>(t->pages);
  size_t n = pages->size();
  if (target_splits == 0) target_splits = 1;
  size_t per_split = std::max<size_t>(1, (n + target_splits - 1) / target_splits);
  std::vector<SplitPtr> splits;
  for (size_t begin = 0; begin < n; begin += per_split) {
    auto split = std::make_shared<MemorySplit>();
    split->pages = pages;
    split->begin = begin;
    split->end = std::min(n, begin + per_split);
    split->row_type = t->row_type;
    splits.push_back(std::move(split));
  }
  if (splits.empty()) {
    // Empty table still yields one (empty) split so readers see the schema.
    auto split = std::make_shared<MemorySplit>();
    split->pages = pages;
    split->row_type = t->row_type;
    splits.push_back(std::move(split));
  }
  return splits;
}

Result<std::unique_ptr<ConnectorPageSource>> MemoryConnector::CreatePageSource(
    const SplitPtr& split, const AcceptedPushdown& pushdown) {
  RETURN_IF_ERROR(FaultInjector::Global().Hit("connector.split.open"));
  auto memory_split = std::dynamic_pointer_cast<const MemorySplit>(
      std::shared_ptr<const ConnectorSplit>(split));
  if (memory_split == nullptr) {
    return Status::InvalidArgument("split is not a memory split");
  }
  std::vector<int> projection;
  for (const std::string& column : pushdown.request.columns) {
    auto idx = memory_split->row_type->FindField(column);
    if (!idx.has_value()) return Status::NotFound("no such column: " + column);
    projection.push_back(static_cast<int>(*idx));
  }
  return std::unique_ptr<ConnectorPageSource>(new MemoryPageSource(
      std::move(memory_split), std::move(projection), pushdown.request.limit));
}

}  // namespace presto
