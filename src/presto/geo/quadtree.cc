#include "presto/geo/quadtree.h"

namespace presto {
namespace geo {

QuadTree::QuadTree(BoundingBox bounds, int max_items_per_node, int max_depth)
    : max_items_per_node_(max_items_per_node), max_depth_(max_depth) {
  Node root;
  root.bounds = bounds;
  nodes_.push_back(std::move(root));
}

BoundingBox QuadTree::QuadrantBounds(const Node& node, int quadrant) const {
  double mid_x = (node.bounds.min_x + node.bounds.max_x) / 2;
  double mid_y = (node.bounds.min_y + node.bounds.max_y) / 2;
  switch (quadrant) {
    case 0:
      return BoundingBox{node.bounds.min_x, node.bounds.min_y, mid_x, mid_y};
    case 1:
      return BoundingBox{mid_x, node.bounds.min_y, node.bounds.max_x, mid_y};
    case 2:
      return BoundingBox{node.bounds.min_x, mid_y, mid_x, node.bounds.max_y};
    default:
      return BoundingBox{mid_x, mid_y, node.bounds.max_x, node.bounds.max_y};
  }
}

int QuadTree::QuadrantFor(const Node& node, const BoundingBox& box) const {
  for (int q = 0; q < 4; ++q) {
    BoundingBox qb = QuadrantBounds(node, q);
    if (box.min_x >= qb.min_x && box.max_x <= qb.max_x &&
        box.min_y >= qb.min_y && box.max_y <= qb.max_y) {
      return q;
    }
  }
  return -1;
}

void QuadTree::Insert(int32_t id, const BoundingBox& box) {
  InsertAt(0, 0, Item{id, box});
  ++num_items_;
}

void QuadTree::InsertAt(int32_t node_index, int depth, const Item& item) {
  while (true) {
    Node& node = nodes_[node_index];
    if (node.is_leaf()) {
      node.items.push_back(item);
      if (static_cast<int>(node.items.size()) > max_items_per_node_ &&
          depth < max_depth_) {
        Split(node_index, depth);
      }
      return;
    }
    int quadrant = QuadrantFor(node, item.box);
    if (quadrant < 0) {
      node.items.push_back(item);  // straddles: stays at this internal node
      return;
    }
    node_index = node.children[quadrant];
    ++depth;
  }
}

void QuadTree::Split(int32_t node_index, int depth) {
  // Create children, then redistribute items that fit entirely in one
  // quadrant.
  int32_t first_child = static_cast<int32_t>(nodes_.size());
  for (int q = 0; q < 4; ++q) {
    Node child;
    child.bounds = QuadrantBounds(nodes_[node_index], q);
    nodes_.push_back(std::move(child));
  }
  // nodes_ may have reallocated: re-acquire the reference.
  Node& node = nodes_[node_index];
  for (int q = 0; q < 4; ++q) node.children[q] = first_child + q;
  std::vector<Item> keep;
  std::vector<Item> moved = std::move(node.items);
  node.items.clear();
  for (const Item& item : moved) {
    int quadrant = QuadrantFor(nodes_[node_index], item.box);
    if (quadrant < 0) {
      keep.push_back(item);
    } else {
      InsertAt(nodes_[node_index].children[quadrant], depth + 1, item);
    }
  }
  nodes_[node_index].items = std::move(keep);
}

void QuadTree::Query(GeoPoint p, std::vector<int32_t>* out) const {
  int32_t node_index = 0;
  while (node_index >= 0) {
    const Node& node = nodes_[node_index];
    for (const Item& item : node.items) {
      if (item.box.Contains(p)) out->push_back(item.id);
    }
    if (node.is_leaf()) return;
    double mid_x = (node.bounds.min_x + node.bounds.max_x) / 2;
    double mid_y = (node.bounds.min_y + node.bounds.max_y) / 2;
    int quadrant = (p.x >= mid_x ? 1 : 0) + (p.y >= mid_y ? 2 : 0);
    node_index = node.children[quadrant];
  }
}

void QuadTree::Serialize(ByteBuffer* out) const {
  out->PutVarint(static_cast<uint64_t>(max_items_per_node_));
  out->PutVarint(static_cast<uint64_t>(max_depth_));
  out->PutVarint(num_items_);
  out->PutVarint(nodes_.size());
  for (const Node& node : nodes_) {
    out->PutDouble(node.bounds.min_x);
    out->PutDouble(node.bounds.min_y);
    out->PutDouble(node.bounds.max_x);
    out->PutDouble(node.bounds.max_y);
    for (int q = 0; q < 4; ++q) {
      out->PutSignedVarint(node.children[q]);
    }
    out->PutVarint(node.items.size());
    for (const Item& item : node.items) {
      out->PutSignedVarint(item.id);
      out->PutDouble(item.box.min_x);
      out->PutDouble(item.box.min_y);
      out->PutDouble(item.box.max_x);
      out->PutDouble(item.box.max_y);
    }
  }
}

Result<QuadTree> QuadTree::Deserialize(ByteReader* reader) {
  ASSIGN_OR_RETURN(uint64_t max_items, reader->ReadVarint());
  ASSIGN_OR_RETURN(uint64_t max_depth, reader->ReadVarint());
  ASSIGN_OR_RETURN(uint64_t num_items, reader->ReadVarint());
  ASSIGN_OR_RETURN(uint64_t num_nodes, reader->ReadVarint());
  if (num_nodes == 0) return Status::Corruption("quadtree must have a root");
  QuadTree tree(BoundingBox{}, static_cast<int>(max_items),
                static_cast<int>(max_depth));
  tree.num_items_ = num_items;
  tree.nodes_.clear();
  tree.nodes_.reserve(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    Node node;
    ASSIGN_OR_RETURN(node.bounds.min_x, reader->ReadDouble());
    ASSIGN_OR_RETURN(node.bounds.min_y, reader->ReadDouble());
    ASSIGN_OR_RETURN(node.bounds.max_x, reader->ReadDouble());
    ASSIGN_OR_RETURN(node.bounds.max_y, reader->ReadDouble());
    for (int q = 0; q < 4; ++q) {
      ASSIGN_OR_RETURN(int64_t child, reader->ReadSignedVarint());
      if (child >= static_cast<int64_t>(num_nodes)) {
        return Status::Corruption("quadtree child index out of range");
      }
      node.children[q] = static_cast<int32_t>(child);
    }
    ASSIGN_OR_RETURN(uint64_t item_count, reader->ReadVarint());
    node.items.reserve(item_count);
    for (uint64_t j = 0; j < item_count; ++j) {
      Item item;
      ASSIGN_OR_RETURN(int64_t id, reader->ReadSignedVarint());
      item.id = static_cast<int32_t>(id);
      ASSIGN_OR_RETURN(item.box.min_x, reader->ReadDouble());
      ASSIGN_OR_RETURN(item.box.min_y, reader->ReadDouble());
      ASSIGN_OR_RETURN(item.box.max_x, reader->ReadDouble());
      ASSIGN_OR_RETURN(item.box.max_y, reader->ReadDouble());
      node.items.push_back(item);
    }
    tree.nodes_.push_back(std::move(node));
  }
  return tree;
}

}  // namespace geo
}  // namespace presto
