#ifndef PRESTO_GEO_GEO_INDEX_H_
#define PRESTO_GEO_GEO_INDEX_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "presto/geo/quadtree.h"

namespace presto {
namespace geo {

/// A set of geofences indexed by a QuadTree built on the fly — the data
/// structure produced by the build_geo_index aggregation. FindContaining
/// first filters candidate geofences by bounding box through the QuadTree,
/// then runs exact st_contains only on the survivors.
class GeoIndex {
 public:
  /// Builds the index from (id, WKT polygon/multipolygon) pairs.
  static Result<GeoIndex> Build(
      const std::vector<std::pair<int64_t, std::string>>& shapes);

  /// Returns ids of all geofences containing the point (exact).
  std::vector<int64_t> FindContaining(GeoPoint p) const;

  /// Returns the first geofence id containing the point, or nullopt.
  std::optional<int64_t> FindFirstContaining(GeoPoint p) const;

  /// Brute-force variant bypassing the QuadTree (baseline for the 50x
  /// comparison).
  std::vector<int64_t> FindContainingBruteForce(GeoPoint p) const;

  size_t num_shapes() const { return shapes_.size(); }

  /// Total exact st_contains evaluations performed so far (both paths).
  int64_t contains_checks() const { return contains_checks_; }

  std::string Serialize() const;
  static Result<GeoIndex> Deserialize(const std::string& bytes);

 private:
  struct Shape {
    int64_t id;
    Geometry geometry;
    std::string wkt;  // kept for serialization
  };

  GeoIndex() : tree_(BoundingBox{0, 0, 1, 1}) {}

  std::vector<Shape> shapes_;
  QuadTree tree_;
  mutable int64_t contains_checks_ = 0;
};

/// Shared-ownership memoization of deserialized GeoIndexes keyed by the
/// serialized bytes; geo_contains calls hit this cache so per-row evaluation
/// does not re-parse the index. Accepts either raw serialized bytes or a
/// registry token produced by RegisterGeoIndex.
std::shared_ptr<const GeoIndex> GetOrParseGeoIndex(const std::string& bytes);

/// Registers a built index in the process-wide registry and returns a small
/// token ("geoidx:<hex>"). Within a worker the QuadTree is passed by
/// reference, not re-serialized per row — the final value of build_geo_index
/// is this token, while partial/intermediate aggregation state stays fully
/// serialized so it can cross exchanges.
std::string RegisterGeoIndex(std::shared_ptr<const GeoIndex> index);

}  // namespace geo
}  // namespace presto

#endif  // PRESTO_GEO_GEO_INDEX_H_
