#ifndef PRESTO_GEO_GEOMETRY_H_
#define PRESTO_GEO_GEOMETRY_H_

#include <string>
#include <vector>

#include "presto/common/status.h"

namespace presto {
namespace geo {

/// A location in two-dimensional space, stored as (longitude, latitude) —
/// "internally, we store each point as a pair of (longitude, latitude)".
struct GeoPoint {
  double x = 0;  // longitude
  double y = 0;  // latitude
};

/// Axis-aligned bounding box.
struct BoundingBox {
  double min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  bool Contains(GeoPoint p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool Intersects(const BoundingBox& other) const {
    return min_x <= other.max_x && max_x >= other.min_x &&
           min_y <= other.max_y && max_y >= other.min_y;
  }
};

/// A closed ring of points (first == last in WKT; we store without the
/// closing duplicate).
using Ring = std::vector<GeoPoint>;

/// A polygon is "a collection of points, such that the start point and the
/// end point match"; rings[0] is the shell, the rest are holes.
struct Polygon {
  std::vector<Ring> rings;
};

/// Geometry value: POINT, POLYGON, or MULTIPOLYGON (Uber geofences are
/// "either a polygon or a multi-polygon").
struct Geometry {
  enum class Kind { kPoint, kPolygon, kMultiPolygon };
  Kind kind = Kind::kPoint;
  GeoPoint point;
  std::vector<Polygon> polygons;
};

/// Parses the Well-Known Text (WKT) representation: POINT (x y),
/// POLYGON ((x y, ...)), MULTIPOLYGON (((x y, ...)), ...).
Result<Geometry> ParseWkt(const std::string& text);

/// Renders a geometry back to WKT.
std::string ToWkt(const Geometry& geometry);

/// Convenience: WKT for a point.
std::string PointWkt(double longitude, double latitude);

/// Ray-casting point-in-polygon; boundary points count as inside. Cost is
/// proportional to the number of polygon vertices — the reason brute-force
/// geospatial joins are slow.
bool PolygonContains(const Polygon& polygon, GeoPoint p);

/// st_contains semantics for POLYGON/MULTIPOLYGON vs point.
bool GeometryContains(const Geometry& geometry, GeoPoint p);

/// Bounding box of any geometry.
BoundingBox ComputeBounds(const Geometry& geometry);

}  // namespace geo
}  // namespace presto

#endif  // PRESTO_GEO_GEOMETRY_H_
