#include "presto/geo/geo_index.h"

#include <map>
#include <mutex>

#include "presto/common/hash.h"

namespace presto {
namespace geo {

Result<GeoIndex> GeoIndex::Build(
    const std::vector<std::pair<int64_t, std::string>>& shapes) {
  GeoIndex index;
  index.shapes_.reserve(shapes.size());
  BoundingBox world;
  bool first = true;
  std::vector<BoundingBox> boxes;
  boxes.reserve(shapes.size());
  for (const auto& [id, wkt] : shapes) {
    Shape shape;
    shape.id = id;
    shape.wkt = wkt;
    ASSIGN_OR_RETURN(shape.geometry, ParseWkt(wkt));
    if (shape.geometry.kind == Geometry::Kind::kPoint) {
      return Status::InvalidArgument("geofence must be POLYGON or MULTIPOLYGON");
    }
    BoundingBox box = ComputeBounds(shape.geometry);
    if (first) {
      world = box;
      first = false;
    } else {
      world.min_x = std::min(world.min_x, box.min_x);
      world.min_y = std::min(world.min_y, box.min_y);
      world.max_x = std::max(world.max_x, box.max_x);
      world.max_y = std::max(world.max_y, box.max_y);
    }
    boxes.push_back(box);
    index.shapes_.push_back(std::move(shape));
  }
  index.tree_ = QuadTree(world);
  for (size_t i = 0; i < index.shapes_.size(); ++i) {
    index.tree_.Insert(static_cast<int32_t>(i), boxes[i]);
  }
  return index;
}

std::vector<int64_t> GeoIndex::FindContaining(GeoPoint p) const {
  std::vector<int32_t> candidates;
  tree_.Query(p, &candidates);
  std::vector<int64_t> out;
  for (int32_t c : candidates) {
    ++contains_checks_;
    if (GeometryContains(shapes_[c].geometry, p)) {
      out.push_back(shapes_[c].id);
    }
  }
  return out;
}

std::optional<int64_t> GeoIndex::FindFirstContaining(GeoPoint p) const {
  std::vector<int32_t> candidates;
  tree_.Query(p, &candidates);
  for (int32_t c : candidates) {
    ++contains_checks_;
    if (GeometryContains(shapes_[c].geometry, p)) {
      return shapes_[c].id;
    }
  }
  return std::nullopt;
}

std::vector<int64_t> GeoIndex::FindContainingBruteForce(GeoPoint p) const {
  std::vector<int64_t> out;
  for (const Shape& shape : shapes_) {
    ++contains_checks_;
    if (GeometryContains(shape.geometry, p)) {
      out.push_back(shape.id);
    }
  }
  return out;
}

std::string GeoIndex::Serialize() const {
  ByteBuffer out;
  out.PutVarint(shapes_.size());
  for (const Shape& shape : shapes_) {
    out.PutSignedVarint(shape.id);
    out.PutString(shape.wkt);
  }
  return std::string(out.bytes().begin(), out.bytes().end());
}

Result<GeoIndex> GeoIndex::Deserialize(const std::string& bytes) {
  ByteReader reader(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
  std::vector<std::pair<int64_t, std::string>> shapes;
  shapes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ASSIGN_OR_RETURN(int64_t id, reader.ReadSignedVarint());
    ASSIGN_OR_RETURN(std::string wkt, reader.ReadString());
    shapes.emplace_back(id, std::move(wkt));
  }
  return Build(shapes);
}

namespace {

struct IndexCacheState {
  std::mutex mu;
  std::map<uint64_t, std::shared_ptr<const GeoIndex>> by_hash;
  std::map<std::string, std::shared_ptr<const GeoIndex>> by_token;
  int64_t next_token = 1;
};

IndexCacheState& IndexCache() {
  static IndexCacheState& cache = *new IndexCacheState();
  return cache;
}

constexpr char kTokenPrefix[] = "geoidx:";

}  // namespace

std::string RegisterGeoIndex(std::shared_ptr<const GeoIndex> index) {
  IndexCacheState& cache = IndexCache();
  std::lock_guard<std::mutex> lock(cache.mu);
  std::string token = kTokenPrefix + std::to_string(cache.next_token++);
  if (cache.by_token.size() > 256) cache.by_token.clear();  // bound memory
  cache.by_token[token] = std::move(index);
  return token;
}

std::shared_ptr<const GeoIndex> GetOrParseGeoIndex(const std::string& bytes) {
  IndexCacheState& cache = IndexCache();
  if (bytes.rfind(kTokenPrefix, 0) == 0) {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.by_token.find(bytes);
    return it == cache.by_token.end() ? nullptr : it->second;
  }
  uint64_t key = HashString(bytes);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.by_hash.find(key);
    if (it != cache.by_hash.end()) return it->second;
  }
  auto parsed = GeoIndex::Deserialize(bytes);
  if (!parsed.ok()) return nullptr;
  auto shared = std::make_shared<const GeoIndex>(std::move(*parsed));
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.by_hash.size() > 64) cache.by_hash.clear();  // bound memory
  cache.by_hash[key] = shared;
  return shared;
}

}  // namespace geo
}  // namespace presto
