#include "presto/geo/geo_functions.h"

#include "presto/geo/geo_index.h"

namespace presto {
namespace geo {

namespace {

// Accumulator for build_geo_index: collects (id, wkt) pairs, serializes the
// resulting GeoIndex as its final value.
class BuildGeoIndexAccumulator final : public Accumulator {
 public:
  void Add(const std::vector<VectorPtr>& args, size_t row) override {
    if (args[0]->IsNull(row) || args[1]->IsNull(row)) return;
    shapes_.emplace_back(args[0]->GetValue(row).int_value(),
                         args[1]->GetValue(row).string_value());
  }

  void MergeIntermediate(const Value& intermediate) override {
    if (intermediate.is_null()) return;
    // The intermediate is a serialized (id, wkt) list; unpack lazily at
    // finalization time.
    merged_serialized_.push_back(intermediate.string_value());
  }

  // Intermediate state crosses exchanges, so it stays fully serialized; the
  // final value is a registry token — the QuadTree is handed to geo_contains
  // by reference within the process, never re-parsed per row.
  Value Intermediate() const override {
    auto all = CollectShapes();
    auto index = GeoIndex::Build(all);
    if (!index.ok()) return Value::Null();
    return Value::String(index->Serialize());
  }

  Value Final() const override {
    auto all = CollectShapes();
    auto index = GeoIndex::Build(all);
    if (!index.ok()) return Value::Null();
    return Value::String(
        RegisterGeoIndex(std::make_shared<const GeoIndex>(std::move(*index))));
  }

 private:
  std::vector<std::pair<int64_t, std::string>> CollectShapes() const {
    std::vector<std::pair<int64_t, std::string>> all = shapes_;
    for (const std::string& bytes : merged_serialized_) {
      ByteReader reader(reinterpret_cast<const uint8_t*>(bytes.data()),
                        bytes.size());
      auto count = reader.ReadVarint();
      if (!count.ok()) continue;
      for (uint64_t i = 0; i < *count; ++i) {
        auto id = reader.ReadSignedVarint();
        auto wkt = reader.ReadString();
        if (!id.ok() || !wkt.ok()) break;
        all.emplace_back(*id, std::move(*wkt));
      }
    }
    return all;
  }

  std::vector<std::pair<int64_t, std::string>> shapes_;
  std::vector<std::string> merged_serialized_;
};

Result<VectorPtr> StPointImpl(const std::vector<VectorPtr>& args, size_t n) {
  const auto* lon = static_cast<const DoubleVector*>(args[0].get());
  const auto* lat = static_cast<const DoubleVector*>(args[1].get());
  std::vector<std::string> out(n);
  for (size_t i = 0; i < n; ++i) {
    out[i] = PointWkt(lon->ValueAt(i), lat->ValueAt(i));
  }
  return MakeVarcharVector(std::move(out));
}

Result<VectorPtr> StContainsImpl(const std::vector<VectorPtr>& args, size_t n) {
  const auto* shape = static_cast<const StringVector*>(args[0].get());
  const auto* point = static_cast<const StringVector*>(args[1].get());
  std::vector<uint8_t> out(n, 0);
  for (size_t i = 0; i < n; ++i) {
    // Brute force: parse and test per row — the cost the QuadTree rewrite
    // removes.
    auto geometry = ParseWkt(shape->ValueAt(i));
    if (!geometry.ok()) return geometry.status();
    auto p = ParseWkt(point->ValueAt(i));
    if (!p.ok()) return p.status();
    if (p->kind != Geometry::Kind::kPoint) {
      return Status::UserError("st_contains second argument must be a POINT");
    }
    out[i] = GeometryContains(*geometry, p->point) ? 1 : 0;
  }
  return MakeBooleanVector(std::move(out));
}

Result<VectorPtr> GeoContainsImpl(const std::vector<VectorPtr>& args, size_t n) {
  const auto* index_bytes = static_cast<const StringVector*>(args[0].get());
  const auto* point = static_cast<const StringVector*>(args[1].get());
  std::vector<int64_t> out(n, 0);
  std::vector<uint8_t> nulls(n, 0);
  bool any_null = false;
  for (size_t i = 0; i < n; ++i) {
    std::shared_ptr<const GeoIndex> index =
        GetOrParseGeoIndex(index_bytes->ValueAt(i));
    if (index == nullptr) {
      return Status::InvalidArgument("geo_contains: invalid index bytes");
    }
    auto p = ParseWkt(point->ValueAt(i));
    if (!p.ok()) return p.status();
    auto id = index->FindFirstContaining(p->point);
    if (id.has_value()) {
      out[i] = *id;
    } else {
      nulls[i] = 1;
      any_null = true;
    }
  }
  if (!any_null) nulls.clear();
  return VectorPtr(std::make_shared<Int64Vector>(Type::Bigint(), std::move(out),
                                                 std::move(nulls)));
}

}  // namespace

Status RegisterGeoFunctions(FunctionRegistry* registry) {
  const TypePtr& d = Type::Double();
  const TypePtr& v = Type::Varchar();
  const TypePtr& b = Type::Bigint();
  RETURN_IF_ERROR(registry->RegisterScalar("st_point", {d, d}, v, StPointImpl));
  RETURN_IF_ERROR(
      registry->RegisterScalar("st_contains", {v, v}, Type::Boolean(),
                               StContainsImpl));
  RETURN_IF_ERROR(registry->RegisterScalar("geo_contains", {v, v}, b,
                                           GeoContainsImpl));
  RETURN_IF_ERROR(registry->RegisterAggregate(
      "build_geo_index", {b, v}, v, v,
      [] { return std::unique_ptr<Accumulator>(new BuildGeoIndexAccumulator()); }));
  return Status::OK();
}

}  // namespace geo
}  // namespace presto
