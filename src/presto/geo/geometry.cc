#include "presto/geo/geometry.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace presto {
namespace geo {

namespace {

class WktParser {
 public:
  explicit WktParser(const std::string& text) : text_(text) {}

  Result<Geometry> Parse() {
    std::string keyword = ReadKeyword();
    Geometry g;
    if (keyword == "POINT") {
      g.kind = Geometry::Kind::kPoint;
      if (!Consume('(')) return Err("expected ( after POINT");
      ASSIGN_OR_RETURN(g.point, ReadPoint());
      if (!Consume(')')) return Err("expected ) in POINT");
    } else if (keyword == "POLYGON") {
      g.kind = Geometry::Kind::kPolygon;
      ASSIGN_OR_RETURN(Polygon poly, ReadPolygon());
      g.polygons.push_back(std::move(poly));
    } else if (keyword == "MULTIPOLYGON") {
      g.kind = Geometry::Kind::kMultiPolygon;
      if (!Consume('(')) return Err("expected ( after MULTIPOLYGON");
      do {
        ASSIGN_OR_RETURN(Polygon poly, ReadPolygon());
        g.polygons.push_back(std::move(poly));
      } while (Consume(','));
      if (!Consume(')')) return Err("expected ) in MULTIPOLYGON");
    } else {
      return Err("unknown WKT geometry: '" + keyword + "'");
    }
    SkipSpaces();
    if (pos_ != text_.size()) return Err("trailing characters in WKT");
    return g;
  }

 private:
  Status Err(const std::string& message) const {
    return Status::InvalidArgument("WKT parse error: " + message);
  }

  void SkipSpaces() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpaces();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ReadKeyword() {
    SkipSpaces();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Result<double> ReadNumber() {
    SkipSpaces();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return Err("expected number");
    pos_ += end - begin;
    return v;
  }

  Result<GeoPoint> ReadPoint() {
    GeoPoint p;
    ASSIGN_OR_RETURN(p.x, ReadNumber());
    ASSIGN_OR_RETURN(p.y, ReadNumber());
    return p;
  }

  Result<Ring> ReadRing() {
    if (!Consume('(')) return Err("expected ( for ring");
    Ring ring;
    do {
      ASSIGN_OR_RETURN(GeoPoint p, ReadPoint());
      ring.push_back(p);
    } while (Consume(','));
    if (!Consume(')')) return Err("expected ) for ring");
    if (ring.size() < 4) return Err("ring must have at least 4 points");
    // WKT rings repeat the start point at the end; drop the duplicate.
    if (ring.front().x == ring.back().x && ring.front().y == ring.back().y) {
      ring.pop_back();
    } else {
      return Err("ring start and end points must match");
    }
    return ring;
  }

  Result<Polygon> ReadPolygon() {
    if (!Consume('(')) return Err("expected ( for polygon");
    Polygon poly;
    do {
      ASSIGN_OR_RETURN(Ring ring, ReadRing());
      poly.rings.push_back(std::move(ring));
    } while (Consume(','));
    if (!Consume(')')) return Err("expected ) for polygon");
    return poly;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendNumber(double v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

void AppendRing(const Ring& ring, std::string* out) {
  *out += "(";
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendNumber(ring[i].x, out);
    *out += " ";
    AppendNumber(ring[i].y, out);
  }
  // Close the ring.
  *out += ", ";
  AppendNumber(ring.front().x, out);
  *out += " ";
  AppendNumber(ring.front().y, out);
  *out += ")";
}

void AppendPolygon(const Polygon& polygon, std::string* out) {
  *out += "(";
  for (size_t i = 0; i < polygon.rings.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendRing(polygon.rings[i], out);
  }
  *out += ")";
}

bool RingContains(const Ring& ring, GeoPoint p) {
  // Ray casting: count crossings of a horizontal ray to the right of p.
  bool inside = false;
  size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const GeoPoint& a = ring[i];
    const GeoPoint& b = ring[j];
    // Boundary check: point on segment counts as inside.
    double cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    if (cross == 0 && p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
        p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y)) {
      return true;
    }
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_at_y = a.x + (b.x - a.x) * (p.y - a.y) / (b.y - a.y);
      if (x_at_y > p.x) inside = !inside;
    }
  }
  return inside;
}

}  // namespace

Result<Geometry> ParseWkt(const std::string& text) {
  return WktParser(text).Parse();
}

std::string ToWkt(const Geometry& geometry) {
  std::string out;
  switch (geometry.kind) {
    case Geometry::Kind::kPoint:
      out = "POINT (";
      AppendNumber(geometry.point.x, &out);
      out += " ";
      AppendNumber(geometry.point.y, &out);
      out += ")";
      return out;
    case Geometry::Kind::kPolygon:
      out = "POLYGON ";
      AppendPolygon(geometry.polygons[0], &out);
      return out;
    case Geometry::Kind::kMultiPolygon:
      out = "MULTIPOLYGON (";
      for (size_t i = 0; i < geometry.polygons.size(); ++i) {
        if (i > 0) out += ", ";
        AppendPolygon(geometry.polygons[i], &out);
      }
      out += ")";
      return out;
  }
  return out;
}

std::string PointWkt(double longitude, double latitude) {
  std::string out = "POINT (";
  AppendNumber(longitude, &out);
  out += " ";
  AppendNumber(latitude, &out);
  out += ")";
  return out;
}

bool PolygonContains(const Polygon& polygon, GeoPoint p) {
  if (polygon.rings.empty()) return false;
  if (!RingContains(polygon.rings[0], p)) return false;
  for (size_t i = 1; i < polygon.rings.size(); ++i) {
    if (RingContains(polygon.rings[i], p)) return false;  // in a hole
  }
  return true;
}

bool GeometryContains(const Geometry& geometry, GeoPoint p) {
  if (geometry.kind == Geometry::Kind::kPoint) {
    return geometry.point.x == p.x && geometry.point.y == p.y;
  }
  for (const Polygon& polygon : geometry.polygons) {
    if (PolygonContains(polygon, p)) return true;
  }
  return false;
}

BoundingBox ComputeBounds(const Geometry& geometry) {
  BoundingBox box;
  bool first = true;
  auto extend = [&](GeoPoint p) {
    if (first) {
      box = BoundingBox{p.x, p.y, p.x, p.y};
      first = false;
    } else {
      box.min_x = std::min(box.min_x, p.x);
      box.min_y = std::min(box.min_y, p.y);
      box.max_x = std::max(box.max_x, p.x);
      box.max_y = std::max(box.max_y, p.y);
    }
  };
  if (geometry.kind == Geometry::Kind::kPoint) {
    extend(geometry.point);
    return box;
  }
  for (const Polygon& polygon : geometry.polygons) {
    for (const Ring& ring : polygon.rings) {
      for (GeoPoint p : ring) extend(p);
    }
  }
  return box;
}

}  // namespace geo
}  // namespace presto
