#ifndef PRESTO_GEO_GEO_FUNCTIONS_H_
#define PRESTO_GEO_GEO_FUNCTIONS_H_

#include "presto/expr/function_registry.h"

namespace presto {
namespace geo {

/// Registers the Presto Geospatial plugin functions (Section VI.E):
///
///   st_point(lon DOUBLE, lat DOUBLE) -> VARCHAR            (WKT point)
///   st_contains(shape VARCHAR, point VARCHAR) -> BOOLEAN   (exact, per row)
///   geo_contains(index VARCHAR, point VARCHAR) -> BIGINT   (QuadTree-
///       filtered lookup; returns the first containing geofence id or NULL)
///
/// and the aggregation
///
///   build_geo_index(id BIGINT, shape VARCHAR) -> VARCHAR
///
/// which "serializes/deserializes geospatial polygons into a QuadTree". The
/// optimizer rewrites st_contains joins into build_geo_index + geo_contains
/// (Figure 13).
Status RegisterGeoFunctions(FunctionRegistry* registry);

}  // namespace geo
}  // namespace presto

#endif  // PRESTO_GEO_GEO_FUNCTIONS_H_
