#ifndef PRESTO_GEO_QUADTREE_H_
#define PRESTO_GEO_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "presto/common/bytes.h"
#include "presto/geo/geometry.h"

namespace presto {
namespace geo {

/// Region quadtree over bounding boxes (Finkel & Bentley 1974, paper
/// Section VI.D): space is recursively decomposed into four quadrants until
/// node occupancy drops below a threshold. Items whose box straddles a
/// subdivision boundary stay at the internal node.
///
/// Point queries return the ids of all items whose bounding box contains the
/// point — "the majority of bounded rectangles that do not contain the
/// target point are filtered out; we run geospatial functions (st_contains)
/// only for rectangles that contain the target point".
class QuadTree {
 public:
  QuadTree(BoundingBox bounds, int max_items_per_node = 8, int max_depth = 16);

  void Insert(int32_t id, const BoundingBox& box);

  /// Appends ids of items whose box contains `p` to `out`.
  void Query(GeoPoint p, std::vector<int32_t>* out) const;

  size_t num_items() const { return num_items_; }
  size_t num_nodes() const { return nodes_.size(); }

  void Serialize(ByteBuffer* out) const;
  static Result<QuadTree> Deserialize(ByteReader* reader);

 private:
  struct Item {
    int32_t id;
    BoundingBox box;
  };
  struct Node {
    BoundingBox bounds;
    int32_t children[4] = {-1, -1, -1, -1};  // indices into nodes_
    std::vector<Item> items;
    bool is_leaf() const { return children[0] < 0; }
  };

  void InsertAt(int32_t node_index, int depth, const Item& item);
  void Split(int32_t node_index, int depth);
  /// Quadrant of `node` fully containing `box`, or -1 if it straddles.
  int QuadrantFor(const Node& node, const BoundingBox& box) const;
  BoundingBox QuadrantBounds(const Node& node, int quadrant) const;

  int max_items_per_node_;
  int max_depth_;
  size_t num_items_ = 0;
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace geo
}  // namespace presto

#endif  // PRESTO_GEO_QUADTREE_H_
