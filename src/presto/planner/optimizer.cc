#include "presto/planner/optimizer.h"

#include <algorithm>
#include <map>
#include <set>

namespace presto {

namespace {

// ---------------------------------------------------------------------------
// Variable usage analysis
// ---------------------------------------------------------------------------

void CountExprVars(const RowExpression& expr, std::map<std::string, int>* uses) {
  std::vector<std::string> vars;
  CollectReferencedVariables(expr, &vars);
  for (const std::string& name : vars) (*uses)[name] += 1;
}

void CountPlanVars(const PlanNode& node, std::map<std::string, int>* uses) {
  switch (node.kind()) {
    case PlanNodeKind::kFilter:
      CountExprVars(*static_cast<const FilterNode&>(node).predicate(), uses);
      break;
    case PlanNodeKind::kProject:
      for (const auto& a : static_cast<const ProjectNode&>(node).assignments()) {
        CountExprVars(*a.expression, uses);
      }
      break;
    case PlanNodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      for (const VariablePtr& key : agg.group_keys()) (*uses)[key->name()] += 1;
      for (const auto& a : agg.aggregations()) {
        for (const VariablePtr& arg : a.arguments) (*uses)[arg->name()] += 1;
      }
      break;
    }
    case PlanNodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      for (const auto& clause : join.criteria()) {
        (*uses)[clause.left->name()] += 1;
        (*uses)[clause.right->name()] += 1;
      }
      if (join.filter() != nullptr) CountExprVars(*join.filter(), uses);
      break;
    }
    case PlanNodeKind::kSort:
      for (const auto& term : static_cast<const SortNode&>(node).ordering()) {
        (*uses)[term.variable->name()] += 1;
      }
      break;
    case PlanNodeKind::kTopN:
      for (const auto& term : static_cast<const TopNNode&>(node).ordering()) {
        (*uses)[term.variable->name()] += 1;
      }
      break;
    case PlanNodeKind::kOutput:
      for (const VariablePtr& v : node.OutputVariables()) {
        (*uses)[v->name()] += 1;
      }
      break;
    default:
      break;
  }
  for (const PlanNodePtr& source : node.sources()) {
    CountPlanVars(*source, uses);
  }
}

// ---------------------------------------------------------------------------
// Column/leaf usage for projection pushdown + nested column pruning
// ---------------------------------------------------------------------------

struct ColumnUsage {
  bool whole = false;
  std::set<std::string> leaf_paths;  // suffix paths within the column
};

// Records how variables are used: direct references mark the whole column;
// pure DEREFERENCE chains over ROW-typed variables mark specific leaves.
void WalkUsage(const RowExpression& expr,
               std::map<std::string, ColumnUsage>* usage) {
  if (expr.expression_kind() == ExpressionKind::kVariableReference) {
    (*usage)[static_cast<const VariableReferenceExpression&>(expr).name()].whole =
        true;
    return;
  }
  if (expr.expression_kind() == ExpressionKind::kSpecialForm) {
    const auto& form = static_cast<const SpecialFormExpression&>(expr);
    if (form.form() == SpecialFormKind::kDereference) {
      // Unwind the chain; bail to whole-use if the base is not a variable.
      std::vector<std::string> parts;
      const RowExpression* node = &expr;
      while (node->expression_kind() == ExpressionKind::kSpecialForm &&
             static_cast<const SpecialFormExpression*>(node)->form() ==
                 SpecialFormKind::kDereference) {
        const auto* deref = static_cast<const SpecialFormExpression*>(node);
        const RowExpression* base = deref->arguments()[0].get();
        parts.insert(parts.begin(),
                     base->type()->field_name(deref->field_index()));
        node = base;
      }
      if (node->expression_kind() == ExpressionKind::kVariableReference) {
        std::string path;
        for (const std::string& part : parts) {
          path += path.empty() ? part : "." + part;
        }
        (*usage)[static_cast<const VariableReferenceExpression*>(node)->name()]
            .leaf_paths.insert(path);
        return;
      }
      // Fall through: complex base.
    }
    for (const ExprPtr& arg : form.arguments()) WalkUsage(*arg, usage);
    return;
  }
  if (expr.expression_kind() == ExpressionKind::kCall) {
    for (const ExprPtr& arg : static_cast<const CallExpression&>(expr).arguments()) {
      WalkUsage(*arg, usage);
    }
    return;
  }
  if (expr.expression_kind() == ExpressionKind::kLambdaDefinition) {
    WalkUsage(*static_cast<const LambdaDefinitionExpression&>(expr).body(), usage);
  }
}

void WalkPlanUsage(const PlanNode& node, std::map<std::string, ColumnUsage>* usage) {
  switch (node.kind()) {
    case PlanNodeKind::kFilter:
      WalkUsage(*static_cast<const FilterNode&>(node).predicate(), usage);
      break;
    case PlanNodeKind::kProject:
      for (const auto& a : static_cast<const ProjectNode&>(node).assignments()) {
        WalkUsage(*a.expression, usage);
      }
      break;
    case PlanNodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      for (const VariablePtr& key : agg.group_keys()) (*usage)[key->name()].whole = true;
      for (const auto& a : agg.aggregations()) {
        for (const VariablePtr& arg : a.arguments) (*usage)[arg->name()].whole = true;
      }
      break;
    }
    case PlanNodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      for (const auto& clause : join.criteria()) {
        (*usage)[clause.left->name()].whole = true;
        (*usage)[clause.right->name()].whole = true;
      }
      if (join.filter() != nullptr) WalkUsage(*join.filter(), usage);
      break;
    }
    case PlanNodeKind::kSort:
      for (const auto& term : static_cast<const SortNode&>(node).ordering()) {
        (*usage)[term.variable->name()].whole = true;
      }
      break;
    case PlanNodeKind::kTopN:
      for (const auto& term : static_cast<const TopNNode&>(node).ordering()) {
        (*usage)[term.variable->name()].whole = true;
      }
      break;
    case PlanNodeKind::kOutput:
      for (const VariablePtr& v : node.OutputVariables()) {
        (*usage)[v->name()].whole = true;
      }
      break;
    default:
      break;
  }
  for (const PlanNodePtr& source : node.sources()) {
    WalkPlanUsage(*source, usage);
  }
}

void ForEachScan(const PlanNodePtr& node,
                 const std::function<void(TableScanNode*)>& fn) {
  if (node->kind() == PlanNodeKind::kTableScan) {
    fn(static_cast<TableScanNode*>(node.get()));
  }
  for (const PlanNodePtr& source : node->sources()) {
    ForEachScan(source, fn);
  }
}

// Variable -> table column translation for one scan.
std::map<std::string, std::string> ScanVarToColumn(const TableScanNode& scan) {
  std::map<std::string, std::string> out;
  auto outputs = scan.OutputVariables();
  for (size_t i = 0; i < outputs.size(); ++i) {
    out[outputs[i]->name()] = scan.column_names()[i];
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

Result<PlanNodePtr> Optimizer::Optimize(PlanNodePtr plan) {
  if (session_->Property("geo_index_rewrite", "true") == "true") {
    std::map<std::string, int> var_uses;
    CountPlanVars(*plan, &var_uses);
    ASSIGN_OR_RETURN(plan, RewriteGeoJoins(plan, var_uses));
  }
  ASSIGN_OR_RETURN(plan, PushFiltersThroughJoins(plan));
  RETURN_IF_ERROR(DeriveScanColumns(plan));
  ASSIGN_OR_RETURN(plan, PushPredicatesIntoScans(plan));
  ASSIGN_OR_RETURN(plan, PushAggregationsIntoScans(plan));
  ASSIGN_OR_RETURN(plan, PushLimitsIntoScans(plan));
  ASSIGN_OR_RETURN(plan, FuseTopN(plan));
  SelectJoinDistribution(plan);
  RETURN_IF_ERROR(FinalizeScans(plan));
  return plan;
}

// ---- Rule 1: geospatial join rewrite (Figure 13) ---------------------------

Result<PlanNodePtr> Optimizer::RewriteGeoJoins(
    PlanNodePtr node, const std::map<std::string, int>& var_uses) {
  for (PlanNodePtr& source : node->mutable_sources()) {
    ASSIGN_OR_RETURN(source, RewriteGeoJoins(source, var_uses));
  }
  if (node->kind() != PlanNodeKind::kJoin) return node;
  auto* join = static_cast<JoinNode*>(node.get());
  if (join->join_kind() != JoinKind::kInner || !join->criteria().empty() ||
      join->filter() == nullptr) {
    return node;
  }

  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(join->filter(), &conjuncts);

  auto side_vars = [](const PlanNodePtr& side) {
    std::set<std::string> names;
    for (const VariablePtr& v : side->OutputVariables()) names.insert(v->name());
    return names;
  };
  std::set<std::string> left_vars = side_vars(join->sources()[0]);
  std::set<std::string> right_vars = side_vars(join->sources()[1]);

  auto refs_only = [](const RowExpression& expr, const std::set<std::string>& side) {
    std::vector<std::string> vars;
    CollectReferencedVariables(expr, &vars);
    for (const std::string& v : vars) {
      if (side.count(v) == 0) return false;
    }
    return !vars.empty();
  };

  // Find the st_contains(shape_var, point_expr) conjunct.
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    const ExprPtr& conjunct = conjuncts[ci];
    if (conjunct->expression_kind() != ExpressionKind::kCall) continue;
    const auto& call = static_cast<const CallExpression&>(*conjunct);
    if (call.function_name() != "st_contains" || call.arguments().size() != 2) {
      continue;
    }
    if (call.arguments()[0]->expression_kind() !=
        ExpressionKind::kVariableReference) {
      continue;
    }
    auto shape_var = std::static_pointer_cast<const VariableReferenceExpression>(
        call.arguments()[0]);
    const ExprPtr& point_expr = call.arguments()[1];

    bool shape_on_right = right_vars.count(shape_var->name()) > 0;
    bool shape_on_left = left_vars.count(shape_var->name()) > 0;
    if (!shape_on_right && !shape_on_left) continue;
    PlanNodePtr probe = shape_on_right ? join->sources()[0] : join->sources()[1];
    PlanNodePtr build = shape_on_right ? join->sources()[1] : join->sources()[0];
    const std::set<std::string>& probe_vars = shape_on_right ? left_vars : right_vars;
    if (!refs_only(*point_expr, probe_vars)) continue;

    // All other conjuncts must be probe-side only.
    bool others_ok = true;
    std::map<std::string, int> filter_uses;
    CountExprVars(*join->filter(), &filter_uses);
    for (size_t cj = 0; cj < conjuncts.size(); ++cj) {
      if (cj == ci) continue;
      if (!refs_only(*conjuncts[cj], probe_vars)) others_ok = false;
    }
    if (!others_ok) continue;

    // Build-side columns used elsewhere: exactly one integer id column.
    VariablePtr id_var;
    bool eligible = true;
    for (const VariablePtr& v : build->OutputVariables()) {
      int total = 0;
      if (auto it = var_uses.find(v->name()); it != var_uses.end()) {
        total = it->second;
      }
      int in_filter = 0;
      if (auto it = filter_uses.find(v->name()); it != filter_uses.end()) {
        in_filter = it->second;
      }
      int elsewhere = total - in_filter;
      if (elsewhere <= 0) continue;
      if (!IsIntegerLike(v->type()->kind()) || id_var != nullptr) {
        eligible = false;
        break;
      }
      id_var = v;
    }
    if (!eligible || id_var == nullptr) continue;

    auto index_handle = functions_->ResolveAggregate(
        "build_geo_index", {Type::Bigint(), Type::Varchar()});
    auto contains_handle =
        functions_->ResolveScalar("geo_contains", {Type::Varchar(), Type::Varchar()});
    if (!index_handle.ok() || !contains_handle.ok()) {
      return node;  // geo plugin not installed
    }

    // index := build_geo_index(id, shape) over the build side (global agg).
    VariablePtr index_var = VariableReferenceExpression::Make(
        ids_->NextVariable("geo_index"), Type::Varchar());
    std::vector<AggregateNode::Aggregation> index_agg;
    index_agg.push_back({index_var, *index_handle, {id_var, shape_var}});
    PlanNodePtr index_node = std::make_shared<AggregateNode>(
        ids_->NextId(), build, std::vector<VariablePtr>{}, std::move(index_agg),
        AggregationStep::kSingle);

    // probe CROSS JOIN index (single row broadcast).
    PlanNodePtr cross = std::make_shared<JoinNode>(
        ids_->NextId(), JoinKind::kCross, probe, index_node,
        std::vector<JoinNode::EquiClause>{}, nullptr);

    // id := geo_contains(index, point); probe columns pass through.
    std::vector<ProjectNode::Assignment> assignments;
    for (const VariablePtr& v : probe->OutputVariables()) {
      assignments.push_back({v, ExprPtr(v)});
    }
    ExprPtr matched = CallExpression::Make(
        *contains_handle, {ExprPtr(index_var), point_expr});
    assignments.push_back({id_var, std::move(matched)});
    PlanNodePtr projected = std::make_shared<ProjectNode>(
        ids_->NextId(), cross, std::move(assignments));

    // Keep only matched rows (the join was INNER): id IS NOT NULL, plus the
    // remaining probe-side conjuncts.
    std::vector<ExprPtr> filter_conjuncts;
    filter_conjuncts.push_back(SpecialFormExpression::Make(
        SpecialFormKind::kNot, Type::Boolean(),
        {SpecialFormExpression::Make(SpecialFormKind::kIsNull, Type::Boolean(),
                                     {ExprPtr(id_var)})}));
    for (size_t cj = 0; cj < conjuncts.size(); ++cj) {
      if (cj != ci) filter_conjuncts.push_back(conjuncts[cj]);
    }
    return PlanNodePtr(std::make_shared<FilterNode>(
        ids_->NextId(), projected, CombineConjuncts(std::move(filter_conjuncts))));
  }
  return node;
}

// ---- Rule 2: push single-side filter conjuncts below inner joins -------------

Result<PlanNodePtr> Optimizer::PushFiltersThroughJoins(PlanNodePtr node) {
  for (PlanNodePtr& source : node->mutable_sources()) {
    ASSIGN_OR_RETURN(source, PushFiltersThroughJoins(source));
  }
  if (node->kind() != PlanNodeKind::kFilter) return node;
  auto* filter = static_cast<FilterNode*>(node.get());
  if (filter->sources()[0]->kind() != PlanNodeKind::kJoin) return node;
  auto join = std::static_pointer_cast<JoinNode>(filter->sources()[0]);
  if (join->join_kind() != JoinKind::kInner &&
      join->join_kind() != JoinKind::kCross) {
    return node;
  }

  std::set<std::string> left_vars, right_vars;
  for (const VariablePtr& v : join->sources()[0]->OutputVariables()) {
    left_vars.insert(v->name());
  }
  for (const VariablePtr& v : join->sources()[1]->OutputVariables()) {
    right_vars.insert(v->name());
  }

  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(filter->predicate(), &conjuncts);
  std::vector<ExprPtr> left_only, right_only, remaining;
  for (const ExprPtr& conjunct : conjuncts) {
    std::vector<std::string> vars;
    CollectReferencedVariables(*conjunct, &vars);
    bool all_left = true, all_right = true;
    for (const std::string& v : vars) {
      if (left_vars.count(v) == 0) all_left = false;
      if (right_vars.count(v) == 0) all_right = false;
    }
    if (!vars.empty() && all_left) {
      left_only.push_back(conjunct);
    } else if (!vars.empty() && all_right) {
      right_only.push_back(conjunct);
    } else {
      remaining.push_back(conjunct);
    }
  }
  if (left_only.empty() && right_only.empty()) return node;

  auto& join_sources = join->mutable_sources();
  if (!left_only.empty()) {
    ASSIGN_OR_RETURN(
        join_sources[0],
        PushFiltersThroughJoins(std::make_shared<FilterNode>(
            ids_->NextId(), join_sources[0], CombineConjuncts(std::move(left_only)))));
  }
  if (!right_only.empty()) {
    ASSIGN_OR_RETURN(
        join_sources[1],
        PushFiltersThroughJoins(std::make_shared<FilterNode>(
            ids_->NextId(), join_sources[1],
            CombineConjuncts(std::move(right_only)))));
  }
  if (remaining.empty()) return PlanNodePtr(join);
  return PlanNodePtr(std::make_shared<FilterNode>(
      ids_->NextId(), join, CombineConjuncts(std::move(remaining))));
}

// ---- Rule 3: projection pushdown + nested column pruning ----------------------

Status Optimizer::DeriveScanColumns(const PlanNodePtr& root) {
  std::map<std::string, ColumnUsage> usage;
  WalkPlanUsage(*root, &usage);
  Status status;
  ForEachScan(root, [&](TableScanNode* scan) {
    auto outputs = scan->OutputVariables();
    std::vector<VariablePtr> kept_outputs;
    std::vector<std::string> kept_columns;
    std::vector<std::string> required_leaves;
    for (size_t i = 0; i < outputs.size(); ++i) {
      auto it = usage.find(outputs[i]->name());
      if (it == usage.end() ||
          (!it->second.whole && it->second.leaf_paths.empty())) {
        continue;  // unused column: pruned from the scan
      }
      const std::string& column = scan->column_names()[i];
      kept_outputs.push_back(outputs[i]);
      kept_columns.push_back(column);
      if (!it->second.whole) {
        for (const std::string& path : it->second.leaf_paths) {
          required_leaves.push_back(column + "." + path);
        }
      }
    }
    if (kept_outputs.empty() && !outputs.empty()) {
      // count(*)-style queries still need row counts: keep one column.
      kept_outputs.push_back(outputs[0]);
      kept_columns.push_back(scan->column_names()[0]);
    }
    scan->mutable_request().columns = kept_columns;
    scan->mutable_request().required_leaves = std::move(required_leaves);
    scan->SetOutputs(std::move(kept_outputs), std::move(kept_columns));
  });
  return status;
}

// ---- Rule 4: predicate pushdown into connectors --------------------------------

Result<PlanNodePtr> Optimizer::PushPredicatesIntoScans(PlanNodePtr node) {
  for (PlanNodePtr& source : node->mutable_sources()) {
    ASSIGN_OR_RETURN(source, PushPredicatesIntoScans(source));
  }
  if (node->kind() != PlanNodeKind::kFilter) return node;
  auto* filter = static_cast<FilterNode*>(node.get());
  if (filter->sources()[0]->kind() != PlanNodeKind::kTableScan) return node;
  auto scan = std::static_pointer_cast<TableScanNode>(filter->sources()[0]);

  std::map<std::string, std::string> var_to_column = ScanVarToColumn(*scan);
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(filter->predicate(), &conjuncts);

  // Normalize pushable conjuncts; remember which conjunct each desired
  // predicate came from.
  std::vector<SimplePredicate> desired;
  std::vector<size_t> conjunct_of_predicate;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    auto normalized = NormalizeConjunct(*conjuncts[i]);
    if (!normalized.has_value()) continue;
    // Translate the variable segment into the table column name.
    std::string path = normalized->column;
    size_t dot = path.find('.');
    std::string var = dot == std::string::npos ? path : path.substr(0, dot);
    auto column_it = var_to_column.find(var);
    if (column_it == var_to_column.end()) continue;
    normalized->column = dot == std::string::npos
                             ? column_it->second
                             : column_it->second + path.substr(dot);
    desired.push_back(std::move(*normalized));
    conjunct_of_predicate.push_back(i);
  }
  if (desired.empty()) return node;

  scan->mutable_request().predicates = desired;
  ASSIGN_OR_RETURN(Connector * connector, catalogs_->GetConnector(scan->catalog()));
  ASSIGN_OR_RETURN(AcceptedPushdown accepted,
                   connector->NegotiatePushdown(scan->table_schema_name(),
                                                scan->table_name(),
                                                scan->request()));
  // Keep only accepted predicates in the scan's desired request so later
  // negotiations stay consistent.
  std::set<size_t> accepted_conjuncts;
  std::vector<SimplePredicate> accepted_predicates;
  for (size_t index : accepted.predicate_indices) {
    accepted_conjuncts.insert(conjunct_of_predicate[index]);
    accepted_predicates.push_back(desired[index]);
  }
  scan->mutable_request().predicates = std::move(accepted_predicates);
  // Only an *enforcing* connector (emitted rows are exactly the matching
  // rows) lets us drop absorbed conjuncts from the engine-side filter; a
  // best-effort connector keeps them as pruning hints and the full residual
  // re-checks every conjunct.
  if (!accepted.predicates_enforced) accepted_conjuncts.clear();
  scan->set_accepted(std::move(accepted));

  std::vector<ExprPtr> residual;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (accepted_conjuncts.count(i) == 0) residual.push_back(conjuncts[i]);
  }
  if (residual.empty()) return filter->sources()[0];
  if (residual.size() == conjuncts.size()) return node;
  return PlanNodePtr(std::make_shared<FilterNode>(
      ids_->NextId(), scan, CombineConjuncts(std::move(residual))));
}

// ---- Rule 5: aggregation pushdown (Section IV.B) ---------------------------------

Result<PlanNodePtr> Optimizer::PushAggregationsIntoScans(PlanNodePtr node) {
  for (PlanNodePtr& source : node->mutable_sources()) {
    ASSIGN_OR_RETURN(source, PushAggregationsIntoScans(source));
  }
  if (node->kind() != PlanNodeKind::kAggregate) return node;
  auto* agg = static_cast<AggregateNode*>(node.get());
  if (agg->step() != AggregationStep::kSingle) return node;

  // Pattern: Aggregate over Project(pure column mapping) over TableScan.
  PlanNodePtr below = agg->sources()[0];
  const ProjectNode* project = nullptr;
  PlanNodePtr scan_node;
  if (below->kind() == PlanNodeKind::kProject &&
      below->sources()[0]->kind() == PlanNodeKind::kTableScan) {
    project = static_cast<const ProjectNode*>(below.get());
    scan_node = below->sources()[0];
  } else if (below->kind() == PlanNodeKind::kTableScan) {
    scan_node = below;
  } else {
    return node;
  }
  auto scan = std::static_pointer_cast<TableScanNode>(scan_node);
  // Residual predicates above the scan would make connector-side
  // aggregation incorrect (checked implicitly: a Filter breaks the pattern).

  // Resolve a variable through the optional projection to a scan column.
  std::map<std::string, std::string> var_to_column = ScanVarToColumn(*scan);
  auto resolve_column = [&](const VariablePtr& var) -> std::optional<std::string> {
    std::string name = var->name();
    if (project != nullptr) {
      bool found = false;
      for (const auto& a : project->assignments()) {
        if (a.output->name() == name) {
          if (a.expression->expression_kind() !=
              ExpressionKind::kVariableReference) {
            return std::nullopt;
          }
          name = static_cast<const VariableReferenceExpression&>(*a.expression)
                     .name();
          found = true;
          break;
        }
      }
      if (!found) return std::nullopt;
    }
    auto it = var_to_column.find(name);
    if (it == var_to_column.end()) return std::nullopt;
    return it->second;
  };

  PushdownRequest desired = scan->request();
  desired.group_by.clear();
  desired.aggregations.clear();
  for (const VariablePtr& key : agg->group_keys()) {
    auto column = resolve_column(key);
    if (!column.has_value()) return node;
    desired.group_by.push_back(*column);
  }
  std::vector<TypePtr> intermediate_types;
  for (const auto& aggregation : agg->aggregations()) {
    const std::string& fn = aggregation.handle.name;
    if (fn != "count" && fn != "sum" && fn != "min" && fn != "max") return node;
    if (aggregation.arguments.size() > 1) return node;
    std::string argument;
    if (!aggregation.arguments.empty()) {
      auto column = resolve_column(aggregation.arguments[0]);
      if (!column.has_value()) return node;
      argument = *column;
    }
    ASSIGN_OR_RETURN(const AggregateFunction* impl,
                     functions_->FindAggregate(aggregation.handle));
    intermediate_types.push_back(impl->intermediate_type);
    desired.aggregations.push_back(
        PushedAggregation{aggregation.output->name(), fn, argument});
  }

  ASSIGN_OR_RETURN(Connector * connector, catalogs_->GetConnector(scan->catalog()));
  ASSIGN_OR_RETURN(AcceptedPushdown accepted,
                   connector->NegotiatePushdown(scan->table_schema_name(),
                                                scan->table_name(), desired));
  if (!accepted.aggregations_pushed) return node;
  // The connector's partial-aggregate column types must match the engine's
  // intermediate types so the final step can merge them.
  size_t num_keys = agg->group_keys().size();
  for (size_t i = 0; i < intermediate_types.size(); ++i) {
    if (!accepted.output_schema->child(num_keys + i)->Equals(*intermediate_types[i])) {
      return node;
    }
  }

  // Rewire: the scan emits group keys (as the original key variables) plus
  // partial aggregate columns; a FINAL aggregation merges them.
  std::vector<VariablePtr> scan_outputs = agg->group_keys();
  std::vector<std::string> scan_columns = accepted.request.group_by;
  std::vector<AggregateNode::Aggregation> final_aggs;
  for (size_t i = 0; i < agg->aggregations().size(); ++i) {
    VariablePtr partial = VariableReferenceExpression::Make(
        ids_->NextVariable("partial"), intermediate_types[i]);
    scan_outputs.push_back(partial);
    scan_columns.push_back(accepted.request.aggregations[i].output_name);
    final_aggs.push_back({agg->aggregations()[i].output,
                          agg->aggregations()[i].handle,
                          {partial}});
  }
  scan->mutable_request() = accepted.request;
  scan->set_accepted(std::move(accepted));
  scan->SetOutputs(std::move(scan_outputs), std::move(scan_columns));
  return PlanNodePtr(std::make_shared<AggregateNode>(
      ids_->NextId(), scan, agg->group_keys(), std::move(final_aggs),
      AggregationStep::kFinal));
}

// ---- Rule 6: limit pushdown ----------------------------------------------------------

Result<PlanNodePtr> Optimizer::PushLimitsIntoScans(PlanNodePtr node) {
  for (PlanNodePtr& source : node->mutable_sources()) {
    ASSIGN_OR_RETURN(source, PushLimitsIntoScans(source));
  }
  if (node->kind() != PlanNodeKind::kLimit) return node;
  auto* limit = static_cast<LimitNode*>(node.get());
  // Walk through row-preserving projections.
  PlanNodePtr current = limit->sources()[0];
  while (current->kind() == PlanNodeKind::kProject) {
    current = current->sources()[0];
  }
  if (current->kind() != PlanNodeKind::kTableScan) return node;
  auto scan = std::static_pointer_cast<TableScanNode>(current);
  if (scan->accepted().has_value() && scan->accepted()->aggregations_pushed) {
    return node;  // limit above a pushed aggregation must stay in the engine
  }
  scan->mutable_request().limit = limit->count();
  ASSIGN_OR_RETURN(Connector * connector, catalogs_->GetConnector(scan->catalog()));
  ASSIGN_OR_RETURN(AcceptedPushdown accepted,
                   connector->NegotiatePushdown(scan->table_schema_name(),
                                                scan->table_name(),
                                                scan->request()));
  scan->set_accepted(std::move(accepted));
  return node;  // the engine-side limit stays (exact cut across splits)
}

// ---- Rule 7: Sort + Limit -> TopN ------------------------------------------------------

Result<PlanNodePtr> Optimizer::FuseTopN(PlanNodePtr node) {
  for (PlanNodePtr& source : node->mutable_sources()) {
    ASSIGN_OR_RETURN(source, FuseTopN(source));
  }
  if (node->kind() != PlanNodeKind::kLimit) return node;
  auto* limit = static_cast<LimitNode*>(node.get());
  if (limit->sources()[0]->kind() != PlanNodeKind::kSort) return node;
  auto sort = std::static_pointer_cast<SortNode>(limit->sources()[0]);
  return PlanNodePtr(std::make_shared<TopNNode>(
      ids_->NextId(), sort->sources()[0], sort->ordering(), limit->count(),
      /*partial=*/false));
}

// ---- Rule 8: join distribution from session --------------------------------------------

void Optimizer::SelectJoinDistribution(const PlanNodePtr& node) {
  if (node->kind() == PlanNodeKind::kJoin) {
    auto* join = static_cast<JoinNode*>(node.get());
    std::string type = session_->Property("join_distribution_type", "partitioned");
    join->set_distribution(type == "broadcast" ? JoinDistribution::kBroadcast
                                               : JoinDistribution::kPartitioned);
    // Non-equi joins require the build side on every probe task.
    if (join->criteria().empty()) {
      join->set_distribution(JoinDistribution::kBroadcast);
    }
  }
  for (const PlanNodePtr& source : node->sources()) {
    SelectJoinDistribution(source);
  }
}

// ---- Finalize: every scan has a negotiated pushdown -------------------------------------

Status Optimizer::FinalizeScans(const PlanNodePtr& node) {
  Status status;
  ForEachScan(node, [&](TableScanNode* scan) {
    if (!status.ok() || scan->accepted().has_value()) return;
    auto connector = catalogs_->GetConnector(scan->catalog());
    if (!connector.ok()) {
      status = connector.status();
      return;
    }
    auto accepted = (*connector)->NegotiatePushdown(
        scan->table_schema_name(), scan->table_name(), scan->request());
    if (!accepted.ok()) {
      status = accepted.status();
      return;
    }
    scan->set_accepted(std::move(*accepted));
  });
  return status;
}

}  // namespace presto
