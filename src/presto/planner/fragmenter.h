#ifndef PRESTO_PLANNER_FRAGMENTER_H_
#define PRESTO_PLANNER_FRAGMENTER_H_

#include "presto/expr/function_registry.h"
#include "presto/planner/plan.h"

namespace presto {

/// One plan fragment: "the fragmenter divides the plan into fragments; each
/// running plan fragment is called a stage, which could be executed in
/// parallel. Stages consist of tasks, which are processing one or many
/// splits of input data."
struct PlanFragment {
  int id = 0;
  PlanNodePtr root;
  /// Leaf fragments contain exactly one TableScan and run as one task per
  /// split batch on workers. The root fragment (id 0) runs on the
  /// coordinator; everything else is an intermediate (worker-side) stage.
  bool leaf = false;
  /// How this fragment's output pages are routed into its exchange: gather
  /// (single consuming task) or hash-partitioned on join/group-by keys (one
  /// consuming task per partition). Unused for the root fragment.
  PartitioningScheme output_partitioning;
};

struct FragmentedPlan {
  /// fragments[0] is the root; the rest are leaves and intermediate stages
  /// referenced by RemoteSourceNodes.
  std::vector<PlanFragment> fragments;

  std::string ToString() const;
};

struct FragmenterOptions {
  /// Cut plans at partitioned-join and FINAL-aggregation boundaries into
  /// hash-partitioned worker-side stages (session property
  /// multi_stage_execution). Off reverts to the two-level gather plan where
  /// joins and final aggregations run inline in the root fragment.
  bool multi_stage = true;
};

/// Cuts an optimized plan into a root fragment plus leaf (source) fragments
/// and — with multi-stage execution on — intermediate stages. Aggregations
/// over scan pipelines split into PARTIAL (next to the scan) and FINAL
/// (its own hash-partitioned stage); partitioned joins become stages whose
/// children are hash-partitioned on the join keys; TopN and Limit get
/// partial leaf-side copies.
class Fragmenter {
 public:
  explicit Fragmenter(PlanIdAllocator* ids,
                      FunctionRegistry* functions = &FunctionRegistry::Default(),
                      FragmenterOptions options = FragmenterOptions())
      : ids_(ids), functions_(functions), options_(options) {}

  Result<FragmentedPlan> Fragment(PlanNodePtr root);

 private:
  struct SplitAggregation {
    std::vector<AggregateNode::Aggregation> partial;
    std::vector<AggregateNode::Aggregation> final;
  };

  Result<PlanNodePtr> Rewrite(PlanNodePtr node, FragmentedPlan* out);
  /// Appends a new fragment and returns the RemoteSourceNode that replaces
  /// its subtree in the consuming fragment.
  PlanNodePtr MakeFragment(PlanNodePtr subtree, bool leaf,
                           PartitioningScheme scheme, FragmentedPlan* out);
  /// Rewrites partial aggregate handles into partial/final pairs.
  Result<SplitAggregation> SplitAggregations(const AggregateNode& agg);
  /// Cuts both children of a partitioned equi-join into fragments
  /// hash-partitioned on their side's join keys; returns the join node with
  /// RemoteSource children, to be embedded in its own stage fragment.
  Result<PlanNodePtr> CutJoinChildren(PlanNodePtr join_node, FragmentedPlan* out);
  /// Cuts `child` into a fragment whose output is hash-partitioned on
  /// `keys`, recursing into nested partitioned joins.
  Result<PlanNodePtr> CutChildFragment(PlanNodePtr child,
                                       std::vector<VariablePtr> keys,
                                       FragmentedPlan* out);

  PlanIdAllocator* ids_;
  FunctionRegistry* functions_;
  FragmenterOptions options_;
};

}  // namespace presto

#endif  // PRESTO_PLANNER_FRAGMENTER_H_
