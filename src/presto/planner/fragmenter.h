#ifndef PRESTO_PLANNER_FRAGMENTER_H_
#define PRESTO_PLANNER_FRAGMENTER_H_

#include "presto/expr/function_registry.h"
#include "presto/planner/plan.h"

namespace presto {

/// One plan fragment: "the fragmenter divides the plan into fragments; each
/// running plan fragment is called a stage, which could be executed in
/// parallel. Stages consist of tasks, which are processing one or many
/// splits of input data."
struct PlanFragment {
  int id = 0;
  PlanNodePtr root;
  /// Leaf fragments contain exactly one TableScan and run as one task per
  /// split batch on workers; the root fragment (id 0) gathers exchanges.
  bool leaf = false;
};

struct FragmentedPlan {
  /// fragments[0] is the root; the rest are leaves referenced by
  /// RemoteSourceNodes.
  std::vector<PlanFragment> fragments;

  std::string ToString() const;
};

/// Cuts an optimized plan into a root fragment plus leaf (source) fragments.
/// Aggregations over scan pipelines are split into PARTIAL (in the leaf,
/// next to the scan) and FINAL (after the exchange); TopN and Limit get
/// partial leaf-side copies.
class Fragmenter {
 public:
  Fragmenter(PlanIdAllocator* ids,
             FunctionRegistry* functions = &FunctionRegistry::Default())
      : ids_(ids), functions_(functions) {}

  Result<FragmentedPlan> Fragment(PlanNodePtr root);

 private:
  Result<PlanNodePtr> Rewrite(PlanNodePtr node, FragmentedPlan* out);
  PlanNodePtr MakeLeafFragment(PlanNodePtr subtree, FragmentedPlan* out);

  PlanIdAllocator* ids_;
  FunctionRegistry* functions_;
};

}  // namespace presto

#endif  // PRESTO_PLANNER_FRAGMENTER_H_
