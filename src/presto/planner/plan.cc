#include "presto/planner/plan.h"

namespace presto {

std::string PlanNode::ToString(int indent) const {
  std::string out(indent * 2, ' ');
  out += "- " + Label() + "\n";
  for (const PlanNodePtr& source : sources_) {
    out += source->ToString(indent + 1);
  }
  return out;
}

const char* AggregationStepToString(AggregationStep step) {
  switch (step) {
    case AggregationStep::kSingle:
      return "SINGLE";
    case AggregationStep::kPartial:
      return "PARTIAL";
    case AggregationStep::kFinal:
      return "FINAL";
  }
  return "?";
}

const char* JoinKindToString(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
      return "INNER";
    case JoinKind::kLeft:
      return "LEFT";
    case JoinKind::kCross:
      return "CROSS";
  }
  return "?";
}

std::string TableScanNode::Label() const {
  std::string out = "TableScan[" + catalog_ + "." + schema_ + "." + table_ + "]";
  if (accepted_.has_value()) {
    out += " columns=[";
    for (size_t i = 0; i < accepted_->request.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += accepted_->request.columns[i];
    }
    out += "]";
    if (!accepted_->request.required_leaves.empty()) {
      out += " prunedLeaves=[";
      for (size_t i = 0; i < accepted_->request.required_leaves.size(); ++i) {
        if (i > 0) out += ", ";
        out += accepted_->request.required_leaves[i];
      }
      out += "]";
    }
    if (!accepted_->request.predicates.empty()) {
      out += " pushedPredicates=[";
      for (size_t i = 0; i < accepted_->request.predicates.size(); ++i) {
        if (i > 0) out += " AND ";
        out += accepted_->request.predicates[i].ToString();
      }
      out += "]";
      // enforced = the connector emits exactly the matching rows (no engine
      // residual re-check); hint = pruning only, the filter re-checks.
      out += accepted_->predicates_enforced ? " enforced" : " hint";
    }
    if (accepted_->limit_pushed) {
      out += " pushedLimit=" + std::to_string(accepted_->request.limit);
    }
    if (accepted_->aggregations_pushed) {
      out += " pushedAggregation=[";
      for (size_t i = 0; i < accepted_->request.aggregations.size(); ++i) {
        if (i > 0) out += ", ";
        const PushedAggregation& agg = accepted_->request.aggregations[i];
        out += agg.function + "(" + agg.argument + ")";
      }
      out += " groupBy=(";
      for (size_t i = 0; i < accepted_->request.group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += accepted_->request.group_by[i];
      }
      out += ")]";
    }
  }
  return out;
}

std::string ValuesNode::Label() const {
  return "Values[" + std::to_string(rows_.size()) + " rows]";
}

std::string FilterNode::Label() const {
  return "Filter[" + predicate_->ToString() + "]";
}

std::vector<VariablePtr> ProjectNode::OutputVariables() const {
  std::vector<VariablePtr> out;
  out.reserve(assignments_.size());
  for (const Assignment& a : assignments_) out.push_back(a.output);
  return out;
}

std::string ProjectNode::Label() const {
  std::string out = "Project[";
  for (size_t i = 0; i < assignments_.size(); ++i) {
    if (i > 0) out += ", ";
    out += assignments_[i].output->name() + " := " +
           assignments_[i].expression->ToString();
  }
  out += "]";
  return out;
}

std::vector<VariablePtr> AggregateNode::OutputVariables() const {
  std::vector<VariablePtr> out = group_keys_;
  for (const Aggregation& agg : aggregations_) out.push_back(agg.output);
  return out;
}

std::string AggregateNode::Label() const {
  std::string out = "Aggregate(";
  out += AggregationStepToString(step_);
  out += ")[";
  for (size_t i = 0; i < group_keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_keys_[i]->name();
  }
  out += "][";
  for (size_t i = 0; i < aggregations_.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggregations_[i].output->name() + " := " +
           aggregations_[i].handle.name + "(";
    for (size_t a = 0; a < aggregations_[i].arguments.size(); ++a) {
      if (a > 0) out += ", ";
      out += aggregations_[i].arguments[a]->name();
    }
    out += ")";
  }
  out += "]";
  return out;
}

std::vector<VariablePtr> JoinNode::OutputVariables() const {
  std::vector<VariablePtr> out = sources()[0]->OutputVariables();
  std::vector<VariablePtr> right = sources()[1]->OutputVariables();
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

std::string JoinNode::Label() const {
  std::string out = "Join[";
  out += JoinKindToString(join_kind_);
  out += distribution_ == JoinDistribution::kBroadcast ? ", broadcast" : ", partitioned";
  if (!criteria_.empty()) {
    out += ", on ";
    for (size_t i = 0; i < criteria_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += criteria_[i].left->name() + " = " + criteria_[i].right->name();
    }
  }
  if (filter_ != nullptr) {
    out += ", filter " + filter_->ToString();
  }
  out += "]";
  return out;
}

std::string SortNode::Label() const {
  std::string out = "Sort[";
  for (size_t i = 0; i < ordering_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ordering_[i].variable->name();
    out += ordering_[i].ascending ? " ASC" : " DESC";
  }
  out += "]";
  return out;
}

std::string TopNNode::Label() const {
  std::string out = partial_ ? "TopN(PARTIAL)[" : "TopN[";
  out += std::to_string(count_) + " by ";
  for (size_t i = 0; i < ordering_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ordering_[i].variable->name();
    out += ordering_[i].ascending ? " ASC" : " DESC";
  }
  out += "]";
  return out;
}

std::string LimitNode::Label() const {
  return std::string(partial_ ? "Limit(PARTIAL)[" : "Limit[") +
         std::to_string(count_) + "]";
}

std::string OutputNode::Label() const {
  std::string out = "Output[";
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += column_names_[i];
  }
  out += "]";
  return out;
}

std::string PartitioningScheme::ToString() const {
  if (kind == Kind::kGather) return "gather";
  std::string out = "hash(";
  for (size_t i = 0; i < hash_keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += hash_keys[i]->name();
  }
  out += ")";
  return out;
}

std::string RemoteSourceNode::Label() const {
  std::string out = "RemoteSource[fragment " + std::to_string(fragment_id_);
  if (source_partitioning_ == PartitioningScheme::Kind::kHash) {
    out += ", partitioned";
  }
  return out + "]";
}

}  // namespace presto
