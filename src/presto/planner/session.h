#ifndef PRESTO_PLANNER_SESSION_H_
#define PRESTO_PLANNER_SESSION_H_

#include <map>
#include <string>

namespace presto {

/// Query session: user/group identity (used by the gateway for routing) and
/// session properties. "Presto has session properties to turn on broadcast
/// join for all queries in this session" (Section XII.A).
struct Session {
  std::string user = "anonymous";
  std::string group = "default";
  std::string default_catalog = "memory";
  std::string default_schema = "default";
  std::map<std::string, std::string> properties;

  /// Known properties:
  ///   join_distribution_type = "broadcast" | "partitioned" (default)
  ///   geo_index_rewrite      = "true" (default) | "false"
  ///   multi_stage_execution  = "true" (default) | "false"
  ///   exchange_buffer_bytes  = per-exchange byte budget (default 32 MiB)
  ///   hash_partition_count   = partitions per hash-partitioned stage
  ///   query_max_task_retries = leaf-task retry budget on retryable
  ///                            failures (default 0: recovery disabled)
  ///   task_retry_backoff_millis = base retry backoff, doubles per attempt
  ///                            with jitter, capped at 64x (default 2)
  ///   query_timeout_millis   = per-query deadline, enforced cooperatively
  ///                            at operator-batch and exchange waits
  ///                            (default: none)
  ///   query_max_memory       = per-query user-memory cap in bytes; the
  ///                            query's operators (hash tables, sort
  ///                            buffers, join builds) reserve against it
  ///                            and spill or fail when it is exceeded
  ///                            (default 1 GiB)
  ///   spill_enabled          = "true" (default) | "false": revocable
  ///                            operators (aggregation, order-by) write
  ///                            sorted runs to disk when the query cap is
  ///                            hit and merge them on output; off makes
  ///                            exceeding query_max_memory a
  ///                            kResourceExhausted failure
  ///   spill_path             = spill-area directory; each query spills
  ///                            under <spill_path>/query-<id>
  ///                            (default /tmp/presto_spill)
  ///   query_queue_max        = admission-control queue depth: queries
  ///                            arriving while reserved worker memory is
  ///                            above the high-water mark wait here;
  ///                            arrivals beyond this are load-shed with
  ///                            kRejected (default 64; with resource groups
  ///                            enabled the effective depth is the minimum
  ///                            of this and the group's max_queued)
  ///   resource_group         = resource group to run under ("interactive",
  ///                            "batch", "adhoc" in the default tree); falls
  ///                            back to a group named like the session's
  ///                            group, then the tree's default group
  ///   memory_accounting      = "true" (default) | "false": disables the
  ///                            memory-pool hierarchy entirely (used to
  ///                            measure reservation overhead in benches)
  ///   morsel_execution       = "true" (default) | "false": split leaf
  ///                            scans into cache-sized morsels pulled by a
  ///                            worker-local work-stealing pool; off runs
  ///                            one operator chain per task and forces
  ///                            task_threads = 1
  ///   task_threads           = operator chains per task under morsel
  ///                            execution; each chain owns thread-local
  ///                            radix-partitioned aggregation/join state
  ///                            merged partition-wise at finalize (default
  ///                            min(16, hardware threads))
  ///   morsel_rows            = target rows per morsel; leaf splits and
  ///                            exchange pages are re-chunked to about this
  ///                            granularity (default 65536)
  ///   memory_reservation_quantum = operator reservations are rounded up to
  ///                            this many bytes so the pool tree is touched
  ///                            once per quantum, not once per page; 0
  ///                            reserves exact sizes (default 1 MiB)
  ///   query_trace            = "false" (default) | "true": record the
  ///                            query's span tree (query -> stage -> task ->
  ///                            chain -> operator, plus admission/exchange/
  ///                            spill/memory waits) and return it on the
  ///                            QueryResult as Chrome trace-event JSON
  ///                            (trace_json, loadable in chrome://tracing);
  ///                            implies stats collection
  ///   slow_query_millis      = wall-time threshold above which a slow_query
  ///                            journal event is recorded carrying the full
  ///                            per-query counter snapshot, including the
  ///                            trace.blocked.* breakdown (default: off)
  ///   exchange_spool         = "false" (default) | "true": tee every page
  ///                            accepted into an exchange to a worker-local
  ///                            snappy-compressed spool file, so a lost
  ///                            intermediate task is re-run against the
  ///                            surviving upstream spools (stage re-run)
  ///                            instead of restarting the whole query
  ///   exchange_spool_budget_bytes = per-query cap on spooled (compressed)
  ///                            bytes; exceeding it marks the partition's
  ///                            spool broken and recovery falls back to
  ///                            restart-once (default 256 MiB)
  ///   speculative_execution  = "false" (default) | "true": watch leaf-task
  ///                            progress and launch one duplicate attempt
  ///                            for a task running past the quantile-based
  ///                            slowness threshold; first attempt to commit
  ///                            wins via attempt-id fencing at the exchange
  ///   speculation_quantile   = quantile of completed sibling durations the
  ///                            straggler threshold is derived from
  ///                            (threshold = quantile * 2 + floor; default
  ///                            0.75, valid (0, 1])
  std::string Property(const std::string& name,
                       const std::string& default_value) const {
    auto it = properties.find(name);
    return it == properties.end() ? default_value : it->second;
  }
};

}  // namespace presto

#endif  // PRESTO_PLANNER_SESSION_H_
