#ifndef PRESTO_PLANNER_SESSION_H_
#define PRESTO_PLANNER_SESSION_H_

#include <map>
#include <string>

namespace presto {

/// Query session: user/group identity (used by the gateway for routing) and
/// session properties. "Presto has session properties to turn on broadcast
/// join for all queries in this session" (Section XII.A).
struct Session {
  std::string user = "anonymous";
  std::string group = "default";
  std::string default_catalog = "memory";
  std::string default_schema = "default";
  std::map<std::string, std::string> properties;

  /// Known properties:
  ///   join_distribution_type = "broadcast" | "partitioned" (default)
  ///   geo_index_rewrite      = "true" (default) | "false"
  ///   multi_stage_execution  = "true" (default) | "false"
  ///   exchange_buffer_bytes  = per-exchange byte budget (default 32 MiB)
  ///   hash_partition_count   = partitions per hash-partitioned stage
  ///   query_max_task_retries = leaf-task retry budget on retryable
  ///                            failures (default 0: recovery disabled)
  ///   task_retry_backoff_millis = base retry backoff, doubles per attempt
  ///                            with jitter, capped at 64x (default 2)
  ///   query_timeout_millis   = per-query deadline, enforced cooperatively
  ///                            at operator-batch and exchange waits
  ///                            (default: none)
  std::string Property(const std::string& name,
                       const std::string& default_value) const {
    auto it = properties.find(name);
    return it == properties.end() ? default_value : it->second;
  }
};

}  // namespace presto

#endif  // PRESTO_PLANNER_SESSION_H_
