#include "presto/planner/fragmenter.h"

namespace presto {

namespace {

// A subtree is "scannable" when it is a pure per-split pipeline: one
// TableScan under any mix of Filters and Projects.
bool IsScannableSubtree(const PlanNodePtr& node) {
  switch (node->kind()) {
    case PlanNodeKind::kTableScan:
      return true;
    case PlanNodeKind::kFilter:
    case PlanNodeKind::kProject:
      return IsScannableSubtree(node->sources()[0]);
    default:
      return false;
  }
}

// Hash-partitionable equi-join: both sides can be shuffled on their join
// keys and each partition joined independently. Broadcast and non-equi
// joins keep the build side inline with the probe.
bool IsPartitionableJoin(const PlanNodePtr& node) {
  if (node->kind() != PlanNodeKind::kJoin) return false;
  const auto* join = static_cast<const JoinNode*>(node.get());
  return join->distribution() == JoinDistribution::kPartitioned &&
         !join->criteria().empty();
}

PartitioningScheme SchemeForKeys(const std::vector<VariablePtr>& keys) {
  return keys.empty() ? PartitioningScheme::Gather()
                      : PartitioningScheme::Hash(keys);
}

}  // namespace

std::string FragmentedPlan::ToString() const {
  std::string out;
  for (const PlanFragment& fragment : fragments) {
    out += "Fragment " + std::to_string(fragment.id) +
           (fragment.leaf ? " (leaf)"
                          : (fragment.id == 0 ? " (root)" : " (intermediate)"));
    if (fragment.id != 0) {
      out += " [output: " + fragment.output_partitioning.ToString() + "]";
    }
    out += "\n";
    out += fragment.root->ToString(1);
  }
  return out;
}

PlanNodePtr Fragmenter::MakeFragment(PlanNodePtr subtree, bool leaf,
                                     PartitioningScheme scheme,
                                     FragmentedPlan* out) {
  PlanFragment fragment;
  fragment.id = static_cast<int>(out->fragments.size());
  fragment.root = subtree;
  fragment.leaf = leaf;
  fragment.output_partitioning = scheme;
  out->fragments.push_back(fragment);
  return std::make_shared<RemoteSourceNode>(ids_->NextId(), fragment.id,
                                            subtree->OutputVariables(),
                                            scheme.kind);
}

Result<Fragmenter::SplitAggregation> Fragmenter::SplitAggregations(
    const AggregateNode& agg) {
  SplitAggregation split;
  for (const auto& aggregation : agg.aggregations()) {
    ASSIGN_OR_RETURN(const AggregateFunction* impl,
                     functions_->FindAggregate(aggregation.handle));
    VariablePtr partial_var = VariableReferenceExpression::Make(
        ids_->NextVariable("partial"), impl->intermediate_type);
    split.partial.push_back(
        {partial_var, aggregation.handle, aggregation.arguments});
    split.final.push_back({aggregation.output, aggregation.handle, {partial_var}});
  }
  return split;
}

Result<PlanNodePtr> Fragmenter::CutChildFragment(PlanNodePtr child,
                                                 std::vector<VariablePtr> keys,
                                                 FragmentedPlan* out) {
  // Nested partitioned join: give it its own stage whose output is
  // re-partitioned on the outer keys (its tasks run partitioned on its own
  // join keys; correctness between differently-keyed joins requires the
  // re-shuffle).
  if (IsPartitionableJoin(child)) {
    ASSIGN_OR_RETURN(PlanNodePtr join_subtree,
                     CutJoinChildren(std::move(child), out));
    return MakeFragment(std::move(join_subtree), /*leaf=*/false,
                        PartitioningScheme::Hash(std::move(keys)), out);
  }
  // Pure scan pipeline: the leaf fragment itself shuffles on the keys.
  if (IsScannableSubtree(child)) {
    return MakeFragment(std::move(child), /*leaf=*/true,
                        PartitioningScheme::Hash(std::move(keys)), out);
  }
  ASSIGN_OR_RETURN(PlanNodePtr rewritten, Rewrite(std::move(child), out));
  if (rewritten->kind() == PlanNodeKind::kRemoteSource) {
    // The child collapsed into a stage of its own (e.g. a FINAL aggregation
    // stage). Re-point that fragment's output partitioning at our keys
    // instead of adding a forwarding stage.
    auto* remote = static_cast<RemoteSourceNode*>(rewritten.get());
    PlanFragment& fragment = out->fragments[remote->fragment_id()];
    fragment.output_partitioning = PartitioningScheme::Hash(std::move(keys));
    remote->set_source_partitioning(PartitioningScheme::Kind::kHash);
    return rewritten;
  }
  return MakeFragment(std::move(rewritten), /*leaf=*/false,
                      PartitioningScheme::Hash(std::move(keys)), out);
}

Result<PlanNodePtr> Fragmenter::CutJoinChildren(PlanNodePtr join_node,
                                                FragmentedPlan* out) {
  auto* join = static_cast<JoinNode*>(join_node.get());
  std::vector<VariablePtr> left_keys;
  std::vector<VariablePtr> right_keys;
  for (const JoinNode::EquiClause& clause : join->criteria()) {
    left_keys.push_back(clause.left);
    right_keys.push_back(clause.right);
  }
  ASSIGN_OR_RETURN(
      PlanNodePtr left,
      CutChildFragment(join->sources()[0], std::move(left_keys), out));
  ASSIGN_OR_RETURN(
      PlanNodePtr right,
      CutChildFragment(join->sources()[1], std::move(right_keys), out));
  join->mutable_sources()[0] = std::move(left);
  join->mutable_sources()[1] = std::move(right);
  return join_node;
}

Result<PlanNodePtr> Fragmenter::Rewrite(PlanNodePtr node, FragmentedPlan* out) {
  // Split a single-step aggregation over a scan pipeline into
  // partial (leaf-side) + final. With multi-stage execution the final
  // aggregation becomes its own worker-side stage fed by a shuffle on the
  // group keys; otherwise it runs in the enclosing (root) fragment.
  if (node->kind() == PlanNodeKind::kAggregate) {
    auto* agg = static_cast<AggregateNode*>(node.get());
    if (agg->step() == AggregationStep::kSingle &&
        IsScannableSubtree(agg->sources()[0])) {
      ASSIGN_OR_RETURN(SplitAggregation split, SplitAggregations(*agg));
      PlanNodePtr partial = std::make_shared<AggregateNode>(
          ids_->NextId(), agg->sources()[0], agg->group_keys(),
          std::move(split.partial), AggregationStep::kPartial);
      PlanNodePtr remote =
          MakeFragment(std::move(partial), /*leaf=*/true,
                       options_.multi_stage ? SchemeForKeys(agg->group_keys())
                                            : PartitioningScheme::Gather(),
                       out);
      PlanNodePtr final_agg = std::make_shared<AggregateNode>(
          ids_->NextId(), std::move(remote), agg->group_keys(),
          std::move(split.final), AggregationStep::kFinal);
      if (!options_.multi_stage) return final_agg;
      return MakeFragment(std::move(final_agg), /*leaf=*/false,
                          PartitioningScheme::Gather(), out);
    }
    // Single aggregation directly over a partitioned join: the partial
    // aggregation rides in the join stage, the final gets its own stage
    // partitioned on the group keys.
    if (agg->step() == AggregationStep::kSingle && options_.multi_stage &&
        IsPartitionableJoin(agg->sources()[0])) {
      ASSIGN_OR_RETURN(SplitAggregation split, SplitAggregations(*agg));
      ASSIGN_OR_RETURN(PlanNodePtr join_subtree,
                       CutJoinChildren(agg->sources()[0], out));
      PlanNodePtr partial = std::make_shared<AggregateNode>(
          ids_->NextId(), std::move(join_subtree), agg->group_keys(),
          std::move(split.partial), AggregationStep::kPartial);
      PlanNodePtr remote =
          MakeFragment(std::move(partial), /*leaf=*/false,
                       SchemeForKeys(agg->group_keys()), out);
      PlanNodePtr final_agg = std::make_shared<AggregateNode>(
          ids_->NextId(), std::move(remote), agg->group_keys(),
          std::move(split.final), AggregationStep::kFinal);
      return MakeFragment(std::move(final_agg), /*leaf=*/false,
                          PartitioningScheme::Gather(), out);
    }
    // Final aggregation produced by connector aggregation pushdown: the scan
    // itself becomes the leaf fragment (shuffled on the group keys so the
    // final can still run as its own partitioned stage).
    if (agg->step() == AggregationStep::kFinal &&
        IsScannableSubtree(agg->sources()[0])) {
      PlanNodePtr remote =
          MakeFragment(agg->sources()[0], /*leaf=*/true,
                       options_.multi_stage ? SchemeForKeys(agg->group_keys())
                                            : PartitioningScheme::Gather(),
                       out);
      node->mutable_sources()[0] = std::move(remote);
      if (!options_.multi_stage) return node;
      return MakeFragment(std::move(node), /*leaf=*/false,
                          PartitioningScheme::Gather(), out);
    }
  }
  // TopN over a scan pipeline: partial TopN runs leaf-side.
  if (node->kind() == PlanNodeKind::kTopN) {
    auto* topn = static_cast<TopNNode*>(node.get());
    if (!topn->partial() && IsScannableSubtree(topn->sources()[0])) {
      PlanNodePtr partial = std::make_shared<TopNNode>(
          ids_->NextId(), topn->sources()[0], topn->ordering(), topn->count(),
          /*partial=*/true);
      PlanNodePtr remote = MakeFragment(std::move(partial), /*leaf=*/true,
                                        PartitioningScheme::Gather(), out);
      return PlanNodePtr(std::make_shared<TopNNode>(
          ids_->NextId(), std::move(remote), topn->ordering(), topn->count(),
          /*partial=*/false));
    }
  }
  // Limit over a scan pipeline: partial limit caps each task's output.
  if (node->kind() == PlanNodeKind::kLimit) {
    auto* limit = static_cast<LimitNode*>(node.get());
    if (!limit->partial() && IsScannableSubtree(limit->sources()[0])) {
      PlanNodePtr partial = std::make_shared<LimitNode>(
          ids_->NextId(), limit->sources()[0], limit->count(), /*partial=*/true);
      PlanNodePtr remote = MakeFragment(std::move(partial), /*leaf=*/true,
                                        PartitioningScheme::Gather(), out);
      return PlanNodePtr(std::make_shared<LimitNode>(
          ids_->NextId(), std::move(remote), limit->count(), /*partial=*/false));
    }
  }
  // A partitioned equi-join becomes its own worker-side stage: both children
  // are cut into fragments hash-partitioned on their join keys and each
  // stage task joins one partition.
  if (options_.multi_stage && IsPartitionableJoin(node)) {
    ASSIGN_OR_RETURN(PlanNodePtr join_subtree,
                     CutJoinChildren(std::move(node), out));
    return MakeFragment(std::move(join_subtree), /*leaf=*/false,
                        PartitioningScheme::Gather(), out);
  }
  // A bare scan pipeline feeding anything else becomes a leaf fragment.
  if (IsScannableSubtree(node)) {
    return MakeFragment(node, /*leaf=*/true, PartitioningScheme::Gather(), out);
  }
  for (PlanNodePtr& source : node->mutable_sources()) {
    ASSIGN_OR_RETURN(source, Rewrite(source, out));
  }
  return node;
}

Result<FragmentedPlan> Fragmenter::Fragment(PlanNodePtr root) {
  FragmentedPlan out;
  // Reserve slot 0 for the root fragment.
  out.fragments.push_back(PlanFragment{0, nullptr, false, {}});
  ASSIGN_OR_RETURN(PlanNodePtr rewritten, Rewrite(std::move(root), &out));
  out.fragments[0].root = std::move(rewritten);
  return out;
}

}  // namespace presto
