#include "presto/planner/fragmenter.h"

namespace presto {

namespace {

// A subtree is "scannable" when it is a pure per-split pipeline: one
// TableScan under any mix of Filters and Projects.
bool IsScannableSubtree(const PlanNodePtr& node) {
  switch (node->kind()) {
    case PlanNodeKind::kTableScan:
      return true;
    case PlanNodeKind::kFilter:
    case PlanNodeKind::kProject:
      return IsScannableSubtree(node->sources()[0]);
    default:
      return false;
  }
}

}  // namespace

std::string FragmentedPlan::ToString() const {
  std::string out;
  for (const PlanFragment& fragment : fragments) {
    out += "Fragment " + std::to_string(fragment.id) +
           (fragment.leaf ? " (leaf)" : " (root)") + "\n";
    out += fragment.root->ToString(1);
  }
  return out;
}

PlanNodePtr Fragmenter::MakeLeafFragment(PlanNodePtr subtree, FragmentedPlan* out) {
  PlanFragment fragment;
  fragment.id = static_cast<int>(out->fragments.size());
  fragment.root = subtree;
  fragment.leaf = true;
  out->fragments.push_back(fragment);
  return std::make_shared<RemoteSourceNode>(ids_->NextId(), fragment.id,
                                            subtree->OutputVariables());
}

Result<PlanNodePtr> Fragmenter::Rewrite(PlanNodePtr node, FragmentedPlan* out) {
  // Split a single-step aggregation over a scan pipeline into
  // partial (leaf) + final (root).
  if (node->kind() == PlanNodeKind::kAggregate) {
    auto* agg = static_cast<AggregateNode*>(node.get());
    if (agg->step() == AggregationStep::kSingle &&
        IsScannableSubtree(agg->sources()[0])) {
      std::vector<AggregateNode::Aggregation> partial_aggs;
      std::vector<AggregateNode::Aggregation> final_aggs;
      for (const auto& aggregation : agg->aggregations()) {
        ASSIGN_OR_RETURN(const AggregateFunction* impl,
                         functions_->FindAggregate(aggregation.handle));
        VariablePtr partial_var = VariableReferenceExpression::Make(
            ids_->NextVariable("partial"), impl->intermediate_type);
        partial_aggs.push_back(
            {partial_var, aggregation.handle, aggregation.arguments});
        final_aggs.push_back({aggregation.output, aggregation.handle, {partial_var}});
      }
      PlanNodePtr partial = std::make_shared<AggregateNode>(
          ids_->NextId(), agg->sources()[0], agg->group_keys(),
          std::move(partial_aggs), AggregationStep::kPartial);
      PlanNodePtr remote = MakeLeafFragment(std::move(partial), out);
      return PlanNodePtr(std::make_shared<AggregateNode>(
          ids_->NextId(), std::move(remote), agg->group_keys(),
          std::move(final_aggs), AggregationStep::kFinal));
    }
  }
  // Final aggregation produced by connector aggregation pushdown: the scan
  // itself becomes the leaf fragment.
  if (node->kind() == PlanNodeKind::kAggregate) {
    auto* agg = static_cast<AggregateNode*>(node.get());
    if (agg->step() == AggregationStep::kFinal &&
        IsScannableSubtree(agg->sources()[0])) {
      PlanNodePtr remote = MakeLeafFragment(agg->sources()[0], out);
      node->mutable_sources()[0] = std::move(remote);
      return node;
    }
  }
  // TopN over a scan pipeline: partial TopN runs leaf-side.
  if (node->kind() == PlanNodeKind::kTopN) {
    auto* topn = static_cast<TopNNode*>(node.get());
    if (!topn->partial() && IsScannableSubtree(topn->sources()[0])) {
      PlanNodePtr partial = std::make_shared<TopNNode>(
          ids_->NextId(), topn->sources()[0], topn->ordering(), topn->count(),
          /*partial=*/true);
      PlanNodePtr remote = MakeLeafFragment(std::move(partial), out);
      return PlanNodePtr(std::make_shared<TopNNode>(
          ids_->NextId(), std::move(remote), topn->ordering(), topn->count(),
          /*partial=*/false));
    }
  }
  // Limit over a scan pipeline: partial limit caps each task's output.
  if (node->kind() == PlanNodeKind::kLimit) {
    auto* limit = static_cast<LimitNode*>(node.get());
    if (!limit->partial() && IsScannableSubtree(limit->sources()[0])) {
      PlanNodePtr partial = std::make_shared<LimitNode>(
          ids_->NextId(), limit->sources()[0], limit->count(), /*partial=*/true);
      PlanNodePtr remote = MakeLeafFragment(std::move(partial), out);
      return PlanNodePtr(std::make_shared<LimitNode>(
          ids_->NextId(), std::move(remote), limit->count(), /*partial=*/false));
    }
  }
  // A bare scan pipeline feeding anything else becomes a leaf fragment.
  if (IsScannableSubtree(node)) {
    return MakeLeafFragment(node, out);
  }
  for (PlanNodePtr& source : node->mutable_sources()) {
    ASSIGN_OR_RETURN(source, Rewrite(source, out));
  }
  return node;
}

Result<FragmentedPlan> Fragmenter::Fragment(PlanNodePtr root) {
  FragmentedPlan out;
  // Reserve slot 0 for the root fragment.
  out.fragments.push_back(PlanFragment{0, nullptr, false});
  ASSIGN_OR_RETURN(PlanNodePtr rewritten, Rewrite(std::move(root), &out));
  out.fragments[0].root = std::move(rewritten);
  return out;
}

}  // namespace presto
