#ifndef PRESTO_PLANNER_PLAN_H_
#define PRESTO_PLANNER_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "presto/connector/pushdown.h"
#include "presto/expr/expression.h"
#include "presto/types/value.h"

namespace presto {

/// Logical/physical plan node kinds. The analyzer emits a tree of these;
/// the optimizer rewrites it; the fragmenter cuts it into fragments.
enum class PlanNodeKind {
  kTableScan,
  kValues,
  kFilter,
  kProject,
  kAggregate,
  kJoin,
  kSort,
  kTopN,
  kLimit,
  kOutput,
  kRemoteSource,  // fragment boundary (exchange input)
};

class PlanNode;
using PlanNodePtr = std::shared_ptr<PlanNode>;

/// Base plan node. Nodes are mutable during planning (single-threaded) and
/// immutable once execution starts.
class PlanNode {
 public:
  virtual ~PlanNode() = default;

  PlanNodeKind kind() const { return kind_; }
  int id() const { return id_; }

  const std::vector<PlanNodePtr>& sources() const { return sources_; }
  std::vector<PlanNodePtr>& mutable_sources() { return sources_; }

  /// Output columns of this node, in order.
  virtual std::vector<VariablePtr> OutputVariables() const = 0;

  /// One-line description for EXPLAIN.
  virtual std::string Label() const = 0;

  /// Multi-line EXPLAIN rendering of the subtree.
  std::string ToString(int indent = 0) const;

 protected:
  PlanNode(PlanNodeKind kind, int id, std::vector<PlanNodePtr> sources)
      : kind_(kind), id_(id), sources_(std::move(sources)) {}

 private:
  PlanNodeKind kind_;
  int id_;
  std::vector<PlanNodePtr> sources_;
};

/// Allocates unique plan-node ids and variable names within one query.
class PlanIdAllocator {
 public:
  int NextId() { return next_id_++; }
  std::string NextVariable(const std::string& hint) {
    return hint + "_" + std::to_string(next_var_++);
  }

 private:
  int next_id_ = 0;
  int next_var_ = 0;
};

/// Scan of catalog.schema.table through a connector. The optimizer fills
/// `request` (desired pushdown) and `accepted` (what the connector agreed
/// to); execution uses `accepted`.
class TableScanNode final : public PlanNode {
 public:
  TableScanNode(int id, std::string catalog, std::string schema,
                std::string table, TypePtr table_schema,
                std::vector<VariablePtr> outputs,
                std::vector<std::string> column_names)
      : PlanNode(PlanNodeKind::kTableScan, id, {}),
        catalog_(std::move(catalog)),
        schema_(std::move(schema)),
        table_(std::move(table)),
        table_schema_(std::move(table_schema)),
        outputs_(std::move(outputs)),
        column_names_(std::move(column_names)) {}

  const std::string& catalog() const { return catalog_; }
  const std::string& table_schema_name() const { return schema_; }
  const std::string& table_name() const { return table_; }
  const TypePtr& table_schema() const { return table_schema_; }
  const std::vector<std::string>& column_names() const { return column_names_; }

  PushdownRequest& mutable_request() { return request_; }
  const PushdownRequest& request() const { return request_; }
  const std::optional<AcceptedPushdown>& accepted() const { return accepted_; }
  void set_accepted(AcceptedPushdown accepted) { accepted_ = std::move(accepted); }

  /// Replaces outputs (used when aggregation pushdown reshapes the scan).
  void SetOutputs(std::vector<VariablePtr> outputs,
                  std::vector<std::string> column_names) {
    outputs_ = std::move(outputs);
    column_names_ = std::move(column_names);
  }

  std::vector<VariablePtr> OutputVariables() const override { return outputs_; }
  std::string Label() const override;

 private:
  std::string catalog_;
  std::string schema_;
  std::string table_;
  TypePtr table_schema_;
  std::vector<VariablePtr> outputs_;
  std::vector<std::string> column_names_;  // table column per output
  PushdownRequest request_;
  std::optional<AcceptedPushdown> accepted_;
};

/// Literal rows (VALUES / test inputs).
class ValuesNode final : public PlanNode {
 public:
  ValuesNode(int id, std::vector<VariablePtr> outputs,
             std::vector<std::vector<Value>> rows)
      : PlanNode(PlanNodeKind::kValues, id, {}),
        outputs_(std::move(outputs)),
        rows_(std::move(rows)) {}

  const std::vector<std::vector<Value>>& rows() const { return rows_; }
  std::vector<VariablePtr> OutputVariables() const override { return outputs_; }
  std::string Label() const override;

 private:
  std::vector<VariablePtr> outputs_;
  std::vector<std::vector<Value>> rows_;
};

class FilterNode final : public PlanNode {
 public:
  FilterNode(int id, PlanNodePtr source, ExprPtr predicate)
      : PlanNode(PlanNodeKind::kFilter, id, {std::move(source)}),
        predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }
  std::vector<VariablePtr> OutputVariables() const override {
    return sources()[0]->OutputVariables();
  }
  std::string Label() const override;

 private:
  ExprPtr predicate_;
};

class ProjectNode final : public PlanNode {
 public:
  struct Assignment {
    VariablePtr output;
    ExprPtr expression;
  };

  ProjectNode(int id, PlanNodePtr source, std::vector<Assignment> assignments)
      : PlanNode(PlanNodeKind::kProject, id, {std::move(source)}),
        assignments_(std::move(assignments)) {}

  const std::vector<Assignment>& assignments() const { return assignments_; }
  std::vector<VariablePtr> OutputVariables() const override;
  std::string Label() const override;

 private:
  std::vector<Assignment> assignments_;
};

/// Aggregation step in the distributed plan: partial runs next to the scan,
/// final after the exchange; single means not yet split.
enum class AggregationStep { kSingle, kPartial, kFinal };

const char* AggregationStepToString(AggregationStep step);

class AggregateNode final : public PlanNode {
 public:
  struct Aggregation {
    VariablePtr output;
    FunctionHandle handle;               // resolved aggregate function
    std::vector<VariablePtr> arguments;  // input columns (empty = count(*))
  };

  AggregateNode(int id, PlanNodePtr source, std::vector<VariablePtr> group_keys,
                std::vector<Aggregation> aggregations, AggregationStep step)
      : PlanNode(PlanNodeKind::kAggregate, id, {std::move(source)}),
        group_keys_(std::move(group_keys)),
        aggregations_(std::move(aggregations)),
        step_(step) {}

  const std::vector<VariablePtr>& group_keys() const { return group_keys_; }
  const std::vector<Aggregation>& aggregations() const { return aggregations_; }
  AggregationStep step() const { return step_; }

  std::vector<VariablePtr> OutputVariables() const override;
  std::string Label() const override;

 private:
  std::vector<VariablePtr> group_keys_;
  std::vector<Aggregation> aggregations_;
  AggregationStep step_;
};

enum class JoinKind { kInner, kLeft, kCross };

const char* JoinKindToString(JoinKind kind);

/// Distribution strategy chosen per session properties (Section XII.A): the
/// build side is either broadcast to every probe task or both sides are
/// hash-partitioned.
enum class JoinDistribution { kBroadcast, kPartitioned };

class JoinNode final : public PlanNode {
 public:
  struct EquiClause {
    VariablePtr left;
    VariablePtr right;
  };

  JoinNode(int id, JoinKind kind, PlanNodePtr left, PlanNodePtr right,
           std::vector<EquiClause> criteria, ExprPtr filter)
      : PlanNode(PlanNodeKind::kJoin, id, {std::move(left), std::move(right)}),
        join_kind_(kind),
        criteria_(std::move(criteria)),
        filter_(std::move(filter)) {}

  JoinKind join_kind() const { return join_kind_; }
  const std::vector<EquiClause>& criteria() const { return criteria_; }
  const ExprPtr& filter() const { return filter_; }
  JoinDistribution distribution() const { return distribution_; }
  void set_distribution(JoinDistribution d) { distribution_ = d; }

  std::vector<VariablePtr> OutputVariables() const override;
  std::string Label() const override;

 private:
  JoinKind join_kind_;
  std::vector<EquiClause> criteria_;
  ExprPtr filter_;  // residual non-equi condition; may be null
  JoinDistribution distribution_ = JoinDistribution::kBroadcast;
};

struct OrderingTerm {
  VariablePtr variable;
  bool ascending = true;
};

class SortNode final : public PlanNode {
 public:
  SortNode(int id, PlanNodePtr source, std::vector<OrderingTerm> ordering)
      : PlanNode(PlanNodeKind::kSort, id, {std::move(source)}),
        ordering_(std::move(ordering)) {}

  const std::vector<OrderingTerm>& ordering() const { return ordering_; }
  std::vector<VariablePtr> OutputVariables() const override {
    return sources()[0]->OutputVariables();
  }
  std::string Label() const override;

 private:
  std::vector<OrderingTerm> ordering_;
};

class TopNNode final : public PlanNode {
 public:
  TopNNode(int id, PlanNodePtr source, std::vector<OrderingTerm> ordering,
           int64_t count, bool partial)
      : PlanNode(PlanNodeKind::kTopN, id, {std::move(source)}),
        ordering_(std::move(ordering)),
        count_(count),
        partial_(partial) {}

  const std::vector<OrderingTerm>& ordering() const { return ordering_; }
  int64_t count() const { return count_; }
  bool partial() const { return partial_; }
  std::vector<VariablePtr> OutputVariables() const override {
    return sources()[0]->OutputVariables();
  }
  std::string Label() const override;

 private:
  std::vector<OrderingTerm> ordering_;
  int64_t count_;
  bool partial_;
};

class LimitNode final : public PlanNode {
 public:
  LimitNode(int id, PlanNodePtr source, int64_t count, bool partial)
      : PlanNode(PlanNodeKind::kLimit, id, {std::move(source)}),
        count_(count),
        partial_(partial) {}

  int64_t count() const { return count_; }
  bool partial() const { return partial_; }
  std::vector<VariablePtr> OutputVariables() const override {
    return sources()[0]->OutputVariables();
  }
  std::string Label() const override;

 private:
  int64_t count_;
  bool partial_;
};

/// Root of every query plan: names the result columns.
class OutputNode final : public PlanNode {
 public:
  OutputNode(int id, PlanNodePtr source, std::vector<std::string> column_names,
             std::vector<VariablePtr> outputs)
      : PlanNode(PlanNodeKind::kOutput, id, {std::move(source)}),
        column_names_(std::move(column_names)),
        outputs_(std::move(outputs)) {}

  const std::vector<std::string>& column_names() const { return column_names_; }
  std::vector<VariablePtr> OutputVariables() const override { return outputs_; }
  std::string Label() const override;

 private:
  std::vector<std::string> column_names_;
  std::vector<VariablePtr> outputs_;
};

/// How a fragment's output pages are routed into its exchange: gathered into
/// a single partition (one consuming task) or hash-partitioned on a set of
/// key columns (one consuming task per partition — partitioned joins and
/// final aggregations).
struct PartitioningScheme {
  enum class Kind { kGather, kHash };

  Kind kind = Kind::kGather;
  /// Partitioning columns (join keys / group-by keys); empty for gather.
  std::vector<VariablePtr> hash_keys;

  static PartitioningScheme Gather() { return PartitioningScheme(); }
  static PartitioningScheme Hash(std::vector<VariablePtr> keys) {
    PartitioningScheme scheme;
    scheme.kind = Kind::kHash;
    scheme.hash_keys = std::move(keys);
    return scheme;
  }

  std::string ToString() const;
};

/// Reads the output of another fragment through an exchange — the cut point
/// introduced by the fragmenter. `source_partitioning` records how the
/// upstream fragment partitioned its output: kHash means each consuming task
/// reads its own partition of the exchange; kGather means partition 0.
class RemoteSourceNode final : public PlanNode {
 public:
  RemoteSourceNode(int id, int fragment_id, std::vector<VariablePtr> outputs,
                   PartitioningScheme::Kind source_partitioning =
                       PartitioningScheme::Kind::kGather)
      : PlanNode(PlanNodeKind::kRemoteSource, id, {}),
        fragment_id_(fragment_id),
        outputs_(std::move(outputs)),
        source_partitioning_(source_partitioning) {}

  int fragment_id() const { return fragment_id_; }
  PartitioningScheme::Kind source_partitioning() const {
    return source_partitioning_;
  }
  void set_source_partitioning(PartitioningScheme::Kind kind) {
    source_partitioning_ = kind;
  }
  std::vector<VariablePtr> OutputVariables() const override { return outputs_; }
  std::string Label() const override;

 private:
  int fragment_id_;
  std::vector<VariablePtr> outputs_;
  PartitioningScheme::Kind source_partitioning_;
};

}  // namespace presto

#endif  // PRESTO_PLANNER_PLAN_H_
