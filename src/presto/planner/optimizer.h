#ifndef PRESTO_PLANNER_OPTIMIZER_H_
#define PRESTO_PLANNER_OPTIMIZER_H_

#include "presto/connector/connector.h"
#include "presto/expr/function_registry.h"
#include "presto/planner/plan.h"
#include "presto/planner/session.h"

namespace presto {

/// Rule-based optimizer ("optimizers run several rounds of optimizations,
/// and finally generate a physical plan"). Rules, in order:
///
///   1. Geospatial join rewrite (Figure 13): an st_contains join becomes
///      build_geo_index (QuadTree built on the fly) + geo_contains.
///   2. Filter-through-join pushdown: single-side conjuncts move below the
///      join.
///   3. Projection pushdown + nested column pruning: scans read only
///      referenced columns / struct leaves.
///   4. Predicate pushdown into connectors (negotiated per connector).
///   5. Aggregation pushdown into connectors (Druid-style, Section IV.B);
///      connector results are partial aggregates finalized by the engine.
///   6. Limit pushdown into connectors.
///   7. Sort+Limit fusion into TopN.
///   8. Join distribution selection from the session property
///      join_distribution_type (Section XII.A).
class Optimizer {
 public:
  Optimizer(const CatalogRegistry* catalogs, const Session* session,
            PlanIdAllocator* ids,
            FunctionRegistry* functions = &FunctionRegistry::Default())
      : catalogs_(catalogs), session_(session), ids_(ids), functions_(functions) {}

  Result<PlanNodePtr> Optimize(PlanNodePtr plan);

 private:
  Result<PlanNodePtr> RewriteGeoJoins(PlanNodePtr node,
                                      const std::map<std::string, int>& var_uses);
  Result<PlanNodePtr> PushFiltersThroughJoins(PlanNodePtr node);
  Status DeriveScanColumns(const PlanNodePtr& root);
  Result<PlanNodePtr> PushPredicatesIntoScans(PlanNodePtr node);
  Result<PlanNodePtr> PushAggregationsIntoScans(PlanNodePtr node);
  Result<PlanNodePtr> PushLimitsIntoScans(PlanNodePtr node);
  Result<PlanNodePtr> FuseTopN(PlanNodePtr node);
  void SelectJoinDistribution(const PlanNodePtr& node);
  Status FinalizeScans(const PlanNodePtr& node);

  const CatalogRegistry* catalogs_;
  const Session* session_;
  PlanIdAllocator* ids_;
  FunctionRegistry* functions_;
};

}  // namespace presto

#endif  // PRESTO_PLANNER_OPTIMIZER_H_
