#include "presto/sql/lexer.h"

#include <cctype>

namespace presto {
namespace sql {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto peek = [&](size_t offset = 0) -> char {
    return i + offset < sql.size() ? sql[i + offset] : '\0';
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comments -------------------------------------------------------------
    if (c == '-' && peek(1) == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    // -- identifiers / keywords ------------------------------------------------
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                                sql[i] == '_')) {
        ++i;
      }
      token.kind = TokenKind::kIdentifier;
      token.text = sql.substr(start, i - start);
      token.upper = token.text;
      for (char& ch : token.upper) ch = static_cast<char>(std::toupper(ch));
      tokens.push_back(std::move(token));
      continue;
    }
    // -- numbers ----------------------------------------------------------------
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool is_double = false;
      while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < sql.size() && sql[i] == '.') {
        is_double = true;
        ++i;
        while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < sql.size() && (sql[i] == 'e' || sql[i] == 'E')) {
        is_double = true;
        ++i;
        if (i < sql.size() && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      token.kind = is_double ? TokenKind::kDouble : TokenKind::kInteger;
      token.text = sql.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    // -- string literals -----------------------------------------------------------
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (peek(1) == '\'') {  // '' escapes a quote
            value += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value += sql[i++];
      }
      if (!closed) {
        return Status::SyntaxError("unterminated string literal at offset " +
                                   std::to_string(token.position));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // -- operators ----------------------------------------------------------------
    auto two = std::string() + c + peek(1);
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=" || two == "->") {
      token.kind = TokenKind::kOperator;
      token.text = two == "!=" ? "<>" : two;
      i += 2;
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::string("=<>+-*/%(),.;").find(c) != std::string::npos) {
      token.kind = TokenKind::kOperator;
      token.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(token));
      continue;
    }
    return Status::SyntaxError(std::string("unexpected character '") + c +
                               "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = sql.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sql
}  // namespace presto
