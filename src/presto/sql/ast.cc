#include "presto/sql/ast.h"

namespace presto {
namespace sql {

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kIdentifier: {
      std::string out;
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += ".";
        out += parts[i];
      }
      return out;
    }
    case Kind::kCall: {
      std::string out = call_name + "(";
      if (distinct_arg) out += "DISTINCT ";
      if (star_arg) out += "*";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i]->ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kBinary:
      return "(" + args[0]->ToString() + " " + op + " " + args[1]->ToString() + ")";
    case Kind::kUnary:
      return op + "(" + args[0]->ToString() + ")";
    case Kind::kIsNull:
      return "(" + args[0]->ToString() + (negated ? " IS NOT NULL)" : " IS NULL)");
    case Kind::kIn: {
      std::string out = "(" + args[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) out += ", ";
        out += args[i]->ToString();
      }
      out += "))";
      return out;
    }
    case Kind::kBetween:
      return "(" + args[0]->ToString() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             args[1]->ToString() + " AND " + args[2]->ToString() + ")";
    case Kind::kCast:
      return "CAST(" + args[0]->ToString() + " AS " + cast_type->ToString() + ")";
    case Kind::kLambda: {
      std::string out = "(";
      for (size_t i = 0; i < lambda_params.size(); ++i) {
        if (i > 0) out += ", ";
        out += lambda_params[i];
      }
      out += ") -> " + args[0]->ToString();
      return out;
    }
  }
  return "?";
}

}  // namespace sql
}  // namespace presto
