#include "presto/sql/parser.h"

#include <cstdlib>

#include "presto/sql/lexer.h"

namespace presto {
namespace sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    ASSIGN_OR_RETURN(Query query, ParseSelect());
    ConsumeOperator(";");
    if (!AtEnd()) return Err("unexpected trailing input");
    return query;
  }

  Result<Statement> ParseStatement() {
    Statement statement;
    if (ConsumeKeyword("EXPLAIN")) {
      statement.kind = ConsumeKeyword("ANALYZE")
                           ? Statement::Kind::kExplainAnalyze
                           : Statement::Kind::kExplain;
    }
    ASSIGN_OR_RETURN(statement.query, ParseSelect());
    ConsumeOperator(";");
    if (!AtEnd()) return Err("unexpected trailing input");
    return statement;
  }

  Result<AstExprPtr> ParseStandaloneExpression() {
    ASSIGN_OR_RETURN(AstExprPtr expr, ParseExpr());
    if (!AtEnd()) return Err("unexpected trailing input");
    return expr;
  }

 private:
  // -- token helpers -----------------------------------------------------------
  const Token& Peek(size_t offset = 0) const {
    size_t index = std::min(pos_ + offset, tokens_.size() - 1);
    return tokens_[index];
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const std::string& keyword, size_t offset = 0) const {
    const Token& t = Peek(offset);
    return t.kind == TokenKind::kIdentifier && t.upper == keyword;
  }
  bool ConsumeKeyword(const std::string& keyword) {
    if (PeekKeyword(keyword)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& keyword) {
    if (!ConsumeKeyword(keyword)) return Err("expected " + keyword);
    return Status::OK();
  }
  bool PeekOperator(const std::string& op, size_t offset = 0) const {
    const Token& t = Peek(offset);
    return t.kind == TokenKind::kOperator && t.text == op;
  }
  bool ConsumeOperator(const std::string& op) {
    if (PeekOperator(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectOperator(const std::string& op) {
    if (!ConsumeOperator(op)) return Err("expected '" + op + "'");
    return Status::OK();
  }

  Status Err(const std::string& message) const {
    return Status::SyntaxError(message + " at offset " +
                               std::to_string(Peek().position) +
                               (Peek().kind == TokenKind::kEnd
                                    ? " (end of input)"
                                    : " near '" + Peek().text + "'"));
  }

  static bool IsReserved(const std::string& upper) {
    static const char* kReserved[] = {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "LIMIT",  "JOIN",  "INNER", "LEFT",   "CROSS", "ON",     "AS",
        "AND",    "OR",    "NOT",   "IN",     "IS",    "NULL",   "LIKE",
        "BETWEEN", "CAST", "ASC",   "DESC",   "TRUE",  "FALSE"};
    for (const char* k : kReserved) {
      if (upper == k) return true;
    }
    return false;
  }

  Result<std::string> ParseIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier || IsReserved(Peek().upper)) {
      return Err("expected identifier");
    }
    return Advance().text;
  }

  // -- query ----------------------------------------------------------------------
  Result<Query> ParseSelect() {
    RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    Query query;
    query.distinct = ConsumeKeyword("DISTINCT");
    do {
      ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      query.items.push_back(std::move(item));
    } while (ConsumeOperator(","));

    RETURN_IF_ERROR(ExpectKeyword("FROM"));
    ASSIGN_OR_RETURN(query.from, ParseTableRef());

    while (true) {
      JoinClause join;
      if (ConsumeKeyword("JOIN") ||
          (PeekKeyword("INNER") && PeekKeyword("JOIN", 1) &&
           (ConsumeKeyword("INNER"), ConsumeKeyword("JOIN")))) {
        join.kind = JoinClause::Kind::kInner;
      } else if (PeekKeyword("LEFT")) {
        ConsumeKeyword("LEFT");
        ConsumeKeyword("OUTER");
        RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        join.kind = JoinClause::Kind::kLeft;
      } else if (PeekKeyword("CROSS")) {
        ConsumeKeyword("CROSS");
        RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        join.kind = JoinClause::Kind::kCross;
      } else {
        break;
      }
      ASSIGN_OR_RETURN(join.table, ParseTableRef());
      if (join.kind != JoinClause::Kind::kCross) {
        RETURN_IF_ERROR(ExpectKeyword("ON"));
        ASSIGN_OR_RETURN(join.condition, ParseExpr());
      }
      query.joins.push_back(std::move(join));
    }

    if (ConsumeKeyword("WHERE")) {
      ASSIGN_OR_RETURN(query.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        ASSIGN_OR_RETURN(AstExprPtr key, ParseExpr());
        query.group_by.push_back(std::move(key));
      } while (ConsumeOperator(","));
    }
    if (ConsumeKeyword("HAVING")) {
      ASSIGN_OR_RETURN(query.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        } else {
          ConsumeKeyword("ASC");
        }
        query.order_by.push_back(std::move(item));
      } while (ConsumeOperator(","));
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) return Err("expected LIMIT count");
      query.limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    return query;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (ConsumeOperator("*")) {
      item.star = true;
      return item;
    }
    // alias.* form
    if (Peek().kind == TokenKind::kIdentifier && !IsReserved(Peek().upper) &&
        PeekOperator(".", 1) && PeekOperator("*", 2)) {
      item.star = true;
      item.star_qualifier = Advance().text;
      ConsumeOperator(".");
      ConsumeOperator("*");
      return item;
    }
    ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (ConsumeKeyword("AS")) {
      ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
    } else if (Peek().kind == TokenKind::kIdentifier && !IsReserved(Peek().upper)) {
      item.alias = Advance().text;
    }
    return item;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    ASSIGN_OR_RETURN(std::string first, ParseIdentifier());
    ref.name_parts.push_back(std::move(first));
    while (PeekOperator(".")) {
      // Lookahead: only treat as part of the name while parts < 3.
      if (ref.name_parts.size() >= 3) break;
      ConsumeOperator(".");
      ASSIGN_OR_RETURN(std::string part, ParseIdentifier());
      ref.name_parts.push_back(std::move(part));
    }
    if (ConsumeKeyword("AS")) {
      ASSIGN_OR_RETURN(ref.alias, ParseIdentifier());
    } else if (Peek().kind == TokenKind::kIdentifier && !IsReserved(Peek().upper)) {
      ref.alias = Advance().text;
    } else {
      ref.alias = ref.name_parts.back();
    }
    return ref;
  }

  // -- expressions (precedence climbing) ------------------------------------------
  Result<AstExprPtr> ParseExpr() { return ParseOr(); }

  Result<AstExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(AstExprPtr left, ParseAnd());
    while (ConsumeKeyword("OR")) {
      ASSIGN_OR_RETURN(AstExprPtr right, ParseAnd());
      left = MakeBinary("OR", std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(AstExprPtr left, ParseNot());
    while (ConsumeKeyword("AND")) {
      ASSIGN_OR_RETURN(AstExprPtr right, ParseNot());
      left = MakeBinary("AND", std::move(left), std::move(right));
    }
    return left;
  }

  Result<AstExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      ASSIGN_OR_RETURN(AstExprPtr inner, ParseNot());
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kUnary;
      expr->op = "NOT";
      expr->args.push_back(std::move(inner));
      return AstExprPtr(expr);
    }
    return ParseComparison();
  }

  Result<AstExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(AstExprPtr left, ParseAdditive());
    // IS [NOT] NULL
    if (PeekKeyword("IS")) {
      ConsumeKeyword("IS");
      bool negated = ConsumeKeyword("NOT");
      RETURN_IF_ERROR(ExpectKeyword("NULL"));
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kIsNull;
      expr->negated = negated;
      expr->args.push_back(std::move(left));
      return AstExprPtr(expr);
    }
    bool negated = false;
    if (PeekKeyword("NOT") &&
        (PeekKeyword("IN", 1) || PeekKeyword("LIKE", 1) || PeekKeyword("BETWEEN", 1))) {
      ConsumeKeyword("NOT");
      negated = true;
    }
    if (ConsumeKeyword("IN")) {
      RETURN_IF_ERROR(ExpectOperator("("));
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kIn;
      expr->negated = negated;
      expr->args.push_back(std::move(left));
      do {
        ASSIGN_OR_RETURN(AstExprPtr item, ParseExpr());
        expr->args.push_back(std::move(item));
      } while (ConsumeOperator(","));
      RETURN_IF_ERROR(ExpectOperator(")"));
      return AstExprPtr(expr);
    }
    if (ConsumeKeyword("LIKE")) {
      ASSIGN_OR_RETURN(AstExprPtr pattern, ParseAdditive());
      AstExprPtr like = MakeBinary("LIKE", std::move(left), std::move(pattern));
      if (!negated) return like;
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kUnary;
      expr->op = "NOT";
      expr->args.push_back(std::move(like));
      return AstExprPtr(expr);
    }
    if (ConsumeKeyword("BETWEEN")) {
      ASSIGN_OR_RETURN(AstExprPtr lo, ParseAdditive());
      RETURN_IF_ERROR(ExpectKeyword("AND"));
      ASSIGN_OR_RETURN(AstExprPtr hi, ParseAdditive());
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kBetween;
      expr->negated = negated;
      expr->args = {std::move(left), std::move(lo), std::move(hi)};
      return AstExprPtr(expr);
    }
    for (const char* op : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (ConsumeOperator(op)) {
        ASSIGN_OR_RETURN(AstExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<AstExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(AstExprPtr left, ParseMultiplicative());
    while (true) {
      if (ConsumeOperator("+")) {
        ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
        left = MakeBinary("+", std::move(left), std::move(right));
      } else if (ConsumeOperator("-")) {
        ASSIGN_OR_RETURN(AstExprPtr right, ParseMultiplicative());
        left = MakeBinary("-", std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<AstExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(AstExprPtr left, ParseUnary());
    while (true) {
      if (ConsumeOperator("*")) {
        ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
        left = MakeBinary("*", std::move(left), std::move(right));
      } else if (ConsumeOperator("/")) {
        ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
        left = MakeBinary("/", std::move(left), std::move(right));
      } else if (ConsumeOperator("%")) {
        ASSIGN_OR_RETURN(AstExprPtr right, ParseUnary());
        left = MakeBinary("%", std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<AstExprPtr> ParseUnary() {
    if (ConsumeOperator("-")) {
      ASSIGN_OR_RETURN(AstExprPtr inner, ParseUnary());
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kUnary;
      expr->op = "-";
      expr->args.push_back(std::move(inner));
      return AstExprPtr(expr);
    }
    return ParsePrimary();
  }

  Result<AstExprPtr> ParsePrimary() {
    const Token& t = Peek();
    // literals
    if (t.kind == TokenKind::kInteger) {
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kLiteral;
      expr->literal = Value::Int(std::strtoll(Advance().text.c_str(), nullptr, 10));
      expr->literal_type = Type::Bigint();
      return AstExprPtr(expr);
    }
    if (t.kind == TokenKind::kDouble) {
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kLiteral;
      expr->literal = Value::Double(std::strtod(Advance().text.c_str(), nullptr));
      expr->literal_type = Type::Double();
      return AstExprPtr(expr);
    }
    if (t.kind == TokenKind::kString) {
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kLiteral;
      expr->literal = Value::String(Advance().text);
      expr->literal_type = Type::Varchar();
      return AstExprPtr(expr);
    }
    if (PeekKeyword("TRUE") || PeekKeyword("FALSE")) {
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kLiteral;
      expr->literal = Value::Bool(Advance().upper == "TRUE");
      expr->literal_type = Type::Boolean();
      return AstExprPtr(expr);
    }
    if (ConsumeKeyword("NULL")) {
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kLiteral;
      expr->literal = Value::Null();
      expr->literal_type = Type::Bigint();  // untyped NULL defaults
      return AstExprPtr(expr);
    }
    // CAST(expr AS TYPE)
    if (PeekKeyword("CAST")) {
      ConsumeKeyword("CAST");
      RETURN_IF_ERROR(ExpectOperator("("));
      ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
      RETURN_IF_ERROR(ExpectKeyword("AS"));
      ASSIGN_OR_RETURN(TypePtr type, ParseTypeName());
      RETURN_IF_ERROR(ExpectOperator(")"));
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kCast;
      expr->cast_type = std::move(type);
      expr->args.push_back(std::move(inner));
      return AstExprPtr(expr);
    }
    // parenthesized expression OR lambda (x) -> ... OR (x, y) -> ...
    if (PeekOperator("(")) {
      // Try lambda: (ident[, ident...]) ->
      size_t save = pos_;
      ConsumeOperator("(");
      std::vector<std::string> params;
      bool lambda = true;
      while (true) {
        if (Peek().kind != TokenKind::kIdentifier || IsReserved(Peek().upper)) {
          lambda = false;
          break;
        }
        params.push_back(Advance().text);
        if (ConsumeOperator(",")) continue;
        if (ConsumeOperator(")")) break;
        lambda = false;
        break;
      }
      if (lambda && PeekOperator("->")) {
        ConsumeOperator("->");
        ASSIGN_OR_RETURN(AstExprPtr body, ParseExpr());
        auto expr = std::make_shared<AstExpr>();
        expr->kind = AstExpr::Kind::kLambda;
        expr->lambda_params = std::move(params);
        expr->args.push_back(std::move(body));
        return AstExprPtr(expr);
      }
      pos_ = save;
      ConsumeOperator("(");
      ASSIGN_OR_RETURN(AstExprPtr inner, ParseExpr());
      RETURN_IF_ERROR(ExpectOperator(")"));
      return inner;
    }
    // identifier chain / function call / bare-identifier lambda `x -> ...`
    if (t.kind == TokenKind::kIdentifier && !IsReserved(t.upper)) {
      // x -> body
      if (PeekOperator("->", 1)) {
        std::string param = Advance().text;
        ConsumeOperator("->");
        ASSIGN_OR_RETURN(AstExprPtr body, ParseExpr());
        auto expr = std::make_shared<AstExpr>();
        expr->kind = AstExpr::Kind::kLambda;
        expr->lambda_params = {std::move(param)};
        expr->args.push_back(std::move(body));
        return AstExprPtr(expr);
      }
      // function call
      if (PeekOperator("(", 1)) {
        std::string name = Advance().text;
        for (char& c : name) c = static_cast<char>(std::tolower(c));
        ConsumeOperator("(");
        auto expr = std::make_shared<AstExpr>();
        expr->kind = AstExpr::Kind::kCall;
        expr->call_name = std::move(name);
        expr->distinct_arg = ConsumeKeyword("DISTINCT");
        if (ConsumeOperator("*")) {
          expr->star_arg = true;
          RETURN_IF_ERROR(ExpectOperator(")"));
          return AstExprPtr(expr);
        }
        if (!ConsumeOperator(")")) {
          do {
            ASSIGN_OR_RETURN(AstExprPtr arg, ParseExpr());
            expr->args.push_back(std::move(arg));
          } while (ConsumeOperator(","));
          RETURN_IF_ERROR(ExpectOperator(")"));
        }
        return AstExprPtr(expr);
      }
      // identifier chain a.b.c
      auto expr = std::make_shared<AstExpr>();
      expr->kind = AstExpr::Kind::kIdentifier;
      expr->parts.push_back(Advance().text);
      while (PeekOperator(".") && Peek(1).kind == TokenKind::kIdentifier &&
             !IsReserved(Peek(1).upper)) {
        ConsumeOperator(".");
        expr->parts.push_back(Advance().text);
      }
      return AstExprPtr(expr);
    }
    return Err("expected expression");
  }

  Result<TypePtr> ParseTypeName() {
    if (Peek().kind != TokenKind::kIdentifier) return Err("expected type name");
    std::string name = Advance().upper;
    auto parsed = Type::Parse(name);
    if (!parsed.ok()) return Err("unknown type " + name);
    return *parsed;
  }

  static AstExprPtr MakeBinary(const std::string& op, AstExprPtr left,
                               AstExprPtr right) {
    auto expr = std::make_shared<AstExpr>();
    expr->kind = AstExpr::Kind::kBinary;
    expr->op = op;
    expr->args = {std::move(left), std::move(right)};
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseQuery();
}

Result<Statement> ParseStatement(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return Parser(std::move(tokens)).ParseStatement();
}

Result<AstExprPtr> ParseExpression(const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  return Parser(std::move(tokens)).ParseStandaloneExpression();
}

}  // namespace sql
}  // namespace presto
