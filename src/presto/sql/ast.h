#ifndef PRESTO_SQL_AST_H_
#define PRESTO_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "presto/types/type.h"
#include "presto/types/value.h"

namespace presto {
namespace sql {

struct AstExpr;
using AstExprPtr = std::shared_ptr<AstExpr>;

/// Untyped abstract-syntax-tree expression produced by the parser; the
/// analyzer resolves it into a typed RowExpression.
struct AstExpr {
  enum class Kind {
    kLiteral,     // literal / literal_type
    kIdentifier,  // parts: a.b.c
    kCall,        // call_name(args...), star_arg for count(*)
    kBinary,      // op in {OR, AND, =, <>, <, <=, >, >=, +, -, *, /, %, LIKE}
    kUnary,       // op in {NOT, -}
    kIsNull,      // args[0] IS [NOT] NULL (negated)
    kIn,          // args[0] [NOT] IN (args[1..])
    kBetween,     // args[0] BETWEEN args[1] AND args[2] (negated)
    kCast,        // CAST(args[0] AS cast_type)
    kLambda,      // (params) -> args[0]
  };

  Kind kind = Kind::kLiteral;

  Value literal;
  TypePtr literal_type;

  std::vector<std::string> parts;

  std::string call_name;
  bool star_arg = false;      // count(*)
  bool distinct_arg = false;  // count(DISTINCT x)

  std::string op;
  std::vector<AstExprPtr> args;

  TypePtr cast_type;
  std::vector<std::string> lambda_params;
  bool negated = false;

  std::string ToString() const;
};

struct TableRef {
  std::vector<std::string> name_parts;  // [table] | [schema, table] | [cat, schema, table]
  std::string alias;                    // defaults to last name part
};

struct JoinClause {
  enum class Kind { kInner, kLeft, kCross };
  Kind kind = Kind::kInner;
  TableRef table;
  AstExprPtr condition;  // null for CROSS
};

struct SelectItem {
  AstExprPtr expr;             // null when star
  std::string alias;           // explicit AS alias
  bool star = false;           // SELECT * / SELECT t.*
  std::string star_qualifier;  // alias before .*, empty = all tables
};

struct OrderItem {
  AstExprPtr expr;
  bool ascending = true;
};

/// One SELECT query.
struct Query {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  AstExprPtr where;
  std::vector<AstExprPtr> group_by;  // integer literals act as ordinals
  AstExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
};

}  // namespace sql
}  // namespace presto

#endif  // PRESTO_SQL_AST_H_
