#ifndef PRESTO_SQL_ANALYZER_H_
#define PRESTO_SQL_ANALYZER_H_

#include "presto/connector/connector.h"
#include "presto/expr/function_registry.h"
#include "presto/planner/plan.h"
#include "presto/planner/session.h"
#include "presto/sql/ast.h"

namespace presto {
namespace sql {

/// Semantic analysis: resolves names against connector metadata
/// (catalog.schema.table), types expressions, resolves functions into
/// FunctionHandles, rewrites aggregations, and produces the initial logical
/// plan rooted at an OutputNode. ("Analyzer generates logical plan from
/// Abstract Syntax Tree", Section III.)
class Analyzer {
 public:
  Analyzer(const CatalogRegistry* catalogs, const Session* session,
           FunctionRegistry* functions = &FunctionRegistry::Default())
      : catalogs_(catalogs), session_(session), functions_(functions) {}

  Result<PlanNodePtr> Analyze(const Query& query);

  PlanIdAllocator& ids() { return ids_; }

 private:
  const CatalogRegistry* catalogs_;
  const Session* session_;
  FunctionRegistry* functions_;
  PlanIdAllocator ids_;
};

/// Convenience: parse + analyze.
Result<PlanNodePtr> AnalyzeSql(const std::string& sql,
                               const CatalogRegistry* catalogs,
                               const Session* session);

}  // namespace sql
}  // namespace presto

#endif  // PRESTO_SQL_ANALYZER_H_
