#ifndef PRESTO_SQL_PARSER_H_
#define PRESTO_SQL_PARSER_H_

#include "presto/sql/ast.h"

namespace presto {
namespace sql {

/// Parses one SELECT statement (an optional trailing ';' is allowed) into
/// its AST — the coordinator's first step: "Presto coordinator parses
/// incoming SQL and tokenizes it into an Abstract Syntax Tree".
Result<Query> ParseQuery(const std::string& sql);

/// A top-level statement: a query, optionally prefixed with EXPLAIN (render
/// the fragmented plan) or EXPLAIN ANALYZE (execute, then render the plan
/// annotated with actual per-operator runtime stats). EXPLAIN and ANALYZE
/// are contextual keywords — they stay usable as identifiers elsewhere.
struct Statement {
  enum class Kind { kQuery, kExplain, kExplainAnalyze };
  Kind kind = Kind::kQuery;
  Query query;
};

Result<Statement> ParseStatement(const std::string& sql);

/// Parses a standalone scalar expression (used by tests and utilities).
Result<AstExprPtr> ParseExpression(const std::string& text);

}  // namespace sql
}  // namespace presto

#endif  // PRESTO_SQL_PARSER_H_
