#ifndef PRESTO_SQL_PARSER_H_
#define PRESTO_SQL_PARSER_H_

#include "presto/sql/ast.h"

namespace presto {
namespace sql {

/// Parses one SELECT statement (an optional trailing ';' is allowed) into
/// its AST — the coordinator's first step: "Presto coordinator parses
/// incoming SQL and tokenizes it into an Abstract Syntax Tree".
Result<Query> ParseQuery(const std::string& sql);

/// Parses a standalone scalar expression (used by tests and utilities).
Result<AstExprPtr> ParseExpression(const std::string& text);

}  // namespace sql
}  // namespace presto

#endif  // PRESTO_SQL_PARSER_H_
