#include "presto/sql/analyzer.h"

#include <algorithm>
#include <map>
#include <set>

#include "presto/sql/parser.h"

namespace presto {
namespace sql {

namespace {

// One visible column: table alias + column name + the plan variable.
struct ScopeColumn {
  std::string table_alias;
  std::string column_name;
  VariablePtr variable;
};

struct Scope {
  std::vector<ScopeColumn> columns;

  void Add(const std::string& alias, const std::string& column, VariablePtr var) {
    columns.push_back(ScopeColumn{alias, column, std::move(var)});
  }
};

/// Wraps expr in a CAST when its type differs from target.
ExprPtr CoerceTo(ExprPtr expr, const TypePtr& target) {
  if (expr->type()->Equals(*target)) return expr;
  return SpecialFormExpression::Make(SpecialFormKind::kCast, target, {std::move(expr)});
}

/// Typed AST-to-RowExpression conversion within one scope.
class ExprAnalyzer {
 public:
  ExprAnalyzer(const Scope* scope, FunctionRegistry* functions,
               const std::map<std::string, VariablePtr>* substitutions)
      : scope_(scope), functions_(functions), substitutions_(substitutions) {}

  Result<ExprPtr> Analyze(const AstExpr& ast) {
    // Pre-resolved aggregate / group-key expressions are swapped for their
    // output variables.
    if (substitutions_ != nullptr) {
      auto it = substitutions_->find(ast.ToString());
      if (it != substitutions_->end()) return ExprPtr(it->second);
    }
    switch (ast.kind) {
      case AstExpr::Kind::kLiteral:
        return ConstantExpression::Make(ast.literal, ast.literal_type);
      case AstExpr::Kind::kIdentifier:
        return ResolveIdentifier(ast.parts);
      case AstExpr::Kind::kBinary:
        return AnalyzeBinary(ast);
      case AstExpr::Kind::kUnary:
        return AnalyzeUnary(ast);
      case AstExpr::Kind::kIsNull: {
        ASSIGN_OR_RETURN(ExprPtr inner, Analyze(*ast.args[0]));
        ExprPtr is_null = SpecialFormExpression::Make(
            SpecialFormKind::kIsNull, Type::Boolean(), {std::move(inner)});
        if (!ast.negated) return is_null;
        return SpecialFormExpression::Make(SpecialFormKind::kNot, Type::Boolean(),
                                           {std::move(is_null)});
      }
      case AstExpr::Kind::kIn: {
        ASSIGN_OR_RETURN(ExprPtr needle, Analyze(*ast.args[0]));
        std::vector<ExprPtr> args = {needle};
        for (size_t i = 1; i < ast.args.size(); ++i) {
          ASSIGN_OR_RETURN(ExprPtr item, Analyze(*ast.args[i]));
          args.push_back(CoerceTo(std::move(item), needle->type()));
        }
        ExprPtr in_expr = SpecialFormExpression::Make(SpecialFormKind::kIn,
                                                      Type::Boolean(),
                                                      std::move(args));
        if (!ast.negated) return in_expr;
        return SpecialFormExpression::Make(SpecialFormKind::kNot, Type::Boolean(),
                                           {std::move(in_expr)});
      }
      case AstExpr::Kind::kBetween: {
        // x BETWEEN lo AND hi  ->  x >= lo AND x <= hi
        ASSIGN_OR_RETURN(ExprPtr x, Analyze(*ast.args[0]));
        ASSIGN_OR_RETURN(ExprPtr lo, Analyze(*ast.args[1]));
        ASSIGN_OR_RETURN(ExprPtr hi, Analyze(*ast.args[2]));
        ASSIGN_OR_RETURN(ExprPtr ge, MakeCall("gte", {x, std::move(lo)}));
        ASSIGN_OR_RETURN(ExprPtr le, MakeCall("lte", {x, std::move(hi)}));
        ExprPtr both = SpecialFormExpression::Make(
            SpecialFormKind::kAnd, Type::Boolean(), {std::move(ge), std::move(le)});
        if (!ast.negated) return both;
        return SpecialFormExpression::Make(SpecialFormKind::kNot, Type::Boolean(),
                                           {std::move(both)});
      }
      case AstExpr::Kind::kCast: {
        ASSIGN_OR_RETURN(ExprPtr inner, Analyze(*ast.args[0]));
        return SpecialFormExpression::Make(SpecialFormKind::kCast, ast.cast_type,
                                           {std::move(inner)});
      }
      case AstExpr::Kind::kCall:
        return AnalyzeCall(ast);
      case AstExpr::Kind::kLambda:
        return Status::UserError(
            "lambda must be an argument of transform() or filter()");
    }
    return Status::Internal("unknown AST node");
  }

  /// Resolves a.b.c against the scope: longest table-alias/column prefix,
  /// remaining parts become struct field dereferences.
  Result<ExprPtr> ResolveIdentifier(const std::vector<std::string>& parts) {
    // Lambda parameters shadow everything.
    for (auto it = lambda_bindings_.rbegin(); it != lambda_bindings_.rend(); ++it) {
      if (it->first == parts[0]) {
        ExprPtr base = VariableReferenceExpression::Make(parts[0], it->second);
        return ApplyDereferences(std::move(base), parts, 1);
      }
    }
    if (scope_ == nullptr) {
      return Status::UserError("column '" + parts[0] + "' cannot be resolved");
    }
    // alias.column...
    if (parts.size() >= 2) {
      for (const ScopeColumn& col : scope_->columns) {
        if (col.table_alias == parts[0] && col.column_name == parts[1]) {
          return ApplyDereferences(ExprPtr(col.variable), parts, 2);
        }
      }
    }
    // column... (must be unambiguous)
    const ScopeColumn* found = nullptr;
    for (const ScopeColumn& col : scope_->columns) {
      if (col.column_name == parts[0]) {
        if (found != nullptr) {
          return Status::UserError("column '" + parts[0] + "' is ambiguous");
        }
        found = &col;
      }
    }
    if (found == nullptr) {
      std::string name;
      for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) name += ".";
        name += parts[i];
      }
      return Status::UserError("column '" + name + "' cannot be resolved");
    }
    return ApplyDereferences(ExprPtr(found->variable), parts, 1);
  }

  Result<ExprPtr> MakeCall(const std::string& name, std::vector<ExprPtr> args) {
    std::vector<TypePtr> arg_types;
    for (const ExprPtr& arg : args) arg_types.push_back(arg->type());
    ASSIGN_OR_RETURN(FunctionHandle handle,
                     functions_->ResolveScalar(name, arg_types));
    // Insert coercion casts where the declared parameter types differ.
    for (size_t i = 0; i < args.size(); ++i) {
      args[i] = CoerceTo(std::move(args[i]), handle.argument_types[i]);
    }
    return CallExpression::Make(std::move(handle), std::move(args));
  }

 private:
  static Result<ExprPtr> ApplyDereferences(ExprPtr base,
                                           const std::vector<std::string>& parts,
                                           size_t from) {
    ExprPtr expr = std::move(base);
    for (size_t i = from; i < parts.size(); ++i) {
      ASSIGN_OR_RETURN(expr,
                       SpecialFormExpression::MakeDereference(expr, parts[i]));
    }
    return expr;
  }

  Result<ExprPtr> AnalyzeBinary(const AstExpr& ast) {
    if (ast.op == "AND" || ast.op == "OR") {
      ASSIGN_OR_RETURN(ExprPtr left, Analyze(*ast.args[0]));
      ASSIGN_OR_RETURN(ExprPtr right, Analyze(*ast.args[1]));
      if (left->type()->kind() != TypeKind::kBoolean ||
          right->type()->kind() != TypeKind::kBoolean) {
        return Status::UserError(ast.op + " requires BOOLEAN operands");
      }
      return SpecialFormExpression::Make(
          ast.op == "AND" ? SpecialFormKind::kAnd : SpecialFormKind::kOr,
          Type::Boolean(), {std::move(left), std::move(right)});
    }
    static const std::map<std::string, std::string> kBinaryFns = {
        {"=", "eq"},  {"<>", "neq"}, {"<", "lt"},      {"<=", "lte"},
        {">", "gt"},  {">=", "gte"}, {"+", "plus"},    {"-", "minus"},
        {"*", "multiply"}, {"/", "divide"}, {"%", "modulus"}, {"LIKE", "like"}};
    auto fn = kBinaryFns.find(ast.op);
    if (fn == kBinaryFns.end()) {
      return Status::Internal("unknown binary operator " + ast.op);
    }
    ASSIGN_OR_RETURN(ExprPtr left, Analyze(*ast.args[0]));
    ASSIGN_OR_RETURN(ExprPtr right, Analyze(*ast.args[1]));
    return MakeCall(fn->second, {std::move(left), std::move(right)});
  }

  Result<ExprPtr> AnalyzeUnary(const AstExpr& ast) {
    ASSIGN_OR_RETURN(ExprPtr inner, Analyze(*ast.args[0]));
    if (ast.op == "NOT") {
      if (inner->type()->kind() != TypeKind::kBoolean) {
        return Status::UserError("NOT requires a BOOLEAN operand");
      }
      return SpecialFormExpression::Make(SpecialFormKind::kNot, Type::Boolean(),
                                         {std::move(inner)});
    }
    return MakeCall("negate", {std::move(inner)});
  }

  Result<ExprPtr> AnalyzeCall(const AstExpr& ast) {
    if (functions_->IsAggregateName(ast.call_name)) {
      return Status::UserError("aggregate function " + ast.call_name +
                               " is not allowed here");
    }
    // coalesce()/if() are special forms, not registry functions.
    if (ast.call_name == "coalesce") {
      if (ast.args.empty()) return Status::UserError("coalesce needs arguments");
      std::vector<ExprPtr> args;
      for (const AstExprPtr& arg : ast.args) {
        ASSIGN_OR_RETURN(ExprPtr analyzed, Analyze(*arg));
        args.push_back(std::move(analyzed));
      }
      TypePtr type = args[0]->type();
      for (size_t i = 1; i < args.size(); ++i) {
        args[i] = CoerceTo(std::move(args[i]), type);
      }
      return SpecialFormExpression::Make(SpecialFormKind::kCoalesce, type,
                                         std::move(args));
    }
    if (ast.call_name == "if") {
      if (ast.args.size() != 3) {
        return Status::UserError("if(condition, then, else) takes 3 arguments");
      }
      ASSIGN_OR_RETURN(ExprPtr cond, Analyze(*ast.args[0]));
      if (cond->type()->kind() != TypeKind::kBoolean) {
        return Status::UserError("if() condition must be BOOLEAN");
      }
      ASSIGN_OR_RETURN(ExprPtr then_expr, Analyze(*ast.args[1]));
      ASSIGN_OR_RETURN(ExprPtr else_expr, Analyze(*ast.args[2]));
      TypePtr type = then_expr->type();
      else_expr = CoerceTo(std::move(else_expr), type);
      return SpecialFormExpression::Make(
          SpecialFormKind::kIf, type,
          {std::move(cond), std::move(then_expr), std::move(else_expr)});
    }
    // Higher-order functions: infer the lambda parameter type from the array.
    if ((ast.call_name == "transform" || ast.call_name == "filter") &&
        ast.args.size() == 2 && ast.args[1]->kind == AstExpr::Kind::kLambda) {
      ASSIGN_OR_RETURN(ExprPtr array, Analyze(*ast.args[0]));
      if (array->type()->kind() != TypeKind::kArray) {
        return Status::UserError(ast.call_name + " expects an ARRAY argument");
      }
      const AstExpr& lambda_ast = *ast.args[1];
      if (lambda_ast.lambda_params.size() != 1) {
        return Status::UserError("lambda must take exactly one parameter");
      }
      TypePtr element_type = array->type()->element();
      lambda_bindings_.emplace_back(lambda_ast.lambda_params[0], element_type);
      auto body = Analyze(*lambda_ast.args[0]);
      lambda_bindings_.pop_back();
      RETURN_IF_ERROR(body.status());
      if (ast.call_name == "filter" &&
          (*body)->type()->kind() != TypeKind::kBoolean) {
        return Status::UserError("filter lambda must return BOOLEAN");
      }
      ExprPtr lambda = LambdaDefinitionExpression::Make(
          {lambda_ast.lambda_params[0]}, {element_type}, std::move(*body));
      TypePtr result_type = ast.call_name == "filter"
                                ? array->type()
                                : Type::Array(lambda->type());
      FunctionHandle handle{ast.call_name,
                            {array->type(), lambda->type()},
                            result_type};
      return CallExpression::Make(std::move(handle),
                                  {std::move(array), std::move(lambda)});
    }
    std::vector<ExprPtr> args;
    for (const AstExprPtr& arg : ast.args) {
      ASSIGN_OR_RETURN(ExprPtr analyzed, Analyze(*arg));
      args.push_back(std::move(analyzed));
    }
    return MakeCall(ast.call_name, std::move(args));
  }

  const Scope* scope_;
  FunctionRegistry* functions_;
  const std::map<std::string, VariablePtr>* substitutions_;
  std::vector<std::pair<std::string, TypePtr>> lambda_bindings_;
};

// Walks an AST collecting aggregate call nodes (deduplicated by ToString).
void CollectAggregates(const AstExpr& ast, FunctionRegistry* functions,
                       std::vector<const AstExpr*>* out,
                       std::set<std::string>* seen) {
  if (ast.kind == AstExpr::Kind::kCall &&
      functions->IsAggregateName(ast.call_name)) {
    if (seen->insert(ast.ToString()).second) out->push_back(&ast);
    return;  // no nested aggregates
  }
  for (const AstExprPtr& arg : ast.args) {
    CollectAggregates(*arg, functions, out, seen);
  }
}

}  // namespace

Result<PlanNodePtr> Analyzer::Analyze(const Query& query) {
  // ---- FROM / JOIN: build the base relation and scope. ----------------------
  Scope scope;
  auto make_scan = [&](const TableRef& ref) -> Result<PlanNodePtr> {
    std::string catalog = session_->default_catalog;
    std::string schema = session_->default_schema;
    std::string table;
    if (ref.name_parts.size() == 1) {
      table = ref.name_parts[0];
    } else if (ref.name_parts.size() == 2) {
      schema = ref.name_parts[0];
      table = ref.name_parts[1];
    } else {
      catalog = ref.name_parts[0];
      schema = ref.name_parts[1];
      table = ref.name_parts[2];
    }
    ASSIGN_OR_RETURN(Connector * connector, catalogs_->GetConnector(catalog));
    ASSIGN_OR_RETURN(TypePtr table_schema,
                     connector->GetTableSchema(schema, table));
    std::vector<VariablePtr> outputs;
    std::vector<std::string> column_names;
    for (size_t c = 0; c < table_schema->NumChildren(); ++c) {
      const std::string& column = table_schema->field_name(c);
      VariablePtr var = VariableReferenceExpression::Make(
          ids_.NextVariable(column), table_schema->child(c));
      scope.Add(ref.alias, column, var);
      outputs.push_back(std::move(var));
      column_names.push_back(column);
    }
    return PlanNodePtr(std::make_shared<TableScanNode>(
        ids_.NextId(), catalog, schema, table, table_schema, std::move(outputs),
        std::move(column_names)));
  };

  ASSIGN_OR_RETURN(PlanNodePtr plan, make_scan(query.from));
  std::set<std::string> aliases = {query.from.alias};

  for (const JoinClause& join : query.joins) {
    if (aliases.count(join.table.alias) > 0) {
      return Status::UserError("duplicate table alias: " + join.table.alias);
    }
    aliases.insert(join.table.alias);
    // Variables visible on the left side before this join.
    std::set<std::string> left_vars;
    for (const VariablePtr& v : plan->OutputVariables()) {
      left_vars.insert(v->name());
    }
    ASSIGN_OR_RETURN(PlanNodePtr right, make_scan(join.table));
    std::set<std::string> right_vars;
    for (const VariablePtr& v : right->OutputVariables()) {
      right_vars.insert(v->name());
    }

    JoinKind kind = join.kind == JoinClause::Kind::kLeft    ? JoinKind::kLeft
                    : join.kind == JoinClause::Kind::kCross ? JoinKind::kCross
                                                            : JoinKind::kInner;
    std::vector<JoinNode::EquiClause> criteria;
    ExprPtr residual;
    // Non-trivial equi keys (e.g. t.base.city_id) are pre-projected so the
    // join can run as a hash join instead of a nested loop.
    std::vector<ProjectNode::Assignment> left_synthetic, right_synthetic;
    if (join.condition != nullptr) {
      ExprAnalyzer expr_analyzer(&scope, functions_, nullptr);
      ASSIGN_OR_RETURN(ExprPtr condition, expr_analyzer.Analyze(*join.condition));
      if (condition->type()->kind() != TypeKind::kBoolean) {
        return Status::UserError("join condition must be BOOLEAN");
      }
      auto refs_side = [](const RowExpression& expr,
                          const std::set<std::string>& side) {
        std::vector<std::string> vars;
        CollectReferencedVariables(expr, &vars);
        if (vars.empty()) return false;
        for (const std::string& v : vars) {
          if (side.count(v) == 0) return false;
        }
        return true;
      };
      // Returns the key variable for one side of an equality, projecting the
      // expression into a synthetic column when it is not a bare variable.
      auto side_key = [&](const ExprPtr& expr,
                          std::vector<ProjectNode::Assignment>* synthetic) {
        if (expr->expression_kind() == ExpressionKind::kVariableReference) {
          return std::static_pointer_cast<const VariableReferenceExpression>(expr);
        }
        VariablePtr var = VariableReferenceExpression::Make(
            ids_.NextVariable("joinkey"), expr->type());
        synthetic->push_back({var, expr});
        return var;
      };
      std::vector<ExprPtr> conjuncts;
      FlattenConjuncts(condition, &conjuncts);
      std::vector<ExprPtr> residual_conjuncts;
      for (const ExprPtr& conjunct : conjuncts) {
        bool is_equi = false;
        if (conjunct->expression_kind() == ExpressionKind::kCall) {
          const auto& call = static_cast<const CallExpression&>(*conjunct);
          if (call.function_name() == "eq" && call.arguments().size() == 2) {
            const ExprPtr& a = call.arguments()[0];
            const ExprPtr& b = call.arguments()[1];
            if (refs_side(*a, left_vars) && refs_side(*b, right_vars)) {
              criteria.push_back(
                  {side_key(a, &left_synthetic), side_key(b, &right_synthetic)});
              is_equi = true;
            } else if (refs_side(*a, right_vars) && refs_side(*b, left_vars)) {
              criteria.push_back(
                  {side_key(b, &left_synthetic), side_key(a, &right_synthetic)});
              is_equi = true;
            }
          }
        }
        if (!is_equi) residual_conjuncts.push_back(conjunct);
      }
      residual = CombineConjuncts(std::move(residual_conjuncts));
    }
    auto add_synthetic = [&](PlanNodePtr side,
                             std::vector<ProjectNode::Assignment> synthetic) {
      if (synthetic.empty()) return side;
      std::vector<ProjectNode::Assignment> assignments;
      for (const VariablePtr& v : side->OutputVariables()) {
        assignments.push_back({v, ExprPtr(v)});
      }
      for (auto& a : synthetic) assignments.push_back(std::move(a));
      return PlanNodePtr(std::make_shared<ProjectNode>(ids_.NextId(), side,
                                                       std::move(assignments)));
    };
    plan = add_synthetic(plan, std::move(left_synthetic));
    right = add_synthetic(right, std::move(right_synthetic));
    plan = std::make_shared<JoinNode>(ids_.NextId(), kind, plan, right,
                                      std::move(criteria), std::move(residual));
  }

  // ---- WHERE -------------------------------------------------------------------
  if (query.where != nullptr) {
    ExprAnalyzer expr_analyzer(&scope, functions_, nullptr);
    ASSIGN_OR_RETURN(ExprPtr predicate, expr_analyzer.Analyze(*query.where));
    if (predicate->type()->kind() != TypeKind::kBoolean) {
      return Status::UserError("WHERE clause must be BOOLEAN");
    }
    plan = std::make_shared<FilterNode>(ids_.NextId(), plan, std::move(predicate));
  }

  // ---- Aggregation ----------------------------------------------------------------
  std::vector<const AstExpr*> aggregates;
  std::set<std::string> seen_aggs;
  for (const SelectItem& item : query.items) {
    if (item.expr != nullptr) {
      CollectAggregates(*item.expr, functions_, &aggregates, &seen_aggs);
    }
  }
  if (query.having != nullptr) {
    CollectAggregates(*query.having, functions_, &aggregates, &seen_aggs);
  }
  for (const OrderItem& item : query.order_by) {
    CollectAggregates(*item.expr, functions_, &aggregates, &seen_aggs);
  }

  bool has_aggregation = !aggregates.empty() || !query.group_by.empty();
  std::map<std::string, VariablePtr> substitutions;
  Scope post_scope;  // scope after aggregation (group keys resolvable by name)

  if (has_aggregation) {
    // Resolve GROUP BY items (ordinals refer to select items).
    std::vector<const AstExpr*> group_asts;
    for (const AstExprPtr& key : query.group_by) {
      const AstExpr* ast = key.get();
      if (ast->kind == AstExpr::Kind::kLiteral && ast->literal.is_int()) {
        int64_t ordinal = ast->literal.int_value();
        if (ordinal < 1 || ordinal > static_cast<int64_t>(query.items.size())) {
          return Status::UserError("GROUP BY ordinal out of range");
        }
        const SelectItem& item = query.items[ordinal - 1];
        if (item.star || item.expr == nullptr) {
          return Status::UserError("GROUP BY ordinal refers to *");
        }
        ast = item.expr.get();
      }
      group_asts.push_back(ast);
    }

    // Pre-projection: group keys and aggregate arguments become columns.
    ExprAnalyzer pre_analyzer(&scope, functions_, nullptr);
    std::vector<ProjectNode::Assignment> pre_assignments;
    std::vector<VariablePtr> group_vars;
    for (const AstExpr* ast : group_asts) {
      ASSIGN_OR_RETURN(ExprPtr expr, pre_analyzer.Analyze(*ast));
      VariablePtr var = VariableReferenceExpression::Make(
          ids_.NextVariable("groupkey"), expr->type());
      pre_assignments.push_back({var, std::move(expr)});
      group_vars.push_back(var);
      substitutions[ast->ToString()] = var;
      // Plain column group keys stay resolvable by name post-aggregation.
      if (ast->kind == AstExpr::Kind::kIdentifier) {
        post_scope.Add(ast->parts.size() >= 2 ? ast->parts[0] : "",
                       ast->parts.back(), var);
      }
    }
    std::vector<AggregateNode::Aggregation> agg_specs;
    for (const AstExpr* ast : aggregates) {
      std::vector<VariablePtr> arg_vars;
      std::vector<TypePtr> arg_types;
      if (!ast->star_arg) {
        for (const AstExprPtr& arg : ast->args) {
          ASSIGN_OR_RETURN(ExprPtr expr, pre_analyzer.Analyze(*arg));
          VariablePtr var = VariableReferenceExpression::Make(
              ids_.NextVariable("aggarg"), expr->type());
          pre_assignments.push_back({var, std::move(expr)});
          arg_types.push_back(var->type());
          arg_vars.push_back(std::move(var));
        }
      }
      std::string agg_name = ast->call_name;
      if (ast->distinct_arg) {
        if (agg_name != "count") {
          return Status::UserError("DISTINCT is only supported in count()");
        }
        agg_name = "count_distinct";
      }
      ASSIGN_OR_RETURN(FunctionHandle handle,
                       functions_->ResolveAggregate(agg_name, arg_types));
      // Insert coercions for the declared argument types.
      for (size_t i = 0; i < arg_vars.size(); ++i) {
        if (!arg_vars[i]->type()->Equals(*handle.argument_types[i])) {
          VariablePtr coerced = VariableReferenceExpression::Make(
              ids_.NextVariable("aggarg"), handle.argument_types[i]);
          pre_assignments.push_back(
              {coerced, CoerceTo(ExprPtr(arg_vars[i]), handle.argument_types[i])});
          arg_vars[i] = coerced;
        }
      }
      VariablePtr out_var = VariableReferenceExpression::Make(
          ids_.NextVariable(agg_name), handle.return_type);
      substitutions[ast->ToString()] = out_var;
      agg_specs.push_back({out_var, std::move(handle), std::move(arg_vars)});
    }
    plan = std::make_shared<ProjectNode>(ids_.NextId(), plan,
                                         std::move(pre_assignments));
    plan = std::make_shared<AggregateNode>(ids_.NextId(), plan,
                                           std::move(group_vars),
                                           std::move(agg_specs),
                                           AggregationStep::kSingle);
  }

  const Scope& select_scope = has_aggregation ? post_scope : scope;

  // ---- HAVING --------------------------------------------------------------------
  if (query.having != nullptr) {
    if (!has_aggregation) {
      return Status::UserError("HAVING requires GROUP BY or aggregates");
    }
    ExprAnalyzer having_analyzer(&select_scope, functions_, &substitutions);
    ASSIGN_OR_RETURN(ExprPtr predicate, having_analyzer.Analyze(*query.having));
    if (predicate->type()->kind() != TypeKind::kBoolean) {
      return Status::UserError("HAVING clause must be BOOLEAN");
    }
    plan = std::make_shared<FilterNode>(ids_.NextId(), plan, std::move(predicate));
  }

  // ---- SELECT list ------------------------------------------------------------------
  ExprAnalyzer select_analyzer(&select_scope, functions_, &substitutions);
  std::vector<ProjectNode::Assignment> select_assignments;
  std::vector<std::string> output_names;
  std::map<std::string, VariablePtr> select_aliases;  // alias/AST -> output var
  for (const SelectItem& item : query.items) {
    if (item.star) {
      if (has_aggregation) {
        return Status::UserError("SELECT * cannot be used with GROUP BY");
      }
      for (const ScopeColumn& col : scope.columns) {
        if (!item.star_qualifier.empty() && col.table_alias != item.star_qualifier) {
          continue;
        }
        VariablePtr out = VariableReferenceExpression::Make(
            ids_.NextVariable(col.column_name), col.variable->type());
        select_assignments.push_back({out, ExprPtr(col.variable)});
        output_names.push_back(col.column_name);
        // Star-expanded columns are ORDER BY-resolvable by (qualified) name.
        select_aliases.emplace(col.column_name, out);
        select_aliases.emplace(col.table_alias + "." + col.column_name, out);
      }
      continue;
    }
    ASSIGN_OR_RETURN(ExprPtr expr, select_analyzer.Analyze(*item.expr));
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == AstExpr::Kind::kIdentifier
                 ? item.expr->parts.back()
                 : "_col" + std::to_string(output_names.size());
    }
    VariablePtr out = VariableReferenceExpression::Make(ids_.NextVariable(name),
                                                        expr->type());
    select_assignments.push_back({out, std::move(expr)});
    output_names.push_back(name);
    if (!item.alias.empty()) select_aliases[item.alias] = out;
    select_aliases[item.expr->ToString()] = out;
  }
  plan = std::make_shared<ProjectNode>(ids_.NextId(), plan,
                                       select_assignments);

  // ---- DISTINCT: grouping on every select output ----------------------------------
  if (query.distinct) {
    std::vector<VariablePtr> distinct_keys;
    for (const ProjectNode::Assignment& a : select_assignments) {
      distinct_keys.push_back(a.output);
    }
    plan = std::make_shared<AggregateNode>(
        ids_.NextId(), plan, std::move(distinct_keys),
        std::vector<AggregateNode::Aggregation>{}, AggregationStep::kSingle);
  }

  // ---- ORDER BY ---------------------------------------------------------------------
  if (!query.order_by.empty()) {
    std::vector<OrderingTerm> ordering;
    for (const OrderItem& item : query.order_by) {
      VariablePtr var;
      // Ordinal?
      if (item.expr->kind == AstExpr::Kind::kLiteral && item.expr->literal.is_int()) {
        int64_t ordinal = item.expr->literal.int_value();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(select_assignments.size())) {
          return Status::UserError("ORDER BY ordinal out of range");
        }
        var = select_assignments[ordinal - 1].output;
      } else {
        auto alias_it = select_aliases.find(item.expr->ToString());
        if (alias_it != select_aliases.end()) {
          var = alias_it->second;
        } else {
          return Status::UserError(
              "ORDER BY expression must appear in the SELECT list: " +
              item.expr->ToString());
        }
      }
      ordering.push_back(OrderingTerm{std::move(var), item.ascending});
    }
    plan = std::make_shared<SortNode>(ids_.NextId(), plan, std::move(ordering));
  }

  // ---- LIMIT -----------------------------------------------------------------------
  if (query.limit >= 0) {
    plan = std::make_shared<LimitNode>(ids_.NextId(), plan, query.limit,
                                       /*partial=*/false);
  }

  // ---- Output ----------------------------------------------------------------------
  std::vector<VariablePtr> outputs;
  for (const ProjectNode::Assignment& a : select_assignments) {
    outputs.push_back(a.output);
  }
  return PlanNodePtr(std::make_shared<OutputNode>(
      ids_.NextId(), plan, std::move(output_names), std::move(outputs)));
}

Result<PlanNodePtr> AnalyzeSql(const std::string& sql,
                               const CatalogRegistry* catalogs,
                               const Session* session) {
  ASSIGN_OR_RETURN(Query query, ParseQuery(sql));
  Analyzer analyzer(catalogs, session);
  return analyzer.Analyze(query);
}

}  // namespace sql
}  // namespace presto
