#ifndef PRESTO_SQL_LEXER_H_
#define PRESTO_SQL_LEXER_H_

#include <string>
#include <vector>

#include "presto/common/status.h"

namespace presto {
namespace sql {

enum class TokenKind {
  kIdentifier,   // foo (keywords are identifiers with matching upper text)
  kInteger,      // 123
  kDouble,       // 1.5, .5, 2e3
  kString,       // 'abc' ('' escapes a quote)
  kOperator,     // = <> != <= >= < > + - * / % ( ) , . ->
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;      // raw text; identifiers also carry `upper`
  std::string upper;     // uppercase identifier text (keyword matching)
  size_t position = 0;   // byte offset for error messages
};

/// Tokenizes SQL text. Keywords are not distinguished from identifiers at
/// this level; the parser matches on the uppercase form.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sql
}  // namespace presto

#endif  // PRESTO_SQL_LEXER_H_
