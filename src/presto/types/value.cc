#include "presto/types/value.h"

#include "presto/common/hash.h"

namespace presto {

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  // NULLs first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Mixed numeric comparison.
  if ((is_int() || is_double()) && (other.is_int() || other.is_double())) {
    if (is_int() && other.is_int()) {
      if (int_value() < other.int_value()) return -1;
      if (int_value() > other.int_value()) return 1;
      return 0;
    }
    return CompareDoubles(AsDouble(), other.AsDouble());
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
  }
  if (is_string() && other.is_string()) {
    return string_value().compare(other.string_value());
  }
  if ((is_row() && other.is_row()) || (is_array() && other.is_array())) {
    const RowData& a = children();
    const RowData& b = other.children();
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c;
    }
    if (a.size() < b.size()) return -1;
    if (a.size() > b.size()) return 1;
    return 0;
  }
  if (is_map() && other.is_map()) {
    const MapData& a = map_entries();
    const MapData& b = other.map_entries();
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      int c = a[i].first.Compare(b[i].first);
      if (c != 0) return c;
      c = a[i].second.Compare(b[i].second);
      if (c != 0) return c;
    }
    if (a.size() < b.size()) return -1;
    if (a.size() > b.size()) return 1;
    return 0;
  }
  // Different kinds: order by variant index for a stable total order.
  return data_.index() < other.data_.index() ? -1 : 1;
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x5c5c5c5c5c5c5c5cULL;
  if (is_bool()) return HashMix64(bool_value() ? 1 : 2);
  if (is_int()) return HashMix64(static_cast<uint64_t>(int_value()));
  if (is_double()) {
    // Normalize -0.0 so it hashes like 0.0 (they compare equal).
    double d = double_value() == 0.0 ? 0.0 : double_value();
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(d));
    return HashMix64(bits);
  }
  if (is_string()) return HashString(string_value());
  uint64_t h = 0x1234abcd;
  if (is_map()) {
    for (const auto& [k, v] : map_entries()) {
      h = HashCombine(h, HashCombine(k.Hash(), v.Hash()));
    }
    return h;
  }
  for (const Value& child : children()) {
    h = HashCombine(h, child.Hash());
  }
  return h;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int()) return std::to_string(int_value());
  if (is_double()) {
    std::string s = std::to_string(double_value());
    return s;
  }
  if (is_string()) return "'" + string_value() + "'";
  std::string out;
  if (is_row()) {
    out = "ROW(";
    for (size_t i = 0; i < children().size(); ++i) {
      if (i > 0) out += ", ";
      out += children()[i].ToString();
    }
    out += ")";
    return out;
  }
  if (is_array()) {
    out = "ARRAY[";
    for (size_t i = 0; i < children().size(); ++i) {
      if (i > 0) out += ", ";
      out += children()[i].ToString();
    }
    out += "]";
    return out;
  }
  out = "MAP{";
  for (size_t i = 0; i < map_entries().size(); ++i) {
    if (i > 0) out += ", ";
    out += map_entries()[i].first.ToString();
    out += ": ";
    out += map_entries()[i].second.ToString();
  }
  out += "}";
  return out;
}

}  // namespace presto
