#ifndef PRESTO_TYPES_TYPE_H_
#define PRESTO_TYPES_TYPE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "presto/common/status.h"

namespace presto {

/// Kinds of SQL types supported by the engine. ROW models Presto's nested
/// struct columns (the paper's Section V workloads use structs nested 5+
/// levels deep); ARRAY and MAP cover the writer-benchmark datasets.
enum class TypeKind {
  kBoolean,
  kInteger,    // 32-bit
  kBigint,     // 64-bit
  kDouble,
  kVarchar,
  kTimestamp,  // millis since epoch, stored as int64
  kRow,
  kArray,
  kMap,
};

const char* TypeKindToString(TypeKind kind);

/// Whether values of this kind are stored in 64-bit integer slots.
inline bool IsIntegerLike(TypeKind kind) {
  return kind == TypeKind::kInteger || kind == TypeKind::kBigint ||
         kind == TypeKind::kTimestamp;
}

inline bool IsScalarKind(TypeKind kind) {
  return kind != TypeKind::kRow && kind != TypeKind::kArray &&
         kind != TypeKind::kMap;
}

class Type;
using TypePtr = std::shared_ptr<const Type>;

/// Immutable SQL type tree. Scalar types are shared singletons; complex
/// types hold child types (and field names for ROW).
class Type : public std::enable_shared_from_this<Type> {
 public:
  // -- Factories ------------------------------------------------------------
  static const TypePtr& Boolean();
  static const TypePtr& Integer();
  static const TypePtr& Bigint();
  static const TypePtr& Double();
  static const TypePtr& Varchar();
  static const TypePtr& Timestamp();
  static TypePtr Row(std::vector<std::string> names, std::vector<TypePtr> children);
  static TypePtr Array(TypePtr element);
  static TypePtr Map(TypePtr key, TypePtr value);

  /// Parses the textual form produced by ToString, e.g.
  /// "ROW(city_id BIGINT, tags ARRAY(VARCHAR))". Used by file footers.
  static Result<TypePtr> Parse(const std::string& text);

  TypeKind kind() const { return kind_; }
  bool IsScalar() const { return IsScalarKind(kind_); }

  size_t NumChildren() const { return children_.size(); }
  const TypePtr& child(size_t i) const { return children_[i]; }
  const std::vector<TypePtr>& children() const { return children_; }

  /// Field name of the i-th ROW child. Empty for non-ROW types.
  const std::string& field_name(size_t i) const { return names_[i]; }
  const std::vector<std::string>& field_names() const { return names_; }

  /// Index of the ROW field with the given name, if present.
  std::optional<size_t> FindField(const std::string& name) const;

  /// ARRAY element type. Requires kind()==kArray.
  const TypePtr& element() const { return children_[0]; }
  /// MAP key/value types. Requires kind()==kMap.
  const TypePtr& map_key() const { return children_[0]; }
  const TypePtr& map_value() const { return children_[1]; }

  bool Equals(const Type& other) const;
  std::string ToString() const;

 private:
  static TypePtr MakeScalar(TypeKind kind);

  Type(TypeKind kind, std::vector<std::string> names,
       std::vector<TypePtr> children)
      : kind_(kind), names_(std::move(names)), children_(std::move(children)) {}

  TypeKind kind_;
  std::vector<std::string> names_;   // ROW field names (parallel to children_)
  std::vector<TypePtr> children_;
};

inline bool operator==(const Type& a, const Type& b) { return a.Equals(b); }

}  // namespace presto

#endif  // PRESTO_TYPES_TYPE_H_
