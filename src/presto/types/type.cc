#include "presto/types/type.h"

#include <cctype>

namespace presto {

TypePtr Type::MakeScalar(TypeKind kind) {
  return TypePtr(new Type(kind, {}, {}));
}

const char* TypeKindToString(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBoolean:
      return "BOOLEAN";
    case TypeKind::kInteger:
      return "INTEGER";
    case TypeKind::kBigint:
      return "BIGINT";
    case TypeKind::kDouble:
      return "DOUBLE";
    case TypeKind::kVarchar:
      return "VARCHAR";
    case TypeKind::kTimestamp:
      return "TIMESTAMP";
    case TypeKind::kRow:
      return "ROW";
    case TypeKind::kArray:
      return "ARRAY";
    case TypeKind::kMap:
      return "MAP";
  }
  return "UNKNOWN";
}

// Each scalar singleton is a function-local static reference to a leaked
// TypePtr: dynamic init of function-local statics is well-defined, and
// leaking avoids shutdown-order hazards for non-trivially-destructible
// statics.
const TypePtr& Type::Boolean() {
  static const TypePtr& t = *new TypePtr(MakeScalar(TypeKind::kBoolean));
  return t;
}
const TypePtr& Type::Integer() {
  static const TypePtr& t = *new TypePtr(MakeScalar(TypeKind::kInteger));
  return t;
}
const TypePtr& Type::Bigint() {
  static const TypePtr& t = *new TypePtr(MakeScalar(TypeKind::kBigint));
  return t;
}
const TypePtr& Type::Double() {
  static const TypePtr& t = *new TypePtr(MakeScalar(TypeKind::kDouble));
  return t;
}
const TypePtr& Type::Varchar() {
  static const TypePtr& t = *new TypePtr(MakeScalar(TypeKind::kVarchar));
  return t;
}
const TypePtr& Type::Timestamp() {
  static const TypePtr& t = *new TypePtr(MakeScalar(TypeKind::kTimestamp));
  return t;
}

TypePtr Type::Row(std::vector<std::string> names,
                  std::vector<TypePtr> children) {
  return TypePtr(new Type(TypeKind::kRow, std::move(names), std::move(children)));
}

TypePtr Type::Array(TypePtr element) {
  return TypePtr(new Type(TypeKind::kArray, {}, {std::move(element)}));
}

TypePtr Type::Map(TypePtr key, TypePtr value) {
  return TypePtr(
      new Type(TypeKind::kMap, {}, {std::move(key), std::move(value)}));
}

std::optional<size_t> Type::FindField(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  return std::nullopt;
}

bool Type::Equals(const Type& other) const {
  if (kind_ != other.kind_) return false;
  if (children_.size() != other.children_.size()) return false;
  if (names_ != other.names_) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

std::string Type::ToString() const {
  switch (kind_) {
    case TypeKind::kRow: {
      std::string out = "ROW(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += names_[i];
        out += " ";
        out += children_[i]->ToString();
      }
      out += ")";
      return out;
    }
    case TypeKind::kArray:
      return "ARRAY(" + children_[0]->ToString() + ")";
    case TypeKind::kMap:
      return "MAP(" + children_[0]->ToString() + ", " +
             children_[1]->ToString() + ")";
    default:
      return TypeKindToString(kind_);
  }
}

namespace {

// Recursive-descent parser for the ToString grammar.
class TypeParser {
 public:
  explicit TypeParser(const std::string& text) : text_(text) {}

  Result<TypePtr> Parse() {
    ASSIGN_OR_RETURN(TypePtr t, ParseType());
    SkipSpaces();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters in type: " + text_);
    }
    return t;
  }

 private:
  void SkipSpaces() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpaces();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ReadWord() {
    SkipSpaces();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Result<TypePtr> ParseType() {
    std::string word = ReadWord();
    if (word == "BOOLEAN") return Type::Boolean();
    if (word == "INTEGER") return Type::Integer();
    if (word == "BIGINT") return Type::Bigint();
    if (word == "DOUBLE") return Type::Double();
    if (word == "VARCHAR") return Type::Varchar();
    if (word == "TIMESTAMP") return Type::Timestamp();
    if (word == "ARRAY") {
      if (!Consume('(')) return Status::InvalidArgument("expected ( after ARRAY");
      ASSIGN_OR_RETURN(TypePtr elem, ParseType());
      if (!Consume(')')) return Status::InvalidArgument("expected ) in ARRAY");
      return Type::Array(std::move(elem));
    }
    if (word == "MAP") {
      if (!Consume('(')) return Status::InvalidArgument("expected ( after MAP");
      ASSIGN_OR_RETURN(TypePtr key, ParseType());
      if (!Consume(',')) return Status::InvalidArgument("expected , in MAP");
      ASSIGN_OR_RETURN(TypePtr value, ParseType());
      if (!Consume(')')) return Status::InvalidArgument("expected ) in MAP");
      return Type::Map(std::move(key), std::move(value));
    }
    if (word == "ROW") {
      if (!Consume('(')) return Status::InvalidArgument("expected ( after ROW");
      std::vector<std::string> names;
      std::vector<TypePtr> children;
      while (true) {
        std::string name = ReadWord();
        if (name.empty()) {
          return Status::InvalidArgument("expected field name in ROW");
        }
        ASSIGN_OR_RETURN(TypePtr child, ParseType());
        names.push_back(std::move(name));
        children.push_back(std::move(child));
        if (Consume(')')) break;
        if (!Consume(',')) {
          return Status::InvalidArgument("expected , or ) in ROW");
        }
      }
      return Type::Row(std::move(names), std::move(children));
    }
    return Status::InvalidArgument("unknown type: '" + word + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<TypePtr> Type::Parse(const std::string& text) {
  return TypeParser(text).Parse();
}

}  // namespace presto
