#include "presto/types/schema_evolution.h"

namespace presto {

namespace {

Status CheckFieldCompatible(const std::string& path, const Type& old_type,
                            const Type& new_type) {
  if (old_type.kind() != new_type.kind()) {
    return Status::SchemaViolation("type change not allowed for field '" +
                                   path + "': " + old_type.ToString() +
                                   " -> " + new_type.ToString());
  }
  switch (old_type.kind()) {
    case TypeKind::kRow: {
      // Common fields must stay compatible; added/removed fields are fine.
      for (size_t i = 0; i < new_type.NumChildren(); ++i) {
        const std::string& name = new_type.field_name(i);
        if (auto idx = old_type.FindField(name)) {
          RETURN_IF_ERROR(CheckFieldCompatible(path.empty() ? name : path + "." + name,
                                               *old_type.child(*idx),
                                               *new_type.child(i)));
        }
      }
      return Status::OK();
    }
    case TypeKind::kArray:
      return CheckFieldCompatible(path + ".element", *old_type.element(),
                                  *new_type.element());
    case TypeKind::kMap:
      RETURN_IF_ERROR(CheckFieldCompatible(path + ".key", *old_type.map_key(),
                                           *new_type.map_key()));
      return CheckFieldCompatible(path + ".value", *old_type.map_value(),
                                  *new_type.map_value());
    default:
      return Status::OK();  // identical scalar kinds
  }
}

}  // namespace

Status ValidateEvolution(const Type& old_schema, const Type& new_schema) {
  if (old_schema.kind() != TypeKind::kRow ||
      new_schema.kind() != TypeKind::kRow) {
    return Status::InvalidArgument("table schemas must be ROW types");
  }
  return CheckFieldCompatible("", old_schema, new_schema);
}

Status CheckReadCompatible(const Type& table_schema, const Type& file_schema) {
  if (table_schema.kind() != TypeKind::kRow ||
      file_schema.kind() != TypeKind::kRow) {
    return Status::InvalidArgument("schemas must be ROW types");
  }
  return CheckFieldCompatible("", file_schema, table_schema);
}

Status SchemaRegistry::RegisterTable(const std::string& table, TypePtr schema) {
  if (schema == nullptr || schema->kind() != TypeKind::kRow) {
    return Status::InvalidArgument("table schema must be a ROW type");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (versions_.count(table) > 0) {
    return Status::AlreadyExists("table already registered: " + table);
  }
  versions_[table].push_back(std::move(schema));
  return Status::OK();
}

Status SchemaRegistry::EvolveTable(const std::string& table, TypePtr schema,
                                   const std::vector<std::string>& renamed_fields) {
  if (!renamed_fields.empty()) {
    return Status::SchemaViolation("field rename not allowed: '" +
                                   renamed_fields.front() + "'");
  }
  if (schema == nullptr || schema->kind() != TypeKind::kRow) {
    return Status::InvalidArgument("table schema must be a ROW type");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(table);
  if (it == versions_.end()) {
    return Status::NotFound("table not registered: " + table);
  }
  RETURN_IF_ERROR(ValidateEvolution(*it->second.back(), *schema));
  it->second.push_back(std::move(schema));
  return Status::OK();
}

Result<TypePtr> SchemaRegistry::CurrentSchema(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(table);
  if (it == versions_.end()) {
    return Status::NotFound("table not registered: " + table);
  }
  return it->second.back();
}

Result<TypePtr> SchemaRegistry::SchemaAtVersion(const std::string& table,
                                                size_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(table);
  if (it == versions_.end()) {
    return Status::NotFound("table not registered: " + table);
  }
  if (version == 0 || version > it->second.size()) {
    return Status::OutOfRange("no such schema version");
  }
  return it->second[version - 1];
}

Result<size_t> SchemaRegistry::CurrentVersion(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(table);
  if (it == versions_.end()) {
    return Status::NotFound("table not registered: " + table);
  }
  return it->second.size();
}

}  // namespace presto
