#ifndef PRESTO_TYPES_VALUE_H_
#define PRESTO_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "presto/types/type.h"

namespace presto {

/// A single (possibly null, possibly nested) SQL value. Used for literals in
/// RowExpressions, rows in the mini-MySQL store, the legacy row-materializing
/// Parquet reader/writer paths, and min/max statistics in file footers.
///
/// The vectorized engine does NOT use Value per row — that is exactly the
/// inefficiency the paper's new reader removes — but the "old reader" and
/// "old writer" baselines do, faithfully reproducing the row-by-row cost.
class Value {
 public:
  using RowData = std::vector<Value>;
  using MapData = std::vector<std::pair<Value, Value>>;

  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  static Value Row(RowData fields) {
    return Value(Payload(Nested{std::move(fields), {}, NestedKind::kRow}));
  }
  static Value Array(RowData elements) {
    return Value(Payload(Nested{std::move(elements), {}, NestedKind::kArray}));
  }
  static Value Map(MapData entries) {
    return Value(Payload(Nested{{}, std::move(entries), NestedKind::kMap}));
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_row() const { return nested_kind() == NestedKind::kRow; }
  bool is_array() const { return nested_kind() == NestedKind::kArray; }
  bool is_map() const { return nested_kind() == NestedKind::kMap; }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Steals the string payload (value becomes unspecified-but-valid).
  std::string TakeString() && { return std::move(std::get<std::string>(data_)); }

  /// ROW fields or ARRAY elements.
  const RowData& children() const { return std::get<Nested>(data_).children; }
  RowData& children() { return std::get<Nested>(data_).children; }
  const MapData& map_entries() const { return std::get<Nested>(data_).entries; }
  MapData& map_entries() { return std::get<Nested>(data_).entries; }

  /// Numeric view: int-like values widened to double.
  double AsDouble() const {
    return is_double() ? double_value() : static_cast<double>(int_value());
  }

  /// Total order over same-kind scalar values; NULLs sort first. Comparing a
  /// bigint with a double compares numerically.
  int Compare(const Value& other) const;
  bool Equals(const Value& other) const { return Compare(other) == 0; }

  uint64_t Hash() const;

  /// SQL-ish rendering: NULL, 42, 3.5, 'abc', ROW(…), ARRAY[…], MAP{…}.
  std::string ToString() const;

 private:
  enum class NestedKind { kNone, kRow, kArray, kMap };
  struct Nested {
    RowData children;
    MapData entries;
    NestedKind kind = NestedKind::kNone;
  };
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string, Nested>;

  explicit Value(Payload payload) : data_(std::move(payload)) {}

  NestedKind nested_kind() const {
    const Nested* n = std::get_if<Nested>(&data_);
    return n == nullptr ? NestedKind::kNone : n->kind;
  }

  Payload data_;
};

inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }

}  // namespace presto

#endif  // PRESTO_TYPES_VALUE_H_
