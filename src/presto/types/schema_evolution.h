#ifndef PRESTO_TYPES_SCHEMA_EVOLUTION_H_
#define PRESTO_TYPES_SCHEMA_EVOLUTION_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "presto/types/type.h"

namespace presto {

/// Company-wide schema-evolution rules from Section V.A of the paper:
///   * adding new fields to a struct is allowed (old files return NULL),
///   * removing fields is allowed (data still ingested into the removed
///     field is ignored at read time),
///   * renaming a field and changing a field's type are NOT allowed —
///     Presto is type-strict and Parquet identifies columns by name.
///
/// Validates that `new_schema` is a legal evolution of `old_schema`
/// (both must be ROW types). A field present in both with a different type
/// is a type change and is rejected, recursively through nested structs.
/// (A rename is indistinguishable from remove+add at the type level; the
/// schema service enforces renames out-of-band, which we model by rejecting
/// any evolution explicitly marked as a rename in EvolveTable.)
Status ValidateEvolution(const Type& old_schema, const Type& new_schema);

/// Checks that a file's schema is readable under a table schema: every field
/// path present in both must have an identical type. Fields only in the
/// table schema will be null-filled by readers; fields only in the file are
/// ignored.
Status CheckReadCompatible(const Type& table_schema, const Type& file_schema);

/// The "schemas are managed as a service outside of Presto" component:
/// tracks schema versions per table and enforces the evolution rules.
class SchemaRegistry {
 public:
  /// Registers version 1 of a table schema (must be a ROW type).
  Status RegisterTable(const std::string& table, TypePtr schema);

  /// Appends a new schema version after validating the evolution rules.
  /// `renamed_fields` lists fields the caller knows were renamed (top-level
  /// dotted paths); any non-empty list is rejected per the rules.
  Status EvolveTable(const std::string& table, TypePtr schema,
                     const std::vector<std::string>& renamed_fields = {});

  Result<TypePtr> CurrentSchema(const std::string& table) const;
  Result<TypePtr> SchemaAtVersion(const std::string& table, size_t version) const;
  Result<size_t> CurrentVersion(const std::string& table) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<TypePtr>> versions_;
};

}  // namespace presto

#endif  // PRESTO_TYPES_SCHEMA_EVOLUTION_H_
