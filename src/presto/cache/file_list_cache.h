#ifndef PRESTO_CACHE_FILE_LIST_CACHE_H_
#define PRESTO_CACHE_FILE_LIST_CACHE_H_

#include <memory>
#include <string>
#include <vector>

#include "presto/cache/lru_cache.h"
#include "presto/fs/file_system.h"

namespace presto {

/// Coordinator-side file-list cache (Section VII.A): "Presto coordinator
/// caches file lists in memory to avoid long listFile calls to remote
/// storage. This can only be applied to sealed directories. For open
/// partitions, Presto will skip caching those directories to guarantee data
/// freshness." — open partitions keep receiving files from near-real-time
/// ingestion, so their listings always go to the NameNode.
/// Listings are byte-weighted: each cached directory counts its paths'
/// bytes against `capacity_bytes` (LRU eviction) and charges them to the
/// process-wide cache memory pool.
class FileListCache {
 public:
  explicit FileListCache(size_t capacity_bytes = 32 << 20)
      : cache_(capacity_bytes, "cache.file_list") {
    cache_.SetMemoryPool(ProcessCachePool()->AddChild("cache.file_list"));
  }

  /// Lists `directory` through the cache. `sealed` comes from the table's
  /// partition metadata: only sealed directories are cached.
  Result<std::shared_ptr<const std::vector<FileInfo>>> List(
      FileSystem* fs, const std::string& directory, bool sealed) {
    if (sealed) {
      if (auto hit = cache_.Get(directory)) return *hit;
    }
    ASSIGN_OR_RETURN(std::vector<FileInfo> listed, fs->ListFiles(directory));
    auto shared =
        std::make_shared<const std::vector<FileInfo>>(std::move(listed));
    if (sealed) cache_.Put(directory, shared, EstimateListingBytes(*shared));
    return shared;
  }

  /// Invalidation hook for partition rewrites / compaction.
  void Invalidate(const std::string& directory) { cache_.Invalidate(directory); }

  MetricsRegistry& metrics() { return cache_.metrics(); }

 private:
  static int64_t EstimateListingBytes(const std::vector<FileInfo>& files) {
    int64_t bytes = static_cast<int64_t>(sizeof(std::vector<FileInfo>));
    for (const FileInfo& file : files) {
      bytes += static_cast<int64_t>(sizeof(FileInfo) + file.path.size());
    }
    return bytes;
  }

  LruCache<std::vector<FileInfo>> cache_;
};

}  // namespace presto

#endif  // PRESTO_CACHE_FILE_LIST_CACHE_H_
