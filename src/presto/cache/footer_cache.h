#ifndef PRESTO_CACHE_FOOTER_CACHE_H_
#define PRESTO_CACHE_FOOTER_CACHE_H_

#include <memory>
#include <string>

#include "presto/cache/lru_cache.h"
#include "presto/fs/file_system.h"
#include "presto/lakefile/reader.h"

namespace presto {

/// Worker-side file-handle + footer cache (Section VII.B): "Presto worker
/// caches the file descriptors in memory to avoid long getFileInfo calls to
/// remote storage. Also, a worker caches common columnar file and stripe
/// footers in memory … due to the high hit rate of footers as they are the
/// indexes to the data itself."
///
/// Handles are capped by entry count; footers are byte-weighted (their
/// estimated in-memory size counts against footer_capacity_bytes, evicting
/// LRU-first). Both charge their resident bytes to the process-wide cache
/// memory pool so cache memory is visible next to query memory.
class FooterCache {
 public:
  explicit FooterCache(size_t capacity = 20000,
                       size_t footer_capacity_bytes = 64 << 20)
      : handles_(capacity, "cache.file_handle"),
        footers_(footer_capacity_bytes, "cache.footer") {
    handles_.SetMemoryPool(ProcessCachePool()->AddChild("cache.file_handle"));
    footers_.SetMemoryPool(ProcessCachePool()->AddChild("cache.footer"));
  }

  /// Opens a file through the handle cache: a hit skips the getFileInfo /
  /// open round trip to remote storage.
  Result<std::shared_ptr<RandomAccessFile>> OpenFile(FileSystem* fs,
                                                     const std::string& path) {
    if (auto hit = handles_.Get(path)) {
      // Stored as shared_ptr<const shared_ptr<RandomAccessFile>>.
      return **hit;
    }
    ASSIGN_OR_RETURN(std::shared_ptr<RandomAccessFile> file, fs->OpenForRead(path));
    handles_.Put(path, std::make_shared<const std::shared_ptr<RandomAccessFile>>(file));
    return file;
  }

  /// Reads a lakefile footer through the cache.
  Result<std::shared_ptr<const lakefile::FileFooter>> GetFooter(
      FileSystem* fs, const std::string& path) {
    if (auto hit = footers_.Get(path)) return *hit;
    ASSIGN_OR_RETURN(std::shared_ptr<RandomAccessFile> file, OpenFile(fs, path));
    ASSIGN_OR_RETURN(lakefile::FileFooter footer,
                     lakefile::ReadFooter(file.get()));
    auto shared =
        std::make_shared<const lakefile::FileFooter>(std::move(footer));
    footers_.Put(path, shared, EstimateFooterBytes(*shared));
    return shared;
  }

  void Invalidate(const std::string& path) {
    handles_.Invalidate(path);
    footers_.Invalidate(path);
  }

  MetricsRegistry& handle_metrics() { return handles_.metrics(); }
  MetricsRegistry& footer_metrics() { return footers_.metrics(); }

 private:
  // Rough resident size: fixed header plus per-row-group metadata. Exact
  // accounting is not the point — the same estimator drives both eviction
  // and the pool charge, so they stay consistent.
  static int64_t EstimateFooterBytes(const lakefile::FileFooter& footer) {
    return static_cast<int64_t>(sizeof(lakefile::FileFooter)) +
           static_cast<int64_t>(footer.row_groups.size()) * 64;
  }

  LruCache<std::shared_ptr<RandomAccessFile>> handles_;
  LruCache<lakefile::FileFooter> footers_;
};

}  // namespace presto

#endif  // PRESTO_CACHE_FOOTER_CACHE_H_
