#ifndef PRESTO_CACHE_LRU_CACHE_H_
#define PRESTO_CACHE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "presto/common/memory_pool.h"
#include "presto/common/metrics.h"

namespace presto {

/// Thread-safe LRU cache with byte-weighted capacity. Every entry carries a
/// weight (its estimated bytes; defaults to 1, which degenerates to plain
/// entry-count LRU) and entries are evicted oldest-first while the total
/// weight exceeds `capacity`. Values are shared_ptrs so hits stay valid
/// while entries are evicted concurrently.
///
/// An optional MemoryPool (SetMemoryPool) is charged for every resident
/// entry's weight, making cache memory visible in the worker's memory
/// hierarchy alongside query memory; a failed reservation means the entry is
/// simply not cached (caching is best-effort, never an error).
///
/// Counter names follow the subsystem.object.verb scheme: the prefix names
/// the cache instance (e.g. "cache.footer") and the cache appends
/// .hits/.misses/.evictions/.evicted.bytes. Counters are pre-registered so
/// the hot path is a single relaxed atomic add.
template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity, std::string metric_prefix = "cache")
      : capacity_(capacity == 0 ? 1 : capacity),
        hits_(metrics_.FindOrRegister(metric_prefix + ".hits")),
        misses_(metrics_.FindOrRegister(metric_prefix + ".misses")),
        evictions_(metrics_.FindOrRegister(metric_prefix + ".evictions")),
        evicted_bytes_(
            metrics_.FindOrRegister(metric_prefix + ".evicted.bytes")) {}

  ~LruCache() { Clear(); }

  /// Attaches a memory pool (typically a child of ProcessCachePool());
  /// resident entries' weights are reserved against it.
  void SetMemoryPool(std::shared_ptr<MemoryPool> pool) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ != nullptr && total_weight_ > 0) pool_->Release(total_weight_);
    pool_ = std::move(pool);
    if (pool_ != nullptr && total_weight_ > 0) {
      // Best-effort re-charge of what is already resident.
      if (!pool_->Reserve(total_weight_).ok()) pool_ = nullptr;
    }
  }

  std::optional<std::shared_ptr<const V>> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      misses_->Add(1);
      return std::nullopt;
    }
    // Move to front.
    order_.splice(order_.begin(), order_, it->second.order_it);
    hits_->Add(1);
    return it->second.value;
  }

  /// Inserts or replaces `key`. `weight` is the entry's estimated bytes
  /// (counts against capacity and the attached pool); the default of 1 keeps
  /// entry-count semantics for callers without a byte estimate.
  void Put(const std::string& key, std::shared_ptr<const V> value,
           int64_t weight = 1) {
    if (weight < 1) weight = 1;
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ != nullptr && !pool_->Reserve(weight).ok()) {
      return;  // worker has no budget for cache growth: skip caching
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      total_weight_ -= it->second.weight;
      if (pool_ != nullptr) pool_->Release(it->second.weight);
      it->second.value = std::move(value);
      it->second.weight = weight;
      total_weight_ += weight;
      order_.splice(order_.begin(), order_, it->second.order_it);
    } else {
      order_.push_front(key);
      index_[key] = Entry{std::move(value), weight, order_.begin()};
      total_weight_ += weight;
    }
    // Evict oldest-first while over budget; the just-inserted entry survives
    // even when it alone exceeds capacity (an oversized entry evicts
    // everything else, then ages out normally).
    while (total_weight_ > static_cast<int64_t>(capacity_) &&
           index_.size() > 1) {
      auto victim = index_.find(order_.back());
      total_weight_ -= victim->second.weight;
      if (pool_ != nullptr) pool_->Release(victim->second.weight);
      evicted_bytes_->Add(victim->second.weight);
      evictions_->Add(1);
      index_.erase(victim);
      order_.pop_back();
    }
  }

  void Invalidate(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return;
    total_weight_ -= it->second.weight;
    if (pool_ != nullptr) pool_->Release(it->second.weight);
    order_.erase(it->second.order_it);
    index_.erase(it);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ != nullptr && total_weight_ > 0) pool_->Release(total_weight_);
    total_weight_ = 0;
    index_.clear();
    order_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

  /// Total weight (estimated bytes) of resident entries.
  int64_t weight_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_weight_;
  }

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Entry {
    std::shared_ptr<const V> value;
    int64_t weight = 1;
    std::list<std::string>::iterator order_it;
  };

  const size_t capacity_;  // total weight budget (bytes, or entries at w=1)
  MetricsRegistry metrics_;
  MetricsRegistry::Counter* const hits_;
  MetricsRegistry::Counter* const misses_;
  MetricsRegistry::Counter* const evictions_;
  MetricsRegistry::Counter* const evicted_bytes_;
  mutable std::mutex mu_;
  std::list<std::string> order_;  // front = most recent
  std::map<std::string, Entry> index_;
  int64_t total_weight_ = 0;
  std::shared_ptr<MemoryPool> pool_;  // null = cache memory unaccounted
};

}  // namespace presto

#endif  // PRESTO_CACHE_LRU_CACHE_H_
