#ifndef PRESTO_CACHE_LRU_CACHE_H_
#define PRESTO_CACHE_LRU_CACHE_H_

#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "presto/common/metrics.h"

namespace presto {

/// Thread-safe LRU cache with entry-count capacity. Values are shared_ptrs
/// so hits stay valid while entries are evicted concurrently.
///
/// Counter names follow the subsystem.object.verb scheme: the prefix names
/// the cache instance (e.g. "cache.footer") and the cache appends
/// .hits/.misses/.evictions. Counters are pre-registered so the hot path is
/// a single relaxed atomic add.
template <typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity, std::string metric_prefix = "cache")
      : capacity_(capacity == 0 ? 1 : capacity),
        hits_(metrics_.FindOrRegister(metric_prefix + ".hits")),
        misses_(metrics_.FindOrRegister(metric_prefix + ".misses")),
        evictions_(metrics_.FindOrRegister(metric_prefix + ".evictions")) {}

  std::optional<std::shared_ptr<const V>> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      misses_->Add(1);
      return std::nullopt;
    }
    // Move to front.
    order_.splice(order_.begin(), order_, it->second.order_it);
    hits_->Add(1);
    return it->second.value;
  }

  void Put(const std::string& key, std::shared_ptr<const V> value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second.value = std::move(value);
      order_.splice(order_.begin(), order_, it->second.order_it);
      return;
    }
    order_.push_front(key);
    index_[key] = Entry{std::move(value), order_.begin()};
    if (index_.size() > capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
      evictions_->Add(1);
    }
  }

  void Invalidate(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return;
    order_.erase(it->second.order_it);
    index_.erase(it);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    order_.clear();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Entry {
    std::shared_ptr<const V> value;
    std::list<std::string>::iterator order_it;
  };

  const size_t capacity_;
  MetricsRegistry metrics_;
  MetricsRegistry::Counter* const hits_;
  MetricsRegistry::Counter* const misses_;
  MetricsRegistry::Counter* const evictions_;
  mutable std::mutex mu_;
  std::list<std::string> order_;  // front = most recent
  std::map<std::string, Entry> index_;
};

}  // namespace presto

#endif  // PRESTO_CACHE_LRU_CACHE_H_
