file(REMOVE_RECURSE
  "../examples/cloud_elasticity"
  "../examples/cloud_elasticity.pdb"
  "CMakeFiles/cloud_elasticity.dir/cloud_elasticity.cpp.o"
  "CMakeFiles/cloud_elasticity.dir/cloud_elasticity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
