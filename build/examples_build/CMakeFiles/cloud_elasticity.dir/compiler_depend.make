# Empty compiler generated dependencies file for cloud_elasticity.
# This may be replaced when dependencies are built.
