file(REMOVE_RECURSE
  "../examples/geospatial_trips"
  "../examples/geospatial_trips.pdb"
  "CMakeFiles/geospatial_trips.dir/geospatial_trips.cpp.o"
  "CMakeFiles/geospatial_trips.dir/geospatial_trips.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geospatial_trips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
