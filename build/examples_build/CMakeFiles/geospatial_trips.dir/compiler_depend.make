# Empty compiler generated dependencies file for geospatial_trips.
# This may be replaced when dependencies are built.
