file(REMOVE_RECURSE
  "../examples/federated_analytics"
  "../examples/federated_analytics.pdb"
  "CMakeFiles/federated_analytics.dir/federated_analytics.cpp.o"
  "CMakeFiles/federated_analytics.dir/federated_analytics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
