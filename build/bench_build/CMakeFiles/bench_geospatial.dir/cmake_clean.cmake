file(REMOVE_RECURSE
  "../bench/bench_geospatial"
  "../bench/bench_geospatial.pdb"
  "CMakeFiles/bench_geospatial.dir/bench_geospatial.cc.o"
  "CMakeFiles/bench_geospatial.dir/bench_geospatial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geospatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
