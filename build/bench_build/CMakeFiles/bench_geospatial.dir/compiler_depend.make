# Empty compiler generated dependencies file for bench_geospatial.
# This may be replaced when dependencies are built.
