file(REMOVE_RECURSE
  "../bench/bench_parquet_writer"
  "../bench/bench_parquet_writer.pdb"
  "CMakeFiles/bench_parquet_writer.dir/bench_parquet_writer.cc.o"
  "CMakeFiles/bench_parquet_writer.dir/bench_parquet_writer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parquet_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
