# Empty dependencies file for bench_parquet_writer.
# This may be replaced when dependencies are built.
