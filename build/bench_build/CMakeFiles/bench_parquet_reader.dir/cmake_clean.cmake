file(REMOVE_RECURSE
  "../bench/bench_parquet_reader"
  "../bench/bench_parquet_reader.pdb"
  "CMakeFiles/bench_parquet_reader.dir/bench_parquet_reader.cc.o"
  "CMakeFiles/bench_parquet_reader.dir/bench_parquet_reader.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parquet_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
