file(REMOVE_RECURSE
  "../bench/bench_pushdown"
  "../bench/bench_pushdown.pdb"
  "CMakeFiles/bench_pushdown.dir/bench_pushdown.cc.o"
  "CMakeFiles/bench_pushdown.dir/bench_pushdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pushdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
