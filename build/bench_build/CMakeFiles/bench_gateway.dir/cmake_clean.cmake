file(REMOVE_RECURSE
  "../bench/bench_gateway"
  "../bench/bench_gateway.pdb"
  "CMakeFiles/bench_gateway.dir/bench_gateway.cc.o"
  "CMakeFiles/bench_gateway.dir/bench_gateway.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
