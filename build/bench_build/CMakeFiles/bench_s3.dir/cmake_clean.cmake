file(REMOVE_RECURSE
  "../bench/bench_s3"
  "../bench/bench_s3.pdb"
  "CMakeFiles/bench_s3.dir/bench_s3.cc.o"
  "CMakeFiles/bench_s3.dir/bench_s3.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
