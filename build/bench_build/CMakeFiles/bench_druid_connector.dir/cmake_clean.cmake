file(REMOVE_RECURSE
  "../bench/bench_druid_connector"
  "../bench/bench_druid_connector.pdb"
  "CMakeFiles/bench_druid_connector.dir/bench_druid_connector.cc.o"
  "CMakeFiles/bench_druid_connector.dir/bench_druid_connector.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_druid_connector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
