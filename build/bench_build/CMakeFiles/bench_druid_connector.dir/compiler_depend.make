# Empty compiler generated dependencies file for bench_druid_connector.
# This may be replaced when dependencies are built.
