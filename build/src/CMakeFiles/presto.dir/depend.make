# Empty dependencies file for presto.
# This may be replaced when dependencies are built.
