
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/presto/cluster/cluster.cc" "src/CMakeFiles/presto.dir/presto/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/cluster/cluster.cc.o.d"
  "/root/repo/src/presto/cluster/coordinator.cc" "src/CMakeFiles/presto.dir/presto/cluster/coordinator.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/cluster/coordinator.cc.o.d"
  "/root/repo/src/presto/cluster/gateway.cc" "src/CMakeFiles/presto.dir/presto/cluster/gateway.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/cluster/gateway.cc.o.d"
  "/root/repo/src/presto/cluster/worker.cc" "src/CMakeFiles/presto.dir/presto/cluster/worker.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/cluster/worker.cc.o.d"
  "/root/repo/src/presto/common/compression.cc" "src/CMakeFiles/presto.dir/presto/common/compression.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/common/compression.cc.o.d"
  "/root/repo/src/presto/common/status.cc" "src/CMakeFiles/presto.dir/presto/common/status.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/common/status.cc.o.d"
  "/root/repo/src/presto/common/thread_pool.cc" "src/CMakeFiles/presto.dir/presto/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/common/thread_pool.cc.o.d"
  "/root/repo/src/presto/connector/connector.cc" "src/CMakeFiles/presto.dir/presto/connector/connector.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/connector/connector.cc.o.d"
  "/root/repo/src/presto/connector/pushdown.cc" "src/CMakeFiles/presto.dir/presto/connector/pushdown.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/connector/pushdown.cc.o.d"
  "/root/repo/src/presto/connectors/druid/druid_connector.cc" "src/CMakeFiles/presto.dir/presto/connectors/druid/druid_connector.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/connectors/druid/druid_connector.cc.o.d"
  "/root/repo/src/presto/connectors/hive/hive_connector.cc" "src/CMakeFiles/presto.dir/presto/connectors/hive/hive_connector.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/connectors/hive/hive_connector.cc.o.d"
  "/root/repo/src/presto/connectors/memory/memory_connector.cc" "src/CMakeFiles/presto.dir/presto/connectors/memory/memory_connector.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/connectors/memory/memory_connector.cc.o.d"
  "/root/repo/src/presto/connectors/mysql/mysql_connector.cc" "src/CMakeFiles/presto.dir/presto/connectors/mysql/mysql_connector.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/connectors/mysql/mysql_connector.cc.o.d"
  "/root/repo/src/presto/druid/druid_store.cc" "src/CMakeFiles/presto.dir/presto/druid/druid_store.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/druid/druid_store.cc.o.d"
  "/root/repo/src/presto/exec/operators.cc" "src/CMakeFiles/presto.dir/presto/exec/operators.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/exec/operators.cc.o.d"
  "/root/repo/src/presto/expr/builtin_functions.cc" "src/CMakeFiles/presto.dir/presto/expr/builtin_functions.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/expr/builtin_functions.cc.o.d"
  "/root/repo/src/presto/expr/evaluator.cc" "src/CMakeFiles/presto.dir/presto/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/expr/evaluator.cc.o.d"
  "/root/repo/src/presto/expr/expression.cc" "src/CMakeFiles/presto.dir/presto/expr/expression.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/expr/expression.cc.o.d"
  "/root/repo/src/presto/expr/function_registry.cc" "src/CMakeFiles/presto.dir/presto/expr/function_registry.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/expr/function_registry.cc.o.d"
  "/root/repo/src/presto/expr/serialization.cc" "src/CMakeFiles/presto.dir/presto/expr/serialization.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/expr/serialization.cc.o.d"
  "/root/repo/src/presto/fs/file_system.cc" "src/CMakeFiles/presto.dir/presto/fs/file_system.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/fs/file_system.cc.o.d"
  "/root/repo/src/presto/fs/local_file_system.cc" "src/CMakeFiles/presto.dir/presto/fs/local_file_system.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/fs/local_file_system.cc.o.d"
  "/root/repo/src/presto/fs/memory_file_system.cc" "src/CMakeFiles/presto.dir/presto/fs/memory_file_system.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/fs/memory_file_system.cc.o.d"
  "/root/repo/src/presto/fs/presto_s3_file_system.cc" "src/CMakeFiles/presto.dir/presto/fs/presto_s3_file_system.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/fs/presto_s3_file_system.cc.o.d"
  "/root/repo/src/presto/fs/s3_object_store.cc" "src/CMakeFiles/presto.dir/presto/fs/s3_object_store.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/fs/s3_object_store.cc.o.d"
  "/root/repo/src/presto/fs/simulated_hdfs.cc" "src/CMakeFiles/presto.dir/presto/fs/simulated_hdfs.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/fs/simulated_hdfs.cc.o.d"
  "/root/repo/src/presto/geo/geo_functions.cc" "src/CMakeFiles/presto.dir/presto/geo/geo_functions.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/geo/geo_functions.cc.o.d"
  "/root/repo/src/presto/geo/geo_index.cc" "src/CMakeFiles/presto.dir/presto/geo/geo_index.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/geo/geo_index.cc.o.d"
  "/root/repo/src/presto/geo/geometry.cc" "src/CMakeFiles/presto.dir/presto/geo/geometry.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/geo/geometry.cc.o.d"
  "/root/repo/src/presto/geo/quadtree.cc" "src/CMakeFiles/presto.dir/presto/geo/quadtree.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/geo/quadtree.cc.o.d"
  "/root/repo/src/presto/lakefile/format.cc" "src/CMakeFiles/presto.dir/presto/lakefile/format.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/lakefile/format.cc.o.d"
  "/root/repo/src/presto/lakefile/reader.cc" "src/CMakeFiles/presto.dir/presto/lakefile/reader.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/lakefile/reader.cc.o.d"
  "/root/repo/src/presto/lakefile/shred.cc" "src/CMakeFiles/presto.dir/presto/lakefile/shred.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/lakefile/shred.cc.o.d"
  "/root/repo/src/presto/lakefile/writer.cc" "src/CMakeFiles/presto.dir/presto/lakefile/writer.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/lakefile/writer.cc.o.d"
  "/root/repo/src/presto/mysqlite/mysqlite.cc" "src/CMakeFiles/presto.dir/presto/mysqlite/mysqlite.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/mysqlite/mysqlite.cc.o.d"
  "/root/repo/src/presto/planner/fragmenter.cc" "src/CMakeFiles/presto.dir/presto/planner/fragmenter.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/planner/fragmenter.cc.o.d"
  "/root/repo/src/presto/planner/optimizer.cc" "src/CMakeFiles/presto.dir/presto/planner/optimizer.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/planner/optimizer.cc.o.d"
  "/root/repo/src/presto/planner/plan.cc" "src/CMakeFiles/presto.dir/presto/planner/plan.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/planner/plan.cc.o.d"
  "/root/repo/src/presto/sql/analyzer.cc" "src/CMakeFiles/presto.dir/presto/sql/analyzer.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/sql/analyzer.cc.o.d"
  "/root/repo/src/presto/sql/ast.cc" "src/CMakeFiles/presto.dir/presto/sql/ast.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/sql/ast.cc.o.d"
  "/root/repo/src/presto/sql/lexer.cc" "src/CMakeFiles/presto.dir/presto/sql/lexer.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/sql/lexer.cc.o.d"
  "/root/repo/src/presto/sql/parser.cc" "src/CMakeFiles/presto.dir/presto/sql/parser.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/sql/parser.cc.o.d"
  "/root/repo/src/presto/tpch/workloads.cc" "src/CMakeFiles/presto.dir/presto/tpch/workloads.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/tpch/workloads.cc.o.d"
  "/root/repo/src/presto/types/schema_evolution.cc" "src/CMakeFiles/presto.dir/presto/types/schema_evolution.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/types/schema_evolution.cc.o.d"
  "/root/repo/src/presto/types/type.cc" "src/CMakeFiles/presto.dir/presto/types/type.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/types/type.cc.o.d"
  "/root/repo/src/presto/types/value.cc" "src/CMakeFiles/presto.dir/presto/types/value.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/types/value.cc.o.d"
  "/root/repo/src/presto/vector/vector.cc" "src/CMakeFiles/presto.dir/presto/vector/vector.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/vector/vector.cc.o.d"
  "/root/repo/src/presto/vector/vector_builder.cc" "src/CMakeFiles/presto.dir/presto/vector/vector_builder.cc.o" "gcc" "src/CMakeFiles/presto.dir/presto/vector/vector_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
