file(REMOVE_RECURSE
  "libpresto.a"
)
