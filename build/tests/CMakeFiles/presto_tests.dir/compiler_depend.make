# Empty compiler generated dependencies file for presto_tests.
# This may be replaced when dependencies are built.
