
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/presto_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/connector_test.cc" "tests/CMakeFiles/presto_tests.dir/connector_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/connector_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/presto_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/presto_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/presto_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/presto_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/expr_test.cc" "tests/CMakeFiles/presto_tests.dir/expr_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/expr_test.cc.o.d"
  "/root/repo/tests/fs_test.cc" "tests/CMakeFiles/presto_tests.dir/fs_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/fs_test.cc.o.d"
  "/root/repo/tests/functions_test.cc" "tests/CMakeFiles/presto_tests.dir/functions_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/functions_test.cc.o.d"
  "/root/repo/tests/geo_test.cc" "tests/CMakeFiles/presto_tests.dir/geo_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/geo_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/presto_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/lakefile_test.cc" "tests/CMakeFiles/presto_tests.dir/lakefile_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/lakefile_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/presto_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/presto_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/substrate_test.cc" "tests/CMakeFiles/presto_tests.dir/substrate_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/substrate_test.cc.o.d"
  "/root/repo/tests/types_test.cc" "tests/CMakeFiles/presto_tests.dir/types_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/types_test.cc.o.d"
  "/root/repo/tests/vector_test.cc" "tests/CMakeFiles/presto_tests.dir/vector_test.cc.o" "gcc" "tests/CMakeFiles/presto_tests.dir/vector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/presto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
