// Presto on cloud (paper Section IX): a hive table stored in simulated S3
// behind PrestoS3FileSystem, elastic worker expansion during busy hours,
// and graceful shrink with the SHUTTING_DOWN grace-period protocol — all
// with zero failed queries.
//
//   build/examples/cloud_elasticity

#include <cstdio>

#include "presto/cluster/cluster.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/fs/presto_s3_file_system.h"
#include "presto/tpch/workloads.h"

using namespace presto;

int main() {
  // S3 with realistic latency and occasional 503s; PrestoS3FileSystem
  // retries with exponential backoff underneath the connector.
  SimulatedClock clock;
  S3Config s3_config;
  s3_config.transient_failure_rate = 0.02;
  S3ObjectStore s3(&clock, s3_config);
  PrestoS3FileSystem fs(&s3, &clock);

  PrestoCluster cluster("cloud", /*num_workers=*/2, /*slots_per_worker=*/1);
  auto hive = std::make_shared<HiveConnector>(&fs, "bucket/warehouse");
  if (!hive->CreateTable("cloud", "trips", workloads::TripsType(), "datestr").ok()) {
    return 1;
  }
  for (int day = 1; day <= 4; ++day) {
    workloads::TripsOptions options;
    options.num_rows = 10000;
    options.datestr = "2021-06-0" + std::to_string(day);
    options.seed = day;
    if (!hive->WriteDataFile("cloud", "trips", options.datestr,
                             {workloads::GenerateTrips(options)})
             .ok()) {
      return 1;
    }
  }
  (void)cluster.catalogs().RegisterCatalog("hive", hive);
  Session session;

  auto run_queries = [&](const char* phase, int count) {
    int failed = 0;
    Stopwatch watch;
    for (int i = 0; i < count; ++i) {
      auto result = cluster.Execute(
          "SELECT base.city_id, count(*), sum(base.fare) FROM hive.cloud.trips "
          "WHERE datestr = '2021-06-0" + std::to_string(1 + i % 4) +
              "' GROUP BY base.city_id",
          session);
      if (!result.ok()) {
        std::printf("  query failed: %s\n", result.status().ToString().c_str());
        ++failed;
      }
    }
    std::printf("%-34s %3d queries, %d failed, %7.0f ms wall, "
                "%zu active workers\n",
                phase, count, failed, watch.ElapsedMillis(),
                cluster.coordinator().ActiveWorkers().size());
    return failed;
  };

  std::printf("== Presto on cloud: S3 storage + elastic workers ==\n\n");
  int failures = 0;
  failures += run_queries("steady state (2 workers):", 12);

  // Busy hours: expand. "To expand, we could simply add more workers; new
  // workers are automatically added to the existing cluster."
  std::string w2 = cluster.ExpandWorker();
  std::string w3 = cluster.ExpandWorker();
  std::printf("\n-- busy hours: expanded with %s, %s --\n", w2.c_str(), w3.c_str());
  failures += run_queries("busy hours (4 workers):", 24);

  // Non-busy hours: graceful shrink. The worker enters SHUTTING_DOWN,
  // the coordinator stops sending tasks, active tasks drain, then it stops.
  std::printf("\n-- non-busy hours: gracefully shrinking %s and %s --\n",
              w2.c_str(), w3.c_str());
  if (!cluster.ShrinkWorkerAndWait(w2, /*grace_period_nanos=*/1'000'000).ok()) return 1;
  if (!cluster.ShrinkWorkerAndWait(w3, /*grace_period_nanos=*/1'000'000).ok()) return 1;
  failures += run_queries("after shrink (2 workers):", 12);

  std::printf("\nS3 traffic: %lld requests, %.1f MiB read, %lld retries after "
              "503s, %lld multipart uploads\n",
              static_cast<long long>(s3.metrics().Get("s3.request.calls")),
              s3.metrics().Get("s3.object.bytes_read") / 1048576.0,
              static_cast<long long>(fs.metrics().Get("s3fs.request.retries")),
              static_cast<long long>(fs.metrics().Get("s3fs.multipart.uploads")));
  std::printf("Total failed queries across expand + shrink: %d "
              "(paper: no downtime for end users)\n", failures);
  return failures > 0 ? 1 : 0;
}
