// Geospatial analytics (paper Section VI): the trips-per-city query over
// geofences, answered with the QuadTree-backed Presto Geospatial plugin.
// Shows the Figure 13 plan rewrite and the Oracle-Arena-style promotion
// query from Section VI.B.
//
//   build/examples/geospatial_trips

#include <cmath>
#include <cstdio>

#include "presto/cluster/cluster.h"
#include "presto/common/random.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/vector/vector_builder.h"

using namespace presto;

namespace {

std::string CircleWkt(Random* rng, double cx, double cy, double radius, int points) {
  std::string wkt = "POLYGON ((";
  std::string first;
  for (int i = 0; i < points; ++i) {
    double angle = 2 * 3.14159265358979 * i / points;
    double r = radius * (0.8 + 0.2 * rng->NextDouble());
    std::string p = std::to_string(cx + r * std::cos(angle)) + " " +
                    std::to_string(cy + r * std::sin(angle));
    if (i == 0) first = p;
    wkt += p + ", ";
  }
  return wkt + first + "))";
}

}  // namespace

int main() {
  PrestoCluster cluster("geo", 2, 2);
  Session session;
  Random rng(2017);

  auto memory = std::make_shared<MemoryConnector>();

  // cities(city_id, geo_shape): geofences dumped from the internal geofence
  // tools into a queryable table, as in Section VI.B.
  (void)memory->CreateTable("geo", "cities",
                            Type::Row({"city_id", "geo_shape"},
                                      {Type::Bigint(), Type::Varchar()}));
  {
    VectorBuilder id(Type::Bigint()), shape(Type::Varchar());
    for (int64_t c = 0; c < 50; ++c) {
      id.AppendBigint(c);
      shape.AppendString(CircleWkt(&rng, (c % 10) * 10.0, (c / 10) * 10.0, 3.5, 64));
    }
    // A special geofence around the stadium (Section VI.B promotion).
    id.AppendBigint(999);
    shape.AppendString(CircleWkt(&rng, 55.0, 25.0, 1.0, 64));
    (void)memory->AppendPage("geo", "cities", Page({id.Build(), shape.Build()}));
  }

  // trips(trip_id, dest_lng, dest_lat, datestr)
  (void)memory->CreateTable(
      "geo", "trips",
      Type::Row({"trip_id", "dest_lng", "dest_lat", "datestr"},
                {Type::Bigint(), Type::Double(), Type::Double(), Type::Varchar()}));
  {
    VectorBuilder id(Type::Bigint()), lng(Type::Double()), lat(Type::Double()),
        date(Type::Varchar());
    for (int64_t t = 0; t < 5000; ++t) {
      id.AppendBigint(t);
      lng.AppendDouble(rng.NextDouble() * 100.0);
      lat.AppendDouble(rng.NextDouble() * 50.0);
      date.AppendString(t % 2 == 0 ? "2017-08-01" : "2017-08-02");
    }
    (void)memory->AppendPage(
        "geo", "trips", Page({id.Build(), lng.Build(), lat.Build(), date.Build()}));
  }
  (void)cluster.catalogs().RegisterCatalog("geomem", memory);

  // The Section VI.C query: trips per city on a given date.
  const char* kTripsPerCity =
      "SELECT c.city_id, count(*) AS trips FROM geomem.geo.trips t "
      "JOIN geomem.geo.cities c "
      "ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat)) "
      "WHERE t.datestr = '2017-08-01' GROUP BY 1 ORDER BY trips DESC LIMIT 10";

  std::printf("-- Figure 13: the optimizer rewrites the st_contains join into\n");
  std::printf("-- build_geo_index (QuadTree built on the fly) + geo_contains --\n");
  auto plan = cluster.Explain(kTripsPerCity, session);
  if (!plan.ok()) return 1;
  std::printf("EXPLAIN\n%s\n", plan->c_str());

  Stopwatch fast_watch;
  auto result = cluster.Execute(kTripsPerCity, session);
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Top cities by trips on 2017-08-01 (%.1f ms):\n%s\n",
              fast_watch.ElapsedMillis(), result->ToString().c_str());

  Session brute;
  brute.properties["geo_index_rewrite"] = "false";
  Stopwatch brute_watch;
  auto brute_result = cluster.Execute(kTripsPerCity, brute);
  if (!brute_result.ok()) return 1;
  std::printf("Same query, brute force (geo_index_rewrite=false): %.1f ms "
              "-> rewrite is %.0fx faster\n\n",
              brute_watch.ElapsedMillis(),
              brute_watch.ElapsedMillis() / fast_watch.ElapsedMillis());

  // Section VI.B: target riders headed to the stadium geofence.
  const char* kPromotion =
      "SELECT t.trip_id FROM geomem.geo.trips t JOIN geomem.geo.cities c "
      "ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat)) "
      "WHERE c.city_id = 999 ORDER BY t.trip_id LIMIT 5";
  auto winners = cluster.Execute(kPromotion, session);
  if (!winners.ok()) {
    std::printf("ERROR: %s\n", winners.status().ToString().c_str());
    return 1;
  }
  std::printf("-- Promotion: riders headed to the stadium geofence (id 999) --\n%s",
              winners->ToString().c_str());
  return 0;
}
