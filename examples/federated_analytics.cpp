// Federated analytics: one SQL query over three storage systems with zero
// data copies (paper Sections II, IV) — real-time events in mini-Druid,
// a dimension table in mini-MySQL, and historical nested trips in lakefiles
// on simulated HDFS through the Hive connector. EXPLAIN output shows which
// pushdowns each connector absorbed.
//
//   build/examples/federated_analytics

#include <cstdio>

#include "presto/cluster/cluster.h"
#include "presto/connectors/druid/druid_connector.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/mysql/mysql_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/tpch/workloads.h"
#include "presto/vector/vector_builder.h"

using namespace presto;

int main() {
  PrestoCluster cluster("federation", 2, 2);
  Session session;

  // ---- Catalog 1: druid — real-time order events -----------------------------
  druid::DruidStore druid_store;
  druid::DatasourceSchema events_schema;
  events_schema.dimensions = {"city", "status"};
  events_schema.metrics = {"fare"};
  (void)druid_store.CreateDatasource("rides", events_schema);
  {
    Random rng(7);
    const char* cities[] = {"sf", "nyc", "la", "chi"};
    std::vector<druid::DruidRow> events;
    for (int i = 0; i < 100000; ++i) {
      events.push_back({static_cast<int64_t>(i) * 100,
                        {cities[rng.NextBelow(4)],
                         rng.NextBool(0.8) ? "completed" : "canceled"},
                        {2.5 + rng.NextDouble() * 40}});
    }
    (void)druid_store.Ingest("rides", events);
  }
  (void)cluster.catalogs().RegisterCatalog(
      "druid", std::make_shared<DruidConnector>(&druid_store));

  // ---- Catalog 2: mysql — city dimension --------------------------------------
  mysqlite::MySqlLite mysql;
  (void)mysql.CreateTable("dim", "cities",
                          Type::Row({"city", "population", "launch_year"},
                                    {Type::Varchar(), Type::Bigint(), Type::Bigint()}));
  (void)mysql.Insert("dim", "cities",
                     {{Value::String("sf"), Value::Int(800000), Value::Int(2010)},
                      {Value::String("nyc"), Value::Int(8000000), Value::Int(2011)},
                      {Value::String("la"), Value::Int(4000000), Value::Int(2012)},
                      {Value::String("chi"), Value::Int(2700000), Value::Int(2013)}});
  (void)cluster.catalogs().RegisterCatalog(
      "mysql", std::make_shared<MySqlConnector>(&mysql));

  // ---- Catalog 3: hive — historical nested trips on HDFS ------------------------
  SimulatedClock clock;
  SimulatedHdfs hdfs(&clock);
  auto hive = std::make_shared<HiveConnector>(&hdfs, "warehouse");
  (void)hive->CreateTable("raw", "trips", workloads::TripsType());
  workloads::TripsOptions trips;
  trips.num_rows = 50000;
  trips.num_cities = 4;
  (void)hive->WriteDataFile("raw", "trips", "", {workloads::GenerateTrips(trips)});
  (void)cluster.catalogs().RegisterCatalog("hive", hive);

  // ---- Query 1: join real-time Druid with the MySQL dimension -------------------
  const char* q1 =
      "SELECT c.city, c.population, sum(r.fare) AS realtime_revenue "
      "FROM druid.default.rides r JOIN mysql.dim.cities c ON r.city = c.city "
      "WHERE r.status = 'completed' GROUP BY c.city, c.population "
      "ORDER BY realtime_revenue DESC";
  std::printf("-- Fresh revenue report: real-time Druid x MySQL dimension --\n");
  std::printf("presto> %s\n", q1);
  auto r1 = cluster.Execute(q1, session);
  if (!r1.ok()) {
    std::printf("ERROR: %s\n", r1.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", r1->ToString().c_str());

  // ---- Query 2: historical nested data from hive ---------------------------------
  const char* q2 =
      "SELECT base.city_id, approx_distinct(base.driver_uuid) AS drivers, "
      "avg(base.fare) AS avg_fare FROM hive.raw.trips "
      "WHERE base.status = 'completed' GROUP BY base.city_id ORDER BY 1";
  std::printf("-- Historical driver stats from nested lakefiles on HDFS --\n");
  std::printf("presto> %s\n", q2);
  auto r2 = cluster.Execute(q2, session);
  if (!r2.ok()) {
    std::printf("ERROR: %s\n", r2.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", r2->ToString().c_str());

  // ---- EXPLAIN: show connector pushdowns ------------------------------------------
  std::printf("-- EXPLAIN shows aggregation pushdown into Druid and\n");
  std::printf("-- predicate pushdown + nested column pruning into Hive --\n");
  const char* q3 =
      "SELECT city, count(*) FROM druid.default.rides "
      "WHERE status = 'completed' GROUP BY city";
  auto p3 = cluster.Explain(q3, session);
  if (p3.ok()) std::printf("EXPLAIN %s\n%s\n", q3, p3->c_str());
  auto p2 = cluster.Explain(q2, session);
  if (p2.ok()) std::printf("EXPLAIN %s\n%s\n", q2, p2->c_str());
  return 0;
}
