// Quickstart: embed a cluster, create an in-memory table, run SQL.
//
//   build/examples/quickstart

#include <cstdio>

#include "presto/cluster/cluster.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/vector/vector_builder.h"

using namespace presto;

int main() {
  // 1. Start an embedded cluster: one coordinator, two workers.
  PrestoCluster cluster("quickstart", /*num_workers=*/2, /*slots_per_worker=*/2);

  // 2. Register a memory catalog and load a small orders table.
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr orders_type =
      Type::Row({"id", "customer", "price", "region"},
                {Type::Bigint(), Type::Varchar(), Type::Double(), Type::Varchar()});
  if (!memory->CreateTable("default", "orders", orders_type).ok()) return 1;

  VectorBuilder id(Type::Bigint()), customer(Type::Varchar()),
      price(Type::Double()), region(Type::Varchar());
  struct Row {
    int64_t id;
    const char* customer;
    double price;
    const char* region;
  };
  for (const Row& r : {Row{1, "ann", 10.0, "us"}, Row{2, "bob", 20.0, "eu"},
                       Row{3, "ann", 5.0, "us"}, Row{4, "cat", 7.5, "ap"},
                       Row{5, "bob", 2.5, "eu"}, Row{6, "dan", 40.0, "us"}}) {
    id.AppendBigint(r.id);
    customer.AppendString(r.customer);
    price.AppendDouble(r.price);
    region.AppendString(r.region);
  }
  (void)memory->AppendPage(
      "default", "orders",
      Page({id.Build(), customer.Build(), price.Build(), region.Build()}));
  if (!cluster.catalogs().RegisterCatalog("memory", memory).ok()) return 1;

  // 3. Run SQL.
  Session session;
  const char* queries[] = {
      "SELECT * FROM orders ORDER BY id",
      "SELECT region, count(*) AS orders, sum(price) AS revenue "
      "FROM orders GROUP BY region HAVING sum(price) > 10.0 ORDER BY revenue DESC",
      "SELECT customer, avg(price) FROM orders WHERE price BETWEEN 3.0 AND 25.0 "
      "GROUP BY customer ORDER BY 2 DESC LIMIT 2",
  };
  for (const char* sql : queries) {
    std::printf("presto> %s\n", sql);
    auto result = cluster.Execute(sql, session);
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s(%lld rows, %d fragments, %d splits, %.1f ms)\n\n",
                result->ToString().c_str(),
                static_cast<long long>(result->total_rows),
                result->num_fragments, result->num_splits, result->wall_millis);
  }

  // 4. EXPLAIN shows the fragmented physical plan.
  std::printf("presto> EXPLAIN %s\n", queries[1]);
  auto plan = cluster.Explain(queries[1], session);
  if (!plan.ok()) return 1;
  std::printf("%s\n", plan->c_str());
  return 0;
}
