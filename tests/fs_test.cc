// Tests for filesystems: in-memory, simulated HDFS (NameNode latency and
// call counters), simulated S3 (latency/faults, multipart, S3 Select), and
// PrestoS3FileSystem (lazy seek, exponential backoff).

#include <gtest/gtest.h>

#include "presto/fs/local_file_system.h"
#include "presto/fs/memory_file_system.h"
#include "presto/fs/presto_s3_file_system.h"
#include "presto/fs/simulated_hdfs.h"

namespace presto {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string Str(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

TEST(MemoryFileSystemTest, WriteReadRoundTrip) {
  MemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("warehouse/t/part-0", Bytes("hello")).ok());
  auto file = fs.OpenForRead("warehouse/t/part-0");
  ASSERT_TRUE(file.ok());
  auto all = (*file)->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(Str(*all), "hello");
  EXPECT_EQ((*file)->Size().value(), 5u);
}

TEST(MemoryFileSystemTest, PositionalReads) {
  MemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("f", Bytes("0123456789")).ok());
  auto file = fs.OpenForRead("f");
  ASSERT_TRUE(file.ok());
  uint8_t buf[4];
  EXPECT_EQ((*file)->Read(3, 4, buf).value(), 4u);
  EXPECT_EQ(std::string(buf, buf + 4), "3456");
  EXPECT_EQ((*file)->Read(8, 4, buf).value(), 2u);  // short read at EOF
  EXPECT_EQ((*file)->Read(100, 4, buf).value(), 0u);
}

TEST(MemoryFileSystemTest, ListFilesNonRecursive) {
  MemoryFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("w/t/datestr=2017-03-02/f1", Bytes("a")).ok());
  ASSERT_TRUE(fs.WriteFile("w/t/datestr=2017-03-02/f2", Bytes("bb")).ok());
  ASSERT_TRUE(fs.WriteFile("w/t/datestr=2017-03-03/f1", Bytes("c")).ok());
  auto listing = fs.ListFiles("w/t");
  ASSERT_TRUE(listing.ok());
  ASSERT_EQ(listing->size(), 2u);
  EXPECT_TRUE((*listing)[0].is_directory);
  auto partition = fs.ListFiles("w/t/datestr=2017-03-02");
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->size(), 2u);
  EXPECT_FALSE((*partition)[0].is_directory);
}

TEST(MemoryFileSystemTest, MissingFilesReported) {
  MemoryFileSystem fs;
  EXPECT_EQ(fs.OpenForRead("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fs.GetFileInfo("nope").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(fs.Exists("nope"));
  EXPECT_EQ(fs.DeleteFile("nope").code(), StatusCode::kNotFound);
}

TEST(LocalFileSystemTest, RoundTripOnDisk) {
  LocalFileSystem fs;
  std::string dir = ::testing::TempDir() + "/presto_fs_test";
  std::string path = dir + "/sub/file.bin";
  ASSERT_TRUE(fs.WriteFile(path, Bytes("local-data")).ok());
  EXPECT_TRUE(fs.Exists(path));
  auto file = fs.OpenForRead(path);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(Str((*file)->ReadAll().value()), "local-data");
  auto listing = fs.ListFiles(dir);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
  EXPECT_TRUE(fs.DeleteFile(path).ok());
  EXPECT_FALSE(fs.Exists(path));
}

TEST(SimulatedHdfsTest, NameNodeLatencyCharged) {
  SimulatedClock clock;
  NameNodeLatency latency;
  latency.list_files_nanos = 1000;
  latency.get_file_info_nanos = 500;
  SimulatedHdfs hdfs(&clock, latency);
  ASSERT_TRUE(hdfs.WriteFile("d/f", Bytes("x")).ok());
  int64_t before = clock.NowNanos();
  ASSERT_TRUE(hdfs.ListFiles("d").ok());
  EXPECT_EQ(clock.NowNanos() - before, 1000);
  ASSERT_TRUE(hdfs.GetFileInfo("d/f").ok());
  EXPECT_EQ(clock.NowNanos() - before, 1500);
  EXPECT_EQ(hdfs.metrics().Get("fs.dir.list"), 1);
  EXPECT_EQ(hdfs.metrics().Get("fs.file.stat"), 1);
}

TEST(SimulatedHdfsTest, DegradedNameNodeMultipliesLatency) {
  SimulatedClock clock;
  NameNodeLatency latency;
  latency.list_files_nanos = 1000;
  latency.degraded_multiplier = 50;
  SimulatedHdfs hdfs(&clock, latency);
  ASSERT_TRUE(hdfs.WriteFile("d/f", Bytes("x")).ok());
  hdfs.SetDegraded(true);
  int64_t before = clock.NowNanos();
  ASSERT_TRUE(hdfs.ListFiles("d").ok());
  EXPECT_EQ(clock.NowNanos() - before, 50000);
}

TEST(S3ObjectStoreTest, PutGetRangeHead) {
  SimulatedClock clock;
  S3ObjectStore s3(&clock);
  ASSERT_TRUE(s3.PutObject("bucket/key", Bytes("0123456789")).ok());
  auto obj = s3.GetObject("bucket/key");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(Str(**obj), "0123456789");
  auto range = s3.GetRange("bucket/key", 2, 3);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(Str(*range), "234");
  EXPECT_EQ(s3.HeadObject("bucket/key")->size, 10u);
  EXPECT_EQ(s3.GetObject("missing").status().code(), StatusCode::kNotFound);
  EXPECT_GT(clock.NowNanos(), 0);
  EXPECT_EQ(s3.metrics().Get("s3.request.get"), 2);  // full GET + range GET
}

TEST(S3ObjectStoreTest, TransientFailuresInjected) {
  SimulatedClock clock;
  S3Config config;
  config.transient_failure_rate = 1.0;  // always fail
  S3ObjectStore s3(&clock, config);
  EXPECT_EQ(s3.PutObject("k", Bytes("v")).code(), StatusCode::kUnavailable);
  EXPECT_GT(s3.metrics().Get("s3.request.throttled"), 0);
}

TEST(S3ObjectStoreTest, MultipartAssemblesParts) {
  SimulatedClock clock;
  S3ObjectStore s3(&clock);
  auto id = s3.CreateMultipartUpload("big");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(s3.UploadPart(*id, 2, Bytes("world")).ok());
  ASSERT_TRUE(s3.UploadPart(*id, 1, Bytes("hello ")).ok());
  ASSERT_TRUE(s3.CompleteMultipartUpload(*id).ok());
  EXPECT_EQ(Str(**s3.GetObject("big")), "hello world");
  EXPECT_FALSE(s3.UploadPart("upload-999", 1, Bytes("x")).ok());
}

TEST(S3ObjectStoreTest, SelectCsvProjectsAndFilters) {
  SimulatedClock clock;
  S3ObjectStore s3(&clock);
  ASSERT_TRUE(
      s3.PutObject("t.csv", Bytes("1,SF,100\n2,NYC,200\n3,SF,300\n")).ok());
  auto selected = s3.SelectCsv("t.csv", {0, 2}, std::make_pair(1, std::string("SF")));
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(Str(*selected), "1,100\n3,300\n");
  // Bytes over the wire < object size; scanned bytes recorded separately.
  EXPECT_EQ(s3.metrics().Get("s3.object.bytes_read"), 12);  // projected bytes only
  EXPECT_EQ(s3.metrics().Get("s3.select.bytes_scanned"), 28);
}

TEST(PrestoS3FileSystemTest, ReadWriteThroughFacade) {
  SimulatedClock clock;
  S3ObjectStore s3(&clock);
  PrestoS3FileSystem fs(&s3, &clock);
  ASSERT_TRUE(fs.WriteFile("data/file1", Bytes("s3 payload")).ok());
  auto file = fs.OpenForRead("data/file1");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(Str((*file)->ReadAll().value()), "s3 payload");
  auto listing = fs.ListFiles("data");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
}

TEST(PrestoS3FileSystemTest, LazySeekAvoidsStreamReopens) {
  SimulatedClock clock;
  S3ObjectStore s3(&clock);
  std::vector<uint8_t> big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(s3.PutObject("obj", big).ok());

  PrestoS3Options lazy_options;
  lazy_options.lazy_seek = true;
  lazy_options.read_ahead_bytes = 64 * 1024;
  PrestoS3FileSystem lazy_fs(&s3, &clock, lazy_options);
  auto stream = lazy_fs.OpenStream("obj");
  ASSERT_TRUE(stream.ok());
  uint8_t buf[16];
  // Seek storm without reads: lazy defers every reopen.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*stream)->Seek(i * 1000).ok());
  }
  ASSERT_TRUE((*stream)->Read(buf, 16).ok());
  EXPECT_EQ(lazy_fs.metrics().Get("s3fs.stream.reopens"), 1);
  // Seeks within the read-ahead buffer cost nothing even with reads.
  ASSERT_TRUE((*stream)->Seek(49 * 1000 + 100).ok());
  ASSERT_TRUE((*stream)->Read(buf, 16).ok());
  EXPECT_EQ(lazy_fs.metrics().Get("s3fs.stream.reopens"), 1);

  PrestoS3Options eager_options = lazy_options;
  eager_options.lazy_seek = false;
  PrestoS3FileSystem eager_fs(&s3, &clock, eager_options);
  auto eager_stream = eager_fs.OpenStream("obj");
  ASSERT_TRUE(eager_stream.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*eager_stream)->Seek(i * 20000).ok());
  }
  EXPECT_GT(eager_fs.metrics().Get("s3fs.stream.reopens"), 10)
      << "eager seek reopens the stream on every long jump";
}

TEST(PrestoS3FileSystemTest, ExponentialBackoffRetriesTransientFailures) {
  SimulatedClock clock;
  S3Config config;
  config.transient_failure_rate = 0.5;
  S3ObjectStore s3(&clock, config);
  PrestoS3Options options;
  options.max_retries = 16;
  PrestoS3FileSystem fs(&s3, &clock, options);
  // With retries, all operations eventually succeed.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs.WriteFile("k" + std::to_string(i), Bytes("v")).ok());
  }
  EXPECT_GT(fs.metrics().Get("s3fs.request.retries"), 0);
  EXPECT_GT(fs.metrics().Get("s3fs.backoff.nanos"), 0);
}

TEST(PrestoS3FileSystemTest, BackoffGivesUpEventually) {
  SimulatedClock clock;
  S3Config config;
  config.transient_failure_rate = 1.0;
  S3ObjectStore s3(&clock, config);
  PrestoS3Options options;
  options.max_retries = 3;
  PrestoS3FileSystem fs(&s3, &clock, options);
  Status st = fs.WriteFile("k", Bytes("v"));
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
}

TEST(PrestoS3FileSystemTest, MultipartUploadForLargeObjects) {
  SimulatedClock clock;
  S3ObjectStore s3(&clock);
  PrestoS3Options options;
  options.multipart_threshold = 1024;
  options.part_size = 512;
  PrestoS3FileSystem fs(&s3, &clock, options);
  std::vector<uint8_t> big(3000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i % 251);
  ASSERT_TRUE(fs.WriteFile("big-object", big).ok());
  EXPECT_EQ(fs.metrics().Get("s3fs.multipart.uploads"), 1);
  EXPECT_EQ(s3.metrics().Get("s3.request.upload_part"), 6);  // ceil(3000/512)
  auto back = fs.OpenForRead("big-object");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->ReadAll().value(), big);
}

}  // namespace
}  // namespace presto
