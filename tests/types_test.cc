// Tests for the type system, Value semantics, and schema-evolution rules
// (paper Section V.A).

#include <gtest/gtest.h>

#include "presto/types/schema_evolution.h"
#include "presto/types/type.h"
#include "presto/types/value.h"

namespace presto {
namespace {

TEST(TypeTest, ScalarSingletonsShared) {
  EXPECT_EQ(Type::Bigint().get(), Type::Bigint().get());
  EXPECT_TRUE(Type::Bigint()->Equals(*Type::Bigint()));
  EXPECT_FALSE(Type::Bigint()->Equals(*Type::Double()));
}

TEST(TypeTest, RowTypeFields) {
  TypePtr row = Type::Row({"city_id", "status"}, {Type::Bigint(), Type::Varchar()});
  EXPECT_EQ(row->kind(), TypeKind::kRow);
  EXPECT_EQ(row->NumChildren(), 2u);
  EXPECT_EQ(row->field_name(0), "city_id");
  EXPECT_EQ(*row->FindField("status"), 1u);
  EXPECT_FALSE(row->FindField("missing").has_value());
}

TEST(TypeTest, ToStringNested) {
  TypePtr t = Type::Row(
      {"base", "tags"},
      {Type::Row({"city_id"}, {Type::Bigint()}), Type::Array(Type::Varchar())});
  EXPECT_EQ(t->ToString(),
            "ROW(base ROW(city_id BIGINT), tags ARRAY(VARCHAR))");
}

TEST(TypeTest, ParseRoundTripDeeplyNested) {
  // 5 levels of nesting, as in the paper's production schemas.
  TypePtr t = Type::Row(
      {"a"},
      {Type::Row({"b"},
                 {Type::Row({"c"},
                            {Type::Row({"d"}, {Type::Row({"e"}, {Type::Bigint()})})})})});
  auto parsed = Type::Parse(t->ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)->Equals(*t));
}

TEST(TypeTest, ParseMapAndArray) {
  auto parsed = Type::Parse("MAP(VARCHAR, ARRAY(DOUBLE))");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->kind(), TypeKind::kMap);
  EXPECT_EQ((*parsed)->map_value()->kind(), TypeKind::kArray);
}

TEST(TypeTest, ParseErrors) {
  EXPECT_FALSE(Type::Parse("NOPE").ok());
  EXPECT_FALSE(Type::Parse("ROW(x BIGINT").ok());
  EXPECT_FALSE(Type::Parse("BIGINT extra").ok());
  EXPECT_FALSE(Type::Parse("MAP(BIGINT)").ok());
}

TEST(ValueTest, NullOrdering) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossCompare) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.0).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, StringCompareAndHash) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
  EXPECT_NE(Value::String("x").Hash(), Value::String("y").Hash());
}

TEST(ValueTest, NestedEquality) {
  Value a = Value::Row({Value::Int(1), Value::Array({Value::String("t")})});
  Value b = Value::Row({Value::Int(1), Value::Array({Value::String("t")})});
  Value c = Value::Row({Value::Int(1), Value::Array({Value::String("u")})});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::Array({Value::Int(1), Value::Int(2)}).ToString(), "ARRAY[1, 2]");
  EXPECT_EQ(Value::Map({{Value::String("k"), Value::Int(1)}}).ToString(),
            "MAP{'k': 1}");
}

TEST(ValueTest, NegativeZeroHashesLikeZero) {
  EXPECT_EQ(Value::Double(0.0).Hash(), Value::Double(-0.0).Hash());
  EXPECT_EQ(Value::Double(0.0).Compare(Value::Double(-0.0)), 0);
}

// --- Schema evolution (paper Section V.A) ---------------------------------

TypePtr TripsSchemaV1() {
  return Type::Row(
      {"datestr", "base"},
      {Type::Varchar(),
       Type::Row({"driver_uuid", "city_id"}, {Type::Varchar(), Type::Bigint()})});
}

TEST(SchemaEvolutionTest, AddingFieldsAllowed) {
  TypePtr v2 = Type::Row(
      {"datestr", "base"},
      {Type::Varchar(),
       Type::Row({"driver_uuid", "city_id", "vehicle_id"},
                 {Type::Varchar(), Type::Bigint(), Type::Varchar()})});
  EXPECT_TRUE(ValidateEvolution(*TripsSchemaV1(), *v2).ok());
}

TEST(SchemaEvolutionTest, RemovingFieldsAllowed) {
  TypePtr v2 = Type::Row(
      {"datestr", "base"},
      {Type::Varchar(), Type::Row({"city_id"}, {Type::Bigint()})});
  EXPECT_TRUE(ValidateEvolution(*TripsSchemaV1(), *v2).ok());
}

TEST(SchemaEvolutionTest, TypeChangeRejected) {
  TypePtr v2 = Type::Row(
      {"datestr", "base"},
      {Type::Varchar(),
       Type::Row({"driver_uuid", "city_id"},
                 {Type::Varchar(), Type::Varchar()})});  // BIGINT -> VARCHAR
  Status s = ValidateEvolution(*TripsSchemaV1(), *v2);
  EXPECT_EQ(s.code(), StatusCode::kSchemaViolation);
  EXPECT_NE(s.message().find("base.city_id"), std::string::npos);
}

TEST(SchemaEvolutionTest, NestedTypeChangeRejectedDeep) {
  TypePtr old_schema = Type::Row(
      {"a"}, {Type::Row({"b"}, {Type::Row({"c"}, {Type::Bigint()})})});
  TypePtr new_schema = Type::Row(
      {"a"}, {Type::Row({"b"}, {Type::Row({"c"}, {Type::Double()})})});
  EXPECT_EQ(ValidateEvolution(*old_schema, *new_schema).code(),
            StatusCode::kSchemaViolation);
}

TEST(SchemaEvolutionTest, RegistryTracksVersions) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.RegisterTable("trips", TripsSchemaV1()).ok());
  EXPECT_EQ(*registry.CurrentVersion("trips"), 1u);

  TypePtr v2 = Type::Row(
      {"datestr", "base", "tip"},
      {Type::Varchar(),
       Type::Row({"driver_uuid", "city_id"}, {Type::Varchar(), Type::Bigint()}),
       Type::Double()});
  ASSERT_TRUE(registry.EvolveTable("trips", v2).ok());
  EXPECT_EQ(*registry.CurrentVersion("trips"), 2u);
  EXPECT_TRUE((*registry.SchemaAtVersion("trips", 1))->Equals(*TripsSchemaV1()));
  EXPECT_TRUE((*registry.CurrentSchema("trips"))->Equals(*v2));
}

TEST(SchemaEvolutionTest, RegistryRejectsRename) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.RegisterTable("trips", TripsSchemaV1()).ok());
  Status s = registry.EvolveTable("trips", TripsSchemaV1(), {"base.driver_uuid"});
  EXPECT_EQ(s.code(), StatusCode::kSchemaViolation);
}

TEST(SchemaEvolutionTest, RegistryRejectsDuplicateAndUnknown) {
  SchemaRegistry registry;
  ASSERT_TRUE(registry.RegisterTable("t", TripsSchemaV1()).ok());
  EXPECT_EQ(registry.RegisterTable("t", TripsSchemaV1()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.CurrentSchema("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaEvolutionTest, ReadCompatibility) {
  // File written with v1, table evolved to add a field: compatible.
  TypePtr table = Type::Row(
      {"datestr", "base"},
      {Type::Varchar(),
       Type::Row({"driver_uuid", "city_id", "new_field"},
                 {Type::Varchar(), Type::Bigint(), Type::Double()})});
  EXPECT_TRUE(CheckReadCompatible(*table, *TripsSchemaV1()).ok());

  // File has a conflicting type for a shared field: incompatible.
  TypePtr bad_file = Type::Row(
      {"datestr", "base"},
      {Type::Bigint(),
       Type::Row({"driver_uuid", "city_id"}, {Type::Varchar(), Type::Bigint()})});
  EXPECT_FALSE(CheckReadCompatible(*table, *bad_file).ok());
}

}  // namespace
}  // namespace presto
