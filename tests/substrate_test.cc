// Tests for the storage substrates: mini-Druid (rollup, inverted indexes,
// native queries), mini-MySQL (scan pushdowns, update/delete), and the
// file-list / footer caches.

#include <gtest/gtest.h>

#include "presto/cache/file_list_cache.h"
#include "presto/cache/footer_cache.h"
#include "presto/druid/druid_store.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/lakefile/writer.h"
#include "presto/mysqlite/mysqlite.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// ---------------------------------------------------------------------------
// Mini-Druid
// ---------------------------------------------------------------------------

std::unique_ptr<druid::DruidStore> MakeEventsStore() {
  auto store_ptr = std::make_unique<druid::DruidStore>();
  druid::DruidStore& store = *store_ptr;
  druid::DatasourceSchema schema;
  schema.dimensions = {"country", "device"};
  schema.metrics = {"revenue"};
  schema.granularity_millis = 3600000;  // hourly
  EXPECT_TRUE(store.CreateDatasource("events", schema).ok());
  std::vector<druid::DruidRow> rows;
  // Two events in the same hour/dims collapse by rollup.
  rows.push_back({1000, {"US", "ios"}, {10.0}});
  rows.push_back({2000, {"US", "ios"}, {5.0}});
  rows.push_back({1000, {"US", "android"}, {7.0}});
  rows.push_back({3600000 + 1000, {"JP", "ios"}, {3.0}});
  EXPECT_TRUE(store.Ingest("events", rows).ok());
  return store_ptr;
}

TEST(DruidStoreTest, RollupCollapsesSameBucketAndDims) {
  auto store_ptr = MakeEventsStore();
  druid::DruidStore& store = *store_ptr;
  druid::DruidQuery scan;
  scan.datasource = "events";
  auto result = store.Execute(scan);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);  // 4 events -> 3 rolled-up rows
  EXPECT_EQ(store.metrics().Get("druid.ingest.events"), 4);
  EXPECT_EQ(store.metrics().Get("druid.ingest.rows_after_rollup"), 3);
}

TEST(DruidStoreTest, GroupByWithSum) {
  auto store_ptr = MakeEventsStore();
  druid::DruidStore& store = *store_ptr;
  druid::DruidQuery query;
  query.datasource = "events";
  query.dimensions = {"country"};
  query.aggregations = {{"total", druid::AggKind::kSum, "revenue"},
                        {"n", druid::AggKind::kCount, ""}};
  auto result = store.Execute(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);  // JP, US (sorted)
  EXPECT_EQ(result->rows[0][0], Value::String("JP"));
  EXPECT_EQ(result->rows[0][1], Value::Double(3.0));
  EXPECT_EQ(result->rows[1][0], Value::String("US"));
  EXPECT_EQ(result->rows[1][1], Value::Double(22.0));
  EXPECT_EQ(result->rows[1][2], Value::Int(2));  // rolled-up rows
}

TEST(DruidStoreTest, DimensionFilterUsesInvertedIndex) {
  auto store_ptr = MakeEventsStore();
  druid::DruidStore& store = *store_ptr;
  druid::DruidQuery query;
  query.datasource = "events";
  query.filters = {{"device", {"ios"}}};
  query.aggregations = {{"total", druid::AggKind::kSum, "revenue"}};
  auto result = store.Execute(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Double(18.0));
  EXPECT_EQ(result->rows_scanned, 2) << "only index-matched rows visited";
}

TEST(DruidStoreTest, TimeIntervalPruning) {
  auto store_ptr = MakeEventsStore();
  druid::DruidStore& store = *store_ptr;
  druid::DruidQuery query;
  query.datasource = "events";
  query.interval = {3600000, INT64_MAX};
  query.aggregations = {{"total", druid::AggKind::kSum, "revenue"}};
  auto result = store.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0], Value::Double(3.0));
}

TEST(DruidStoreTest, MinMaxAndLimit) {
  auto store_ptr = MakeEventsStore();
  druid::DruidStore& store = *store_ptr;
  druid::DruidQuery query;
  query.datasource = "events";
  query.dimensions = {"country", "device"};
  query.aggregations = {{"hi", druid::AggKind::kMax, "revenue"},
                        {"lo", druid::AggKind::kMin, "revenue"}};
  query.limit = 2;
  auto result = store.Execute(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);

  druid::DruidQuery scan;
  scan.datasource = "events";
  scan.limit = 1;
  auto scanned = store.Execute(scan);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->rows.size(), 1u);
}

TEST(DruidStoreTest, ErrorsSurfaceCleanly) {
  auto store_ptr = MakeEventsStore();
  druid::DruidStore& store = *store_ptr;
  druid::DruidQuery query;
  query.datasource = "nope";
  EXPECT_EQ(store.Execute(query).status().code(), StatusCode::kNotFound);
  query.datasource = "events";
  query.aggregations = {{"x", druid::AggKind::kSum, "no_metric"}};
  EXPECT_FALSE(store.Execute(query).ok());
  EXPECT_FALSE(store.Ingest("events", {{0, {"only-one-dim"}, {1.0}}}).ok());
}

TEST(DruidStoreTest, TableTypeExposesAllColumns) {
  auto store_ptr = MakeEventsStore();
  druid::DruidStore& store = *store_ptr;
  auto type = store.TableType("events");
  ASSERT_TRUE(type.ok());
  EXPECT_EQ((*type)->ToString(),
            "ROW(__time TIMESTAMP, country VARCHAR, device VARCHAR, "
            "revenue DOUBLE, rollup_count BIGINT)");
}

// ---------------------------------------------------------------------------
// Mini-MySQL
// ---------------------------------------------------------------------------

std::unique_ptr<mysqlite::MySqlLite> MakeUsersDb() {
  auto db_ptr = std::make_unique<mysqlite::MySqlLite>();
  mysqlite::MySqlLite& db = *db_ptr;
  TypePtr type = Type::Row({"id", "name", "region"},
                           {Type::Bigint(), Type::Varchar(), Type::Varchar()});
  EXPECT_TRUE(db.CreateTable("app", "users", type).ok());
  EXPECT_TRUE(db.Insert("app", "users",
                        {{Value::Int(1), Value::String("ann"), Value::String("us")},
                         {Value::Int(2), Value::String("bob"), Value::String("eu")},
                         {Value::Int(3), Value::String("cat"), Value::String("us")}})
                  .ok());
  return db_ptr;
}

TEST(MySqlLiteTest, ScanWithPushdowns) {
  auto db_ptr = MakeUsersDb();
  mysqlite::MySqlLite& db = *db_ptr;
  mysqlite::ScanRequest request;
  request.columns = {"name"};
  request.predicates = {{"region", mysqlite::CompareOp::kEq, {Value::String("us")}}};
  request.limit = 1;
  auto result = db.Scan("app", "users", request);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::String("ann"));
  EXPECT_EQ(result->column_names, std::vector<std::string>{"name"});
}

TEST(MySqlLiteTest, InPredicate) {
  auto db_ptr = MakeUsersDb();
  mysqlite::MySqlLite& db = *db_ptr;
  mysqlite::ScanRequest request;
  request.predicates = {{"id", mysqlite::CompareOp::kIn,
                         {Value::Int(1), Value::Int(3)}}};
  auto result = db.Scan("app", "users", request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST(MySqlLiteTest, UpdateAndDelete) {
  auto db_ptr = MakeUsersDb();
  mysqlite::MySqlLite& db = *db_ptr;
  auto updated = db.Update("app", "users",
                           {{"region", mysqlite::CompareOp::kEq, {Value::String("us")}}},
                           {{"region", Value::String("na")}});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 2);
  auto deleted = db.Delete("app", "users",
                           {{"id", mysqlite::CompareOp::kGt, {Value::Int(1)}}});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(*deleted, 2);
  mysqlite::ScanRequest all;
  EXPECT_EQ(db.Scan("app", "users", all)->rows.size(), 1u);
}

TEST(MySqlLiteTest, ErrorsSurfaceCleanly) {
  auto db_ptr = MakeUsersDb();
  mysqlite::MySqlLite& db = *db_ptr;
  EXPECT_EQ(db.Scan("app", "missing", {}).status().code(), StatusCode::kNotFound);
  mysqlite::ScanRequest bad_col;
  bad_col.columns = {"nope"};
  EXPECT_FALSE(db.Scan("app", "users", bad_col).ok());
  EXPECT_FALSE(db.Insert("app", "users", {{Value::Int(1)}}).ok());
  EXPECT_FALSE(db.CreateTable("app", "users",
                              Type::Row({"x"}, {Type::Bigint()}))
                   .ok())
      << "duplicate table";
  EXPECT_FALSE(db.CreateTable("app", "nested",
                              Type::Row({"x"}, {Type::Array(Type::Bigint())}))
                   .ok())
      << "mysqlite is scalar-only";
}

// ---------------------------------------------------------------------------
// Caches
// ---------------------------------------------------------------------------

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.Put("a", std::make_shared<const int>(1));
  cache.Put("b", std::make_shared<const int>(2));
  ASSERT_TRUE(cache.Get("a").has_value());  // a becomes most recent
  cache.Put("c", std::make_shared<const int>(3));
  EXPECT_FALSE(cache.Get("b").has_value()) << "b was least recently used";
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.metrics().Get("cache.evictions"), 1);
}

TEST(FileListCacheTest, CachesSealedSkipsOpenPartitions) {
  SimulatedClock clock;
  SimulatedHdfs hdfs(&clock);
  ASSERT_TRUE(hdfs.WriteFile("t/sealed=1/f1", {1}).ok());
  ASSERT_TRUE(hdfs.WriteFile("t/open=1/f1", {1}).ok());
  FileListCache cache;

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cache.List(&hdfs, "t/sealed=1", /*sealed=*/true).ok());
    ASSERT_TRUE(cache.List(&hdfs, "t/open=1", /*sealed=*/false).ok());
  }
  EXPECT_EQ(hdfs.metrics().Get("fs.dir.list"), 1 + 10)
      << "sealed listed once, open listed every time for freshness";

  // Open partitions observe newly ingested files immediately.
  ASSERT_TRUE(hdfs.WriteFile("t/open=1/f2", {1}).ok());
  auto listing = cache.List(&hdfs, "t/open=1", false);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ((*listing)->size(), 2u);
}

TEST(FileListCacheTest, InvalidateForcesRelist) {
  SimulatedClock clock;
  SimulatedHdfs hdfs(&clock);
  ASSERT_TRUE(hdfs.WriteFile("t/p/f1", {1}).ok());
  FileListCache cache;
  ASSERT_TRUE(cache.List(&hdfs, "t/p", true).ok());
  cache.Invalidate("t/p");
  ASSERT_TRUE(cache.List(&hdfs, "t/p", true).ok());
  EXPECT_EQ(hdfs.metrics().Get("fs.dir.list"), 2);
}

TEST(FooterCacheTest, FooterAndHandleHits) {
  SimulatedClock clock;
  SimulatedHdfs hdfs(&clock);
  TypePtr schema = Type::Row({"x"}, {Type::Bigint()});
  VectorBuilder b(Type::Bigint());
  for (int i = 0; i < 10; ++i) b.AppendBigint(i);
  auto bytes = lakefile::WriteLakeFile(schema, {Page({b.Build()})});
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(hdfs.WriteFile("w/t/f1", *bytes).ok());

  FooterCache cache;
  for (int i = 0; i < 10; ++i) {
    auto footer = cache.GetFooter(&hdfs, "w/t/f1");
    ASSERT_TRUE(footer.ok());
    EXPECT_EQ((*footer)->num_rows, 10u);
  }
  // 90%+ of opens are eliminated: one real open for ten requests.
  EXPECT_EQ(hdfs.metrics().Get("fs.file.open_read"), 1);
  EXPECT_EQ(cache.footer_metrics().Get("cache.footer.hits"), 9);
  EXPECT_EQ(cache.footer_metrics().Get("cache.footer.misses"), 1);
}

}  // namespace
}  // namespace presto
