// Tracing-layer tests: log-bucketed histograms (bucketing, percentiles,
// cross-registry merge, sorted Prometheus rendering), blocked-time cells and
// timers, the TraceRecorder span tree, Chrome trace-event JSON round-trip,
// and end-to-end traced execution of a staged spilling query whose
// per-operator spans must reconcile exactly with OperatorStats.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "presto/cluster/cluster.h"
#include "presto/common/metrics.h"
#include "presto/common/trace.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(TraceTest, HistogramBucketing) {
  using H = MetricsRegistry::Histogram;
  EXPECT_EQ(H::BucketFor(-5), 0);
  EXPECT_EQ(H::BucketFor(0), 0);
  EXPECT_EQ(H::BucketFor(1), 1);
  EXPECT_EQ(H::BucketFor(2), 2);
  EXPECT_EQ(H::BucketFor(3), 2);
  EXPECT_EQ(H::BucketFor(4), 3);
  EXPECT_EQ(H::BucketFor(1023), 10);
  EXPECT_EQ(H::BucketFor(1024), 11);
  EXPECT_EQ(H::BucketFor(INT64_MAX), 63);

  EXPECT_EQ(H::BucketUpperBound(0), 0);
  EXPECT_EQ(H::BucketUpperBound(1), 1);
  EXPECT_EQ(H::BucketUpperBound(2), 3);
  EXPECT_EQ(H::BucketUpperBound(10), 1023);
  EXPECT_EQ(H::BucketUpperBound(63), INT64_MAX);

  // Every positive value lands in the bucket whose bound covers it.
  for (int64_t v : {1LL, 2LL, 7LL, 100LL, 65536LL, (1LL << 40) + 17}) {
    int b = H::BucketFor(v);
    EXPECT_LE(v, H::BucketUpperBound(b)) << v;
    EXPECT_GT(v, H::BucketUpperBound(b - 1)) << v;
  }
}

TEST(TraceTest, HistogramPercentilesAndReset) {
  MetricsRegistry registry;
  // 90 fast samples (~100) and 10 slow ones (~100000): p50 must answer from
  // the fast bucket, p99 from the slow one.
  for (int i = 0; i < 90; ++i) registry.RecordHistogram("lat", 100);
  for (int i = 0; i < 10; ++i) registry.RecordHistogram("lat", 100000);

  auto snapshots = registry.SnapshotHistograms();
  ASSERT_EQ(snapshots.count("lat"), 1u);
  const auto& snap = snapshots.at("lat");
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.sum, 90 * 100 + 10 * 100000);
  EXPECT_EQ(snap.Percentile(0.5),
            MetricsRegistry::Histogram::BucketUpperBound(
                MetricsRegistry::Histogram::BucketFor(100)));
  EXPECT_EQ(snap.Percentile(0.99),
            MetricsRegistry::Histogram::BucketUpperBound(
                MetricsRegistry::Histogram::BucketFor(100000)));
  EXPECT_GT(snap.Percentile(0.99), snap.Percentile(0.5));
  // Degenerate quantiles clamp to the sample range.
  EXPECT_EQ(snap.Percentile(0.0), snap.Percentile(0.01));
  EXPECT_EQ(MetricsRegistry::HistogramSnapshot{}.Percentile(0.5), 0);

  registry.Reset();
  EXPECT_EQ(registry.SnapshotHistograms().at("lat").count, 0);
}

TEST(TraceTest, HistogramMergeAcrossSnapshots) {
  MetricsRegistry a, b;
  for (int i = 0; i < 50; ++i) a.RecordHistogram("lat", 10);
  for (int i = 0; i < 50; ++i) b.RecordHistogram("lat", 1000000);

  auto merged = a.SnapshotHistograms().at("lat");
  merged.Merge(b.SnapshotHistograms().at("lat"));
  EXPECT_EQ(merged.count, 100);
  // Half the mass is slow, so the median sits at the fast bucket's bound and
  // p95 at the slow one's.
  EXPECT_LE(merged.Percentile(0.5), 15);
  EXPECT_GE(merged.Percentile(0.95), 1000000);
}

TEST(TraceTest, RenderTextSortedAndHistogramExposition) {
  MetricsRegistry registry;
  registry.Increment("zebra.count", 3);
  registry.Increment("alpha.count", 1);
  registry.RecordHistogram("middle.latency", 500);

  std::string text = registry.RenderText();
  size_t alpha = text.find("alpha_count 1");
  size_t middle = text.find("# TYPE middle_latency summary");
  size_t zebra = text.find("zebra_count 3");
  ASSERT_NE(alpha, std::string::npos) << text;
  ASSERT_NE(middle, std::string::npos) << text;
  ASSERT_NE(zebra, std::string::npos) << text;
  // Deterministic: counters and histograms interleave in sorted name order.
  EXPECT_LT(alpha, middle);
  EXPECT_LT(middle, zebra);
  EXPECT_NE(text.find("middle_latency{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("middle_latency{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(text.find("middle_latency{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("middle_latency_sum 500"), std::string::npos);
  EXPECT_NE(text.find("middle_latency_count 1"), std::string::npos);

  // Two renders are byte-identical (the original motivation: test-diffable).
  EXPECT_EQ(text, registry.RenderText());

  // The exposition merges same-named histograms bucket-wise across sources.
  MetricsRegistry other;
  other.RecordHistogram("middle.latency", 500);
  MetricsExposition exposition;
  exposition.AddRegistry("", &registry);
  exposition.AddRegistry("", &other);
  std::string merged = exposition.RenderText();
  EXPECT_NE(merged.find("middle_latency_count 2"), std::string::npos) << merged;
  EXPECT_NE(merged.find("middle_latency_sum 1000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Blocked-time cells
// ---------------------------------------------------------------------------

TEST(TraceTest, BlockedTimerAccumulatesIntoThreadCell) {
  BlockedCounters before = ThreadBlockedCounters();
  {
    BlockedTimer timer(BlockedKind::kSpillIo);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  AddThreadSpillWriteBytes(123);
  BlockedCounters delta = ThreadBlockedCounters().Delta(before);
  EXPECT_GE(delta.nanos[static_cast<int>(BlockedKind::kSpillIo)], 1'000'000);
  EXPECT_EQ(delta.nanos[static_cast<int>(BlockedKind::kExchangeWait)], 0);
  EXPECT_EQ(delta.spill_write_bytes, 123);

  // Accumulate folds a delta (the RunParallel carry path) additively.
  BlockedCounters cell;
  cell.Accumulate(delta);
  cell.Accumulate(delta);
  EXPECT_EQ(cell.spill_write_bytes, 246);
  EXPECT_EQ(cell.nanos[static_cast<int>(BlockedKind::kSpillIo)],
            2 * delta.nanos[static_cast<int>(BlockedKind::kSpillIo)]);
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TEST(TraceTest, RecorderSpanTreeAndArgs) {
  TraceRecorder recorder;
  int64_t query = recorder.BeginSpan(TraceKind::kQuery, "query#1", 0);
  int64_t stage = recorder.BeginSpan(TraceKind::kStage, "stage#0", query);
  int64_t op = recorder.BeginSpan(TraceKind::kOperator, "TableScan#3", stage);
  recorder.SetArg(op, "output_rows", 42);
  recorder.EndSpanWithArgs(op, {{"wall_nanos", 1000}, {"output_rows", 43}});
  recorder.EndSpan(stage);
  recorder.EndSpan(query);
  // Ending twice is a no-op, not a corruption.
  recorder.EndSpan(stage);

  std::vector<TraceSpan> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].id, query);
  EXPECT_EQ(spans[0].parent_id, 0);
  EXPECT_EQ(spans[1].parent_id, query);
  EXPECT_EQ(spans[2].parent_id, stage);
  EXPECT_EQ(spans[2].name, "TableScan#3");
  EXPECT_EQ(spans[2].args.at("output_rows"), 43) << "EndSpanWithArgs wins";
  EXPECT_EQ(spans[2].args.at("wall_nanos"), 1000);
  for (const TraceSpan& span : spans) {
    EXPECT_GT(span.end_nanos, 0) << span.name;
    EXPECT_GE(span.end_nanos, span.start_nanos);
  }
}

TEST(TraceTest, RecorderDropsSpansPastCap) {
  TraceRecorder recorder(/*max_spans=*/3);
  EXPECT_GT(recorder.BeginSpan(TraceKind::kQuery, "a", 0), 0);
  EXPECT_GT(recorder.BeginSpan(TraceKind::kStage, "b", 1), 0);
  EXPECT_GT(recorder.BeginSpan(TraceKind::kTask, "c", 2), 0);
  EXPECT_EQ(recorder.BeginSpan(TraceKind::kOperator, "d", 3), 0);
  EXPECT_EQ(recorder.BeginSpan(TraceKind::kOperator, "e", 3), 0);
  EXPECT_EQ(recorder.dropped_spans(), 2);
  EXPECT_EQ(recorder.Snapshot().size(), 3u);
  // Operations on the dropped id 0 are no-ops.
  recorder.EndSpan(0);
  recorder.SetArg(0, "x", 1);
}

TEST(TraceTest, ChromeJsonRoundTrip) {
  TraceRecorder recorder;
  int64_t query = recorder.BeginSpan(TraceKind::kQuery, "query#7", 0);
  int64_t op =
      recorder.BeginSpan(TraceKind::kOperator, "Filter \"x\\y\"", query);
  recorder.EndSpanWithArgs(op, {{"output_rows", 5}});
  int64_t open = recorder.BeginSpan(TraceKind::kSpillWrite, "spill", op);
  recorder.EndSpan(query);

  std::string json = recorder.ToChromeTraceJson(/*pid=*/7, "deadbeef");
  auto parsed = ParseChromeTraceJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  EXPECT_EQ(parsed->trace_id, "deadbeef");
  ASSERT_EQ(parsed->events.size(), 3u);
  bool saw_filter = false;
  for (const ChromeTraceEvent& event : parsed->events) {
    EXPECT_EQ(event.ph, "X");
    EXPECT_EQ(event.pid, 7);
    EXPECT_GE(event.dur_micros, 0);
    EXPECT_GT(event.args.count("span_id"), 0u);
    if (event.args.at("span_id") == op) {
      saw_filter = true;
      EXPECT_EQ(event.name, "Filter \"x\\y\"") << "escapes round-trip";
      EXPECT_EQ(event.args.at("parent_id"), query);
      EXPECT_EQ(event.args.at("output_rows"), 5);
    }
    if (event.args.at("span_id") == open) {
      // Open spans render as still-running at snapshot time.
      EXPECT_GE(event.dur_micros, 0);
    }
  }
  EXPECT_TRUE(saw_filter);
}

TEST(TraceTest, ChromeJsonParserRejectsMalformed) {
  EXPECT_FALSE(ParseChromeTraceJson("").ok());
  EXPECT_FALSE(ParseChromeTraceJson("{").ok());
  EXPECT_FALSE(ParseChromeTraceJson("{\"traceEvents\": 5}").ok());
  EXPECT_FALSE(ParseChromeTraceJson("{\"traceEvents\": [{}]}").ok())
      << "events must carry ph/name";
  EXPECT_FALSE(
      ParseChromeTraceJson(
          "{\"traceEvents\": [{\"name\":\"x\",\"ph\":\"B\"}]}")
          .ok())
      << "only complete (X) events are valid here";
  EXPECT_TRUE(ParseChromeTraceJson("{\"traceEvents\": []}").ok());
}

// ---------------------------------------------------------------------------
// End-to-end traced execution
// ---------------------------------------------------------------------------

// A facts table big enough that a two-key group-by under a 64 KiB query cap
// must spill, and wide enough in key cardinality to shuffle real data.
std::shared_ptr<MemoryConnector> MakeFactsConnector() {
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr t = Type::Row({"k", "w", "v"},
                        {Type::Bigint(), Type::Varchar(), Type::Bigint()});
  EXPECT_TRUE(memory->CreateTable("default", "facts", t).ok());
  const std::vector<std::string> words = {"ash", "birch", "cedar", "dogwood",
                                          "elm", "fir", "ginkgo", "hazel"};
  uint64_t state = 99;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int p = 0; p < 16; ++p) {
    const size_t n = 512;
    std::vector<int64_t> k(n), v(n);
    std::vector<std::string> w(n);
    for (size_t i = 0; i < n; ++i) {
      k[i] = static_cast<int64_t>(next() % 701);
      w[i] = words[next() % words.size()];
      v[i] = static_cast<int64_t>(next() % 1000);
    }
    EXPECT_TRUE(
        memory
            ->AppendPage("default", "facts",
                         Page({MakeBigintVector(std::move(k)),
                               std::make_shared<StringVector>(
                                   Type::Varchar(), std::move(w),
                                   std::vector<uint8_t>{}),
                               MakeBigintVector(std::move(v))}))
            .ok());
  }
  return memory;
}

struct TraceCluster {
  explicit TraceCluster(const std::string& name)
      : cluster(name, /*num_workers=*/2, /*slots_per_worker=*/2) {
    EXPECT_TRUE(
        cluster.catalogs().RegisterCatalog("memory", MakeFactsConnector()).ok());
  }
  PrestoCluster* operator->() { return &cluster; }
  PrestoCluster cluster;
};

constexpr const char* kSpillingGroupBy =
    "SELECT k, w, count(*), sum(v) FROM facts GROUP BY k, w";

Session TracedSpillSession() {
  Session session;
  session.properties["query_trace"] = "true";
  session.properties["query_max_memory"] = "65536";
  session.properties["spill_path"] = "/tmp/presto_trace_test";
  return session;
}

TEST(TraceClusterTest, TracedSpillingQuerySpanTreeIsWellFormed) {
  TraceCluster cluster("trace-tree");
  auto result = cluster->Execute(kSpillingGroupBy, TracedSpillSession());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->exec_metrics["spill.run.written"], 0)
      << "the 64 KiB cap must force spilling for this test to bite";

  ASSERT_FALSE(result->trace_id.empty());
  ASSERT_FALSE(result->trace_spans.empty());

  // Exactly one root (the query span); every other span's parent exists.
  std::set<int64_t> ids;
  for (const TraceSpan& span : result->trace_spans) {
    EXPECT_TRUE(ids.insert(span.id).second) << "duplicate span id " << span.id;
  }
  int roots = 0;
  std::map<int64_t, const TraceSpan*> by_id;
  for (const TraceSpan& span : result->trace_spans) by_id[span.id] = &span;
  std::map<TraceKind, int> kinds;
  for (const TraceSpan& span : result->trace_spans) {
    kinds[span.kind]++;
    if (span.parent_id == 0) {
      ++roots;
      EXPECT_EQ(span.kind, TraceKind::kQuery);
    } else {
      ASSERT_EQ(ids.count(span.parent_id), 1u)
          << "orphan span " << span.name << " parent " << span.parent_id;
      // Children start within their parent (spans are closed bottom-up, so a
      // closed parent also bounds the child's end).
      const TraceSpan& parent = *by_id[span.parent_id];
      EXPECT_GE(span.start_nanos, parent.start_nanos) << span.name;
      if (span.end_nanos != 0 && parent.end_nanos != 0) {
        EXPECT_LE(span.end_nanos, parent.end_nanos)
            << span.name << " escapes " << parent.name;
      }
    }
    EXPECT_NE(span.end_nanos, 0) << span.name << " left open";
  }
  EXPECT_EQ(roots, 1);

  // The taxonomy shows up: stages, tasks, operators, and — because the query
  // spilled under a multi-stage plan — spill I/O spans.
  EXPECT_GT(kinds[TraceKind::kStage], 1) << "multi-stage plan expected";
  EXPECT_GT(kinds[TraceKind::kTask], 1);
  EXPECT_GT(kinds[TraceKind::kOperator], 0);
  EXPECT_GT(kinds[TraceKind::kSpillWrite], 0);
  EXPECT_GT(kinds[TraceKind::kSpillRead], 0);

  // Journal correlation: every event of this query carries the trace id.
  auto events = cluster->coordinator().journal().EventsForQuery(result->query_id);
  ASSERT_FALSE(events.empty());
  for (const QueryEvent& event : events) {
    EXPECT_EQ(event.trace_id, result->trace_id) << event.ToString();
  }
}

TEST(TraceClusterTest, OperatorSpansReconcileWithOperatorStats) {
  TraceCluster cluster("trace-reconcile");
  auto result = cluster->Execute(kSpillingGroupBy, TracedSpillSession());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Sum every operator span's closing args per plan node; the totals must
  // equal the merged OperatorStats exactly — the span args are stamped from
  // the same stats_ struct the collector merges.
  struct Totals {
    int64_t rows = 0, wall = 0, cpu = 0;
    int64_t exchange_wait = 0, spill_io = 0, memory_wait = 0, queued = 0;
    int64_t spill_write = 0, spill_read = 0;
    int instances = 0;
  };
  std::map<int, Totals> per_node;
  for (const TraceSpan& span : result->trace_spans) {
    if (span.kind != TraceKind::kOperator) continue;
    ASSERT_GT(span.args.count("plan_node_id"), 0u) << span.name;
    Totals& t = per_node[static_cast<int>(span.args.at("plan_node_id"))];
    t.rows += span.args.at("output_rows");
    t.wall += span.args.at("wall_nanos");
    t.cpu += span.args.at("cpu_nanos");
    t.exchange_wait += span.args.at("exchange_wait_nanos");
    t.spill_io += span.args.at("spill_io_nanos");
    t.memory_wait += span.args.at("memory_wait_nanos");
    t.queued += span.args.at("queued_nanos");
    t.spill_write += span.args.at("spill_write_bytes");
    t.spill_read += span.args.at("spill_read_bytes");
    t.instances += 1;
  }
  ASSERT_FALSE(per_node.empty());
  int64_t total_spill_io = 0;
  for (const auto& [node_id, op] : result->stats.operators) {
    auto it = per_node.find(node_id);
    if (it == per_node.end()) {
      // An instance whose Next() was never reached records no span — and
      // must then also have recorded no work.
      EXPECT_EQ(op.output_rows, 0) << op.operator_type;
      continue;
    }
    const Totals& t = it->second;
    EXPECT_EQ(t.rows, op.output_rows) << op.operator_type;
    EXPECT_EQ(t.wall, op.wall_nanos) << op.operator_type;
    EXPECT_EQ(t.cpu, op.cpu_nanos) << op.operator_type;
    EXPECT_EQ(t.exchange_wait, op.exchange_wait_nanos) << op.operator_type;
    EXPECT_EQ(t.spill_io, op.spill_io_nanos) << op.operator_type;
    EXPECT_EQ(t.memory_wait, op.memory_wait_nanos) << op.operator_type;
    EXPECT_EQ(t.queued, 0) << "operator-level queued time must be zero";
    EXPECT_EQ(t.spill_write, op.spill_write_bytes) << op.operator_type;
    EXPECT_EQ(t.spill_read, op.spill_read_bytes) << op.operator_type;
    EXPECT_EQ(t.instances, op.num_instances) << op.operator_type;
    total_spill_io += t.spill_io;
  }
  EXPECT_GT(total_spill_io, 0) << "spilling query must attribute spill I/O";

  // The spilling aggregation accounts its spill volume both ways.
  bool saw_spilling_agg = false;
  for (const auto& [node_id, op] : result->stats.operators) {
    if (op.spilled_runs > 0) {
      saw_spilling_agg = true;
      EXPECT_GT(op.spill_write_bytes, 0) << op.operator_type;
      EXPECT_GT(op.spill_read_bytes, 0) << op.operator_type;
      EXPECT_GT(op.spill_io_nanos, 0) << op.operator_type;
    }
  }
  EXPECT_TRUE(saw_spilling_agg);
}

TEST(TraceClusterTest, ChromeTraceJsonDumpsAndExplainAnalyzeBreakdown) {
  TraceCluster cluster("trace-dump");
  auto result = cluster->Execute(kSpillingGroupBy, TracedSpillSession());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_FALSE(result->trace_json.empty());
  auto parsed = ParseChromeTraceJson(result->trace_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->trace_id, result->trace_id);
  EXPECT_EQ(parsed->events.size(), result->trace_spans.size());
  for (const ChromeTraceEvent& event : parsed->events) {
    EXPECT_EQ(event.pid, result->query_id);
    EXPECT_GE(event.ts_micros, 0);
  }

  // EXPLAIN ANALYZE: per-operator blocked-time breakdown and spill volume.
  auto analyzed = cluster->Execute(
      std::string("EXPLAIN ANALYZE ") + kSpillingGroupBy, TracedSpillSession());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_EQ(analyzed->total_rows, 1);
  std::string text = analyzed->Row(0)[0].ToString();
  EXPECT_NE(text.find("blocked: exch"), std::string::npos) << text;
  EXPECT_NE(text.find("spill-io"), std::string::npos);
  EXPECT_NE(text.find("wrote"), std::string::npos)
      << "spill bytes written missing:\n" << text;
  EXPECT_NE(text.find("read"), std::string::npos);

  // Latency histograms export non-zero tail quantiles after real queries.
  std::string metrics = cluster->RenderMetricsText();
  for (const char* name :
       {"query_latency_micros", "stage_latency_micros",
        "operator_latency_micros"}) {
    for (const char* q : {"0.5", "0.95", "0.99"}) {
      std::string needle =
          std::string(name) + "{quantile=\"" + q + "\"} ";
      size_t pos = metrics.find(needle);
      ASSERT_NE(pos, std::string::npos) << name << " " << q;
      int64_t value =
          std::strtoll(metrics.c_str() + pos + needle.size(), nullptr, 10);
      EXPECT_GT(value, 0) << needle;
    }
  }
}

TEST(TraceClusterTest, SlowQueryEventCarriesBlockedBreakdown) {
  TraceCluster cluster("trace-slow");
  Session session = TracedSpillSession();
  session.properties["slow_query_millis"] = "0";  // every query is "slow"
  auto result = cluster->Execute(kSpillingGroupBy, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const QueryEvent* slow = nullptr;
  for (const auto& event :
       cluster->coordinator().journal().EventsForQuery(result->query_id)) {
    if (event.kind == QueryEventKind::kSlowQuery) slow = new QueryEvent(event);
  }
  ASSERT_NE(slow, nullptr);
  EXPECT_EQ(slow->counters, result->exec_metrics)
      << "slow-query snapshot must equal the result's exec_metrics";
  EXPECT_GT(slow->counters.count("trace.blocked.spill_io.nanos"), 0u);
  EXPECT_GT(slow->counters.at("trace.blocked.spill_io.nanos"), 0);
  EXPECT_GT(slow->counters.count("trace.spill.write_bytes"), 0u);
  delete slow;
}

TEST(TraceClusterTest, TracingOffByDefaultAndStatsStillCarryBreakdown) {
  TraceCluster cluster("trace-off");
  Session session;
  session.properties["query_max_memory"] = "65536";
  session.properties["spill_path"] = "/tmp/presto_trace_test";
  auto result = cluster->Execute(kSpillingGroupBy, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // No spans recorded, but the trace id still correlates the journal and the
  // always-on blocked accounting still fills the OperatorStats breakdown.
  EXPECT_TRUE(result->trace_json.empty());
  EXPECT_TRUE(result->trace_spans.empty());
  EXPECT_FALSE(result->trace_id.empty());
  int64_t spill_io = 0;
  for (const auto& [node_id, op] : result->stats.operators) {
    spill_io += op.spill_io_nanos;
  }
  EXPECT_GT(spill_io, 0) << "breakdown must not depend on query_trace";

  // Traced and untraced runs agree on results.
  auto traced = cluster->Execute(kSpillingGroupBy, TracedSpillSession());
  ASSERT_TRUE(traced.ok());
  EXPECT_EQ(traced->total_rows, result->total_rows);
}

}  // namespace
}  // namespace presto
