// Differential (property) tests: the same logical query must produce
// identical results regardless of physical strategy —
//   * legacy vs native lakefile reader, all reader-feature combinations,
//   * connector pushdown vs engine-side evaluation,
//   * hive-on-lakefiles vs the same rows in the memory connector,
//   * geo rewrite on vs off (covered in integration_test).
// Any divergence is a correctness bug in a pushdown or reader feature.

#include <gtest/gtest.h>

#include <algorithm>

#include "presto/cluster/cluster.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/tpch/workloads.h"

namespace presto {
namespace {

// Rows of a result, boxed and sorted for order-insensitive comparison.
std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Page& page : result.pages) {
    for (size_t r = 0; r < page.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < page.num_columns(); ++c) {
        row += page.column(c)->GetValue(r).ToString();
        row += "|";
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class DifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new PrestoCluster("diff", 2, 2);
    clock_ = new SimulatedClock();
    hdfs_ = new SimulatedHdfs(clock_);
    hive_ = std::make_shared<HiveConnector>(hdfs_, "warehouse");

    // The same trips data lands in BOTH the hive table (lakefiles, several
    // row groups, city clustering for skippable stats) and a memory table.
    auto memory = std::make_shared<MemoryConnector>();
    TypePtr trips_type = workloads::TripsType();
    ASSERT_TRUE(hive_->CreateTable("raw", "trips", trips_type).ok());
    ASSERT_TRUE(memory->CreateTable("raw", "trips", trips_type).ok());
    for (int f = 0; f < 3; ++f) {
      workloads::TripsOptions options;
      options.num_rows = 4000;
      options.num_cities = 40;
      options.city_cluster_run = 250;
      options.null_fraction = 0.05;
      options.first_id = f * 4000;
      options.seed = 60 + f;
      Page page = workloads::GenerateTrips(options);
      lakefile::WriterOptions writer_options;
      writer_options.row_group_rows = 1000;
      ASSERT_TRUE(hive_->WriteDataFile("raw", "trips", "", {page}, writer_options).ok());
      ASSERT_TRUE(memory->AppendPage("raw", "trips", std::move(page)).ok());
    }
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("hive", hive_).ok());
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
  }

  static std::vector<std::string> Run(const std::string& sql) {
    Session session;
    auto result = cluster_->Execute(sql, session);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    if (!result.ok()) return {};
    return SortedRows(*result);
  }

  // Runs the query template against hive under the given reader options and
  // against the memory connector; both must match.
  static void ExpectAllStrategiesAgree(const std::string& query_template) {
    auto substitute = [&](const std::string& catalog) {
      std::string sql = query_template;
      const std::string placeholder = "$T";
      size_t pos;
      while ((pos = sql.find(placeholder)) != std::string::npos) {
        sql.replace(pos, placeholder.size(), catalog + ".raw.trips");
      }
      return sql;
    };

    std::vector<std::string> reference = Run(substitute("mem"));

    // Legacy reader.
    HiveConnectorOptions legacy;
    legacy.use_legacy_reader = true;
    hive_->set_options(legacy);
    EXPECT_EQ(Run(substitute("hive")), reference) << "legacy reader diverged";

    // Native reader: every single-feature-off variant plus all-on.
    for (int mask = 0; mask < 6; ++mask) {
      HiveConnectorOptions options;
      options.use_legacy_reader = false;
      options.reader.nested_column_pruning = mask != 1;
      options.reader.predicate_pushdown = mask != 2;
      options.reader.dictionary_pushdown = mask != 3;
      options.reader.lazy_reads = mask != 4;
      options.reader.vectorized = mask != 5;
      hive_->set_options(options);
      EXPECT_EQ(Run(substitute("hive")), reference)
          << "native reader diverged with feature mask " << mask << " on\n"
          << query_template;
    }
    hive_->set_options(HiveConnectorOptions());
  }

  static PrestoCluster* cluster_;
  static SimulatedClock* clock_;
  static SimulatedHdfs* hdfs_;
  static std::shared_ptr<HiveConnector> hive_;
};

PrestoCluster* DifferentialTest::cluster_ = nullptr;
SimulatedClock* DifferentialTest::clock_ = nullptr;
SimulatedHdfs* DifferentialTest::hdfs_ = nullptr;
std::shared_ptr<HiveConnector> DifferentialTest::hive_;

TEST_F(DifferentialTest, FullScan) {
  ExpectAllStrategiesAgree("SELECT id, base.city_id, base.fare FROM $T");
}

TEST_F(DifferentialTest, NeedleEquality) {
  ExpectAllStrategiesAgree(
      "SELECT base.driver_uuid FROM $T WHERE base.city_id = 12");
  ExpectAllStrategiesAgree("SELECT base.city_id FROM $T WHERE id = 7777");
}

TEST_F(DifferentialTest, RangePredicates) {
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.city_id >= 10 AND base.city_id < 13");
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE id BETWEEN 3000 AND 3050");
}

TEST_F(DifferentialTest, InAndStringPredicates) {
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.city_id IN (1, 5, 39)");
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.status = 'completed' AND base.city_id = 3");
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.status IN ('canceled', 'open')"
      " AND id < 500");
}

TEST_F(DifferentialTest, PredicateOnMissingMatch) {
  ExpectAllStrategiesAgree("SELECT id FROM $T WHERE base.city_id = 9999");
  ExpectAllStrategiesAgree("SELECT id FROM $T WHERE base.status = 'zzz'");
}

TEST_F(DifferentialTest, NullHandling) {
  // ~5% of base structs and fares are NULL.
  ExpectAllStrategiesAgree("SELECT count(*) FROM $T WHERE base.fare IS NULL");
  ExpectAllStrategiesAgree(
      "SELECT count(*), sum(base.fare) FROM $T WHERE base.fare IS NOT NULL");
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.fare > 80.0");
}

TEST_F(DifferentialTest, Aggregations) {
  ExpectAllStrategiesAgree(
      "SELECT base.city_id, count(*), sum(base.fare), min(base.fare), "
      "max(base.fare) FROM $T GROUP BY base.city_id");
  ExpectAllStrategiesAgree(
      "SELECT base.status, avg(base.fare) FROM $T WHERE base.city_id < 20 "
      "GROUP BY base.status");
}

TEST_F(DifferentialTest, NestedCollections) {
  ExpectAllStrategiesAgree(
      "SELECT id, cardinality(tags) FROM $T WHERE id < 100");
  ExpectAllStrategiesAgree(
      "SELECT count(*) FROM $T WHERE contains(tags, 'airport')");
  ExpectAllStrategiesAgree(
      "SELECT id, element_at(metrics, 'surge') FROM $T WHERE id < 200");
}

TEST_F(DifferentialTest, ProjectionExpressions) {
  ExpectAllStrategiesAgree(
      "SELECT id % 7, base.fare * 2.0, upper(base.status) FROM $T "
      "WHERE id < 300");
}

TEST_F(DifferentialTest, TopNAndLimit) {
  // ORDER BY ... LIMIT has deterministic results (ties broken by id).
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.city_id = 5 ORDER BY id LIMIT 20");
}

}  // namespace
}  // namespace presto
