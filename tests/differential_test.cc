// Differential (property) tests: the same logical query must produce
// identical results regardless of physical strategy —
//   * legacy vs native lakefile reader, all reader-feature combinations,
//   * connector pushdown vs engine-side evaluation,
//   * hive-on-lakefiles vs the same rows in the memory connector,
//   * geo rewrite on vs off (covered in integration_test).
// Any divergence is a correctness bug in a pushdown or reader feature.

#include <gtest/gtest.h>

#include <algorithm>

#include "presto/cluster/cluster.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/tpch/workloads.h"

namespace presto {
namespace {

// Rows of a result, boxed and sorted for order-insensitive comparison.
std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Page& page : result.pages) {
    for (size_t r = 0; r < page.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < page.num_columns(); ++c) {
        row += page.column(c)->GetValue(r).ToString();
        row += "|";
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class DifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new PrestoCluster("diff", 2, 2);
    clock_ = new SimulatedClock();
    hdfs_ = new SimulatedHdfs(clock_);
    hive_ = std::make_shared<HiveConnector>(hdfs_, "warehouse");

    // The same trips data lands in BOTH the hive table (lakefiles, several
    // row groups, city clustering for skippable stats) and a memory table.
    auto memory = std::make_shared<MemoryConnector>();
    TypePtr trips_type = workloads::TripsType();
    ASSERT_TRUE(hive_->CreateTable("raw", "trips", trips_type).ok());
    ASSERT_TRUE(memory->CreateTable("raw", "trips", trips_type).ok());
    for (int f = 0; f < 3; ++f) {
      workloads::TripsOptions options;
      options.num_rows = 4000;
      options.num_cities = 40;
      options.city_cluster_run = 250;
      options.null_fraction = 0.05;
      options.first_id = f * 4000;
      options.seed = 60 + f;
      Page page = workloads::GenerateTrips(options);
      lakefile::WriterOptions writer_options;
      writer_options.row_group_rows = 1000;
      ASSERT_TRUE(hive_->WriteDataFile("raw", "trips", "", {page}, writer_options).ok());
      ASSERT_TRUE(memory->AppendPage("raw", "trips", std::move(page)).ok());
    }
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("hive", hive_).ok());
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
  }

  static std::vector<std::string> Run(const std::string& sql) {
    Session session;
    auto result = cluster_->Execute(sql, session);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    if (!result.ok()) return {};
    return SortedRows(*result);
  }

  // Runs the query template against hive under the given reader options and
  // against the memory connector; both must match.
  static void ExpectAllStrategiesAgree(const std::string& query_template) {
    auto substitute = [&](const std::string& catalog) {
      std::string sql = query_template;
      const std::string placeholder = "$T";
      size_t pos;
      while ((pos = sql.find(placeholder)) != std::string::npos) {
        sql.replace(pos, placeholder.size(), catalog + ".raw.trips");
      }
      return sql;
    };

    std::vector<std::string> reference = Run(substitute("mem"));

    // Legacy reader.
    HiveConnectorOptions legacy;
    legacy.use_legacy_reader = true;
    hive_->set_options(legacy);
    EXPECT_EQ(Run(substitute("hive")), reference) << "legacy reader diverged";

    // Native reader: every single-feature-off variant plus all-on.
    for (int mask = 0; mask < 6; ++mask) {
      HiveConnectorOptions options;
      options.use_legacy_reader = false;
      options.reader.nested_column_pruning = mask != 1;
      options.reader.predicate_pushdown = mask != 2;
      options.reader.dictionary_pushdown = mask != 3;
      options.reader.lazy_reads = mask != 4;
      options.reader.vectorized = mask != 5;
      hive_->set_options(options);
      EXPECT_EQ(Run(substitute("hive")), reference)
          << "native reader diverged with feature mask " << mask << " on\n"
          << query_template;
    }
    hive_->set_options(HiveConnectorOptions());
  }

  static PrestoCluster* cluster_;
  static SimulatedClock* clock_;
  static SimulatedHdfs* hdfs_;
  static std::shared_ptr<HiveConnector> hive_;
};

PrestoCluster* DifferentialTest::cluster_ = nullptr;
SimulatedClock* DifferentialTest::clock_ = nullptr;
SimulatedHdfs* DifferentialTest::hdfs_ = nullptr;
std::shared_ptr<HiveConnector> DifferentialTest::hive_;

TEST_F(DifferentialTest, FullScan) {
  ExpectAllStrategiesAgree("SELECT id, base.city_id, base.fare FROM $T");
}

TEST_F(DifferentialTest, NeedleEquality) {
  ExpectAllStrategiesAgree(
      "SELECT base.driver_uuid FROM $T WHERE base.city_id = 12");
  ExpectAllStrategiesAgree("SELECT base.city_id FROM $T WHERE id = 7777");
}

TEST_F(DifferentialTest, RangePredicates) {
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.city_id >= 10 AND base.city_id < 13");
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE id BETWEEN 3000 AND 3050");
}

TEST_F(DifferentialTest, InAndStringPredicates) {
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.city_id IN (1, 5, 39)");
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.status = 'completed' AND base.city_id = 3");
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.status IN ('canceled', 'open')"
      " AND id < 500");
}

TEST_F(DifferentialTest, PredicateOnMissingMatch) {
  ExpectAllStrategiesAgree("SELECT id FROM $T WHERE base.city_id = 9999");
  ExpectAllStrategiesAgree("SELECT id FROM $T WHERE base.status = 'zzz'");
}

TEST_F(DifferentialTest, NullHandling) {
  // ~5% of base structs and fares are NULL.
  ExpectAllStrategiesAgree("SELECT count(*) FROM $T WHERE base.fare IS NULL");
  ExpectAllStrategiesAgree(
      "SELECT count(*), sum(base.fare) FROM $T WHERE base.fare IS NOT NULL");
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.fare > 80.0");
}

TEST_F(DifferentialTest, Aggregations) {
  ExpectAllStrategiesAgree(
      "SELECT base.city_id, count(*), sum(base.fare), min(base.fare), "
      "max(base.fare) FROM $T GROUP BY base.city_id");
  ExpectAllStrategiesAgree(
      "SELECT base.status, avg(base.fare) FROM $T WHERE base.city_id < 20 "
      "GROUP BY base.status");
}

TEST_F(DifferentialTest, NestedCollections) {
  ExpectAllStrategiesAgree(
      "SELECT id, cardinality(tags) FROM $T WHERE id < 100");
  ExpectAllStrategiesAgree(
      "SELECT count(*) FROM $T WHERE contains(tags, 'airport')");
  ExpectAllStrategiesAgree(
      "SELECT id, element_at(metrics, 'surge') FROM $T WHERE id < 200");
}

TEST_F(DifferentialTest, ProjectionExpressions) {
  ExpectAllStrategiesAgree(
      "SELECT id % 7, base.fare * 2.0, upper(base.status) FROM $T "
      "WHERE id < 300");
}

TEST_F(DifferentialTest, TopNAndLimit) {
  // ORDER BY ... LIMIT has deterministic results (ties broken by id).
  ExpectAllStrategiesAgree(
      "SELECT id FROM $T WHERE base.city_id = 5 ORDER BY id LIMIT 20");
}

// ---------------------------------------------------------------------------
// Typed kernel path vs Value-boxed fallback
// ---------------------------------------------------------------------------

// The same aggregation / join must produce identical results whether it runs
// through the normalized-key kernels or the boxed fallback (session property
// vectorized_kernels=false). Inputs are randomized pages mixing flat and
// dictionary encodings with NULLs in both keys and values — the cases where
// key normalization, null masks, and dictionary gathers can silently diverge.
class KernelDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new PrestoCluster("kernel-diff", 2, 2);
    auto memory = std::make_shared<MemoryConnector>();

    TypePtr facts_type = Type::Row(
        {"k_int", "k_str", "v_int", "v_double"},
        {Type::Bigint(), Type::Varchar(), Type::Bigint(), Type::Double()});
    TypePtr dim_type = Type::Row({"key", "name"},
                                 {Type::Bigint(), Type::Varchar()});
    ASSERT_TRUE(memory->CreateTable("raw", "facts", facts_type).ok());
    ASSERT_TRUE(memory->CreateTable("raw", "dim", dim_type).ok());

    // Deterministic LCG so failures reproduce.
    uint64_t state = 42;
    auto next = [&state]() {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return state >> 33;
    };
    const std::vector<std::string> words = {"ash", "birch", "cedar", "dogwood",
                                            "elm", "fir", "ginkgo", ""};

    for (int p = 0; p < 6; ++p) {
      size_t n = 200 + next() % 300;
      std::vector<int64_t> k_int(n);
      std::vector<uint8_t> k_int_nulls(n);
      std::vector<std::string> k_str(n);
      std::vector<uint8_t> k_str_nulls(n);
      std::vector<int64_t> v_int(n);
      std::vector<uint8_t> v_int_nulls(n);
      std::vector<double> v_double(n);
      std::vector<uint8_t> v_double_nulls(n);
      for (size_t i = 0; i < n; ++i) {
        k_int[i] = static_cast<int64_t>(next() % 23) - 4;  // negatives too
        k_int_nulls[i] = next() % 10 == 0;
        k_str[i] = words[next() % words.size()];
        k_str_nulls[i] = next() % 11 == 0;
        v_int[i] = static_cast<int64_t>(next() % 1000) - 500;
        v_int_nulls[i] = next() % 7 == 0;
        v_double[i] = (static_cast<int64_t>(next() % 2000) - 1000) / 8.0;
        v_double_nulls[i] = next() % 9 == 0;
        if (v_double[i] == 0.0 && next() % 2 == 0) v_double[i] = -0.0;
      }
      std::vector<VectorPtr> columns = {
          std::make_shared<Int64Vector>(Type::Bigint(), k_int, k_int_nulls),
          std::make_shared<StringVector>(Type::Varchar(), k_str, k_str_nulls),
          std::make_shared<Int64Vector>(Type::Bigint(), v_int, v_int_nulls),
          std::make_shared<DoubleVector>(Type::Double(), v_double,
                                         v_double_nulls)};
      if (p % 2 == 1) {
        // Dictionary-encode the key columns: a shuffled gather over the flat
        // base plus dictionary-level nulls on top of the base nulls.
        for (size_t c = 0; c < 2; ++c) {
          std::vector<int32_t> indices(n);
          std::vector<uint8_t> top_nulls(n);
          for (size_t i = 0; i < n; ++i) {
            indices[i] = static_cast<int32_t>(next() % n);
            top_nulls[i] = next() % 13 == 0;
          }
          columns[c] = std::make_shared<DictionaryVector>(
              columns[c], std::move(indices), std::move(top_nulls));
        }
      }
      ASSERT_TRUE(
          memory->AppendPage("raw", "facts", Page(std::move(columns), n)).ok());
    }

    // Dimension table: duplicate and NULL keys, one dictionary page.
    for (int p = 0; p < 2; ++p) {
      size_t n = 40;
      std::vector<int64_t> key(n);
      std::vector<uint8_t> key_nulls(n);
      std::vector<std::string> name(n);
      for (size_t i = 0; i < n; ++i) {
        key[i] = static_cast<int64_t>(next() % 15) - 2;
        key_nulls[i] = next() % 8 == 0;
        name[i] = words[next() % words.size()] + std::to_string(next() % 4);
      }
      std::vector<VectorPtr> columns = {
          std::make_shared<Int64Vector>(Type::Bigint(), key, key_nulls),
          std::make_shared<StringVector>(Type::Varchar(), name,
                                         std::vector<uint8_t>{})};
      if (p == 1) {
        std::vector<int32_t> indices(n);
        for (size_t i = 0; i < n; ++i) {
          indices[i] = static_cast<int32_t>(next() % n);
        }
        columns[0] = std::make_shared<DictionaryVector>(columns[0],
                                                        std::move(indices));
      }
      ASSERT_TRUE(
          memory->AppendPage("raw", "dim", Page(std::move(columns), n)).ok());
    }

    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
  }

  // Runs the query with kernels on and off; both must agree, and the kernel
  // run must actually have taken the kernel path (and vice versa).
  static void ExpectKernelMatchesFallback(const std::string& sql,
                                          const std::string& expect_kernel_of) {
    Session kernel_session;
    kernel_session.properties["vectorized_kernels"] = "true";
    auto kernel = cluster_->Execute(sql, kernel_session);
    ASSERT_TRUE(kernel.ok()) << sql << "\n" << kernel.status().ToString();

    Session boxed_session;
    boxed_session.properties["vectorized_kernels"] = "false";
    auto boxed = cluster_->Execute(sql, boxed_session);
    ASSERT_TRUE(boxed.ok()) << sql << "\n" << boxed.status().ToString();

    EXPECT_EQ(SortedRows(*kernel), SortedRows(*boxed))
        << "kernel and fallback diverged on\n" << sql;

    if (!expect_kernel_of.empty()) {
      EXPECT_GT(kernel->exec_metrics["exec." + expect_kernel_of +
                                     ".kernel_pages"],
                0)
          << "kernel path not taken for\n" << sql;
      EXPECT_EQ(kernel->exec_metrics["exec." + expect_kernel_of +
                                     ".fallback_pages"],
                0);
      EXPECT_EQ(boxed->exec_metrics["exec." + expect_kernel_of +
                                    ".kernel_pages"],
                0)
          << "fallback not honoured for\n" << sql;
    }
  }

  static PrestoCluster* cluster_;
};

PrestoCluster* KernelDifferentialTest::cluster_ = nullptr;

TEST_F(KernelDifferentialTest, GroupByIntKey) {
  ExpectKernelMatchesFallback(
      "SELECT k_int, count(*), count(v_int), sum(v_int), min(v_int), "
      "max(v_int) FROM mem.raw.facts GROUP BY k_int",
      "agg");
}

TEST_F(KernelDifferentialTest, GroupByDoubleAggregates) {
  ExpectKernelMatchesFallback(
      "SELECT k_int, sum(v_double), avg(v_double), min(v_double), "
      "max(v_double) FROM mem.raw.facts GROUP BY k_int",
      "agg");
}

TEST_F(KernelDifferentialTest, GroupByVarcharAndMultiKey) {
  ExpectKernelMatchesFallback(
      "SELECT k_str, min(k_str), max(k_str), count(*) FROM mem.raw.facts "
      "GROUP BY k_str",
      "agg");
  ExpectKernelMatchesFallback(
      "SELECT k_str, k_int, avg(v_int), sum(v_double) FROM mem.raw.facts "
      "GROUP BY k_str, k_int",
      "agg");
}

TEST_F(KernelDifferentialTest, GlobalAggregationAndEmptyInput) {
  ExpectKernelMatchesFallback(
      "SELECT count(*), sum(v_int), avg(v_double) FROM mem.raw.facts",
      "agg");
  // Empty input: a global aggregation still emits exactly one row.
  ExpectKernelMatchesFallback(
      "SELECT count(*), sum(v_int), min(k_str) FROM mem.raw.facts "
      "WHERE k_int > 1000000",
      "agg");
}

TEST_F(KernelDifferentialTest, InnerJoin) {
  ExpectKernelMatchesFallback(
      "SELECT f.k_int, f.v_int, d.name FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k_int = d.key",
      "join");
}

TEST_F(KernelDifferentialTest, LeftJoinNullKeys) {
  // NULL probe keys never match and must be null-extended exactly once.
  ExpectKernelMatchesFallback(
      "SELECT f.k_int, d.name FROM mem.raw.facts f "
      "LEFT JOIN mem.raw.dim d ON f.k_int = d.key",
      "join");
}

TEST_F(KernelDifferentialTest, JoinThenAggregate) {
  ExpectKernelMatchesFallback(
      "SELECT d.name, count(*), sum(f.v_double) FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k_int = d.key GROUP BY d.name",
      "agg");
}

// ---------------------------------------------------------------------------
// Multi-stage distributed execution vs coordinator-inline single stage
// ---------------------------------------------------------------------------

// The same query must produce identical (sorted) results whether it runs
// through hash-partitioned intermediate stages (multi_stage_execution=true,
// the default) or the legacy two-level leaf/root plan. Inputs are the
// randomized mixed-encoding pages from the kernel fixture — dictionary
// wraps, NULL keys, negative keys — exactly where row-hash routing could
// silently drop or duplicate rows.
class MultiStageDifferentialTest : public KernelDifferentialTest {
 protected:
  static void ExpectMultiStageMatchesSingleStage(const std::string& sql) {
    Session multi;
    multi.properties["multi_stage_execution"] = "true";
    auto staged = cluster_->Execute(sql, multi);
    ASSERT_TRUE(staged.ok()) << sql << "\n" << staged.status().ToString();

    Session single;
    single.properties["multi_stage_execution"] = "false";
    auto inline_result = cluster_->Execute(sql, single);
    ASSERT_TRUE(inline_result.ok())
        << sql << "\n" << inline_result.status().ToString();

    EXPECT_EQ(SortedRows(*staged), SortedRows(*inline_result))
        << "multi-stage and single-stage results diverged on\n" << sql;
  }
};

TEST_F(MultiStageDifferentialTest, GroupByMatchesSingleStage) {
  ExpectMultiStageMatchesSingleStage(
      "SELECT k_int, count(*), sum(v_int), min(v_double), max(v_double) "
      "FROM mem.raw.facts GROUP BY k_int");
  ExpectMultiStageMatchesSingleStage(
      "SELECT k_str, k_int, count(*), avg(v_double) FROM mem.raw.facts "
      "GROUP BY k_str, k_int");
}

TEST_F(MultiStageDifferentialTest, PartitionedJoinMatchesSingleStage) {
  ExpectMultiStageMatchesSingleStage(
      "SELECT f.k_int, f.v_int, d.name FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k_int = d.key");
  ExpectMultiStageMatchesSingleStage(
      "SELECT f.k_int, d.name FROM mem.raw.facts f "
      "LEFT JOIN mem.raw.dim d ON f.k_int = d.key");
}

TEST_F(MultiStageDifferentialTest, JoinThenAggregateMatchesSingleStage) {
  ExpectMultiStageMatchesSingleStage(
      "SELECT d.name, count(*), sum(f.v_double) FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k_int = d.key GROUP BY d.name");
}

TEST_F(MultiStageDifferentialTest, BroadcastJoinMatchesPartitioned) {
  const std::string sql =
      "SELECT f.k_int, d.name FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k_int = d.key";
  Session partitioned;
  partitioned.properties["join_distribution_type"] = "partitioned";
  auto part = cluster_->Execute(sql, partitioned);
  ASSERT_TRUE(part.ok()) << part.status().ToString();
  Session broadcast;
  broadcast.properties["join_distribution_type"] = "broadcast";
  auto bcast = cluster_->Execute(sql, broadcast);
  ASSERT_TRUE(bcast.ok()) << bcast.status().ToString();
  EXPECT_EQ(SortedRows(*part), SortedRows(*bcast));
}

TEST_F(MultiStageDifferentialTest, TinyExchangeBudgetMatchesDefault) {
  // A 4 KB exchange budget forces constant producer backpressure; the
  // results must still be complete and identical.
  const std::string sql =
      "SELECT d.name, count(*), sum(f.v_int) FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k_int = d.key GROUP BY d.name";
  Session tiny;
  tiny.properties["exchange_buffer_bytes"] = "4096";
  auto throttled = cluster_->Execute(sql, tiny);
  ASSERT_TRUE(throttled.ok()) << throttled.status().ToString();
  auto normal = cluster_->Execute(sql, Session());
  ASSERT_TRUE(normal.ok()) << normal.status().ToString();
  EXPECT_EQ(SortedRows(*throttled), SortedRows(*normal));
  EXPECT_GT(throttled->exec_metrics["exchange.producer.blocked"], 0)
      << "a 4 KB budget should have blocked at least one producer";
}

TEST_F(MultiStageDifferentialTest, JoinAggregationPlanHasThreeStages) {
  const std::string sql =
      "SELECT d.name, count(*) FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k_int = d.key GROUP BY d.name";
  auto plan = cluster_->Explain(sql, Session());
  ASSERT_TRUE(plan.ok());
  // Two scan leaves hash-partitioned on the join keys, a partitioned join
  // stage, and the root gather: at least four fragments in total.
  EXPECT_NE(plan->find("Fragment 1 (leaf)"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Fragment 2 (leaf)"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("Fragment 3 (intermediate)"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("Join[INNER, partitioned"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("[output: hash("), std::string::npos) << *plan;
  EXPECT_NE(plan->find(", partitioned]"), std::string::npos) << *plan;
  // Single-stage mode collapses back to leaf+root only.
  Session single;
  single.properties["multi_stage_execution"] = "false";
  auto flat = cluster_->Explain(sql, single);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->find("(intermediate)"), std::string::npos) << *flat;
}

TEST_F(KernelDifferentialTest, UnsupportedAggregateFallsBack) {
  // approx_distinct has no grouped kernel: the operator must fall back (and
  // still agree with the fallback-forced run).
  Session session;
  session.properties["vectorized_kernels"] = "true";
  auto result = cluster_->Execute(
      "SELECT k_int, approx_distinct(v_int) FROM mem.raw.facts "
      "GROUP BY k_int",
      session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->exec_metrics["exec.agg.kernel_pages"], 0);
  EXPECT_GT(result->exec_metrics["exec.agg.fallback_pages"], 0);
  ExpectKernelMatchesFallback(
      "SELECT k_int, approx_distinct(v_int) FROM mem.raw.facts "
      "GROUP BY k_int",
      "");
}

}  // namespace
}  // namespace presto
