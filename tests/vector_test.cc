// Tests for the columnar vector layer: flat/dictionary/lazy encodings,
// nested row/array/map vectors, builders, slicing, flattening, pages.

#include <gtest/gtest.h>

#include "presto/vector/page.h"
#include "presto/vector/vector.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

TEST(FlatVectorTest, BasicAccess) {
  VectorPtr v = MakeBigintVector({1, 2, 3});
  EXPECT_EQ(v->size(), 3u);
  EXPECT_EQ(v->encoding(), VectorEncoding::kFlat);
  EXPECT_FALSE(v->IsNull(1));
  EXPECT_EQ(v->GetValue(2), Value::Int(3));
}

TEST(FlatVectorTest, NullsTracked) {
  VectorBuilder b(Type::Bigint());
  b.AppendBigint(10);
  b.AppendNull();
  b.AppendBigint(30);
  VectorPtr v = b.Build();
  EXPECT_FALSE(v->IsNull(0));
  EXPECT_TRUE(v->IsNull(1));
  EXPECT_EQ(v->GetValue(1), Value::Null());
  EXPECT_EQ(v->GetValue(2), Value::Int(30));
}

TEST(FlatVectorTest, SlicePreservesNulls) {
  VectorBuilder b(Type::Varchar());
  b.AppendString("a");
  b.AppendNull();
  b.AppendString("c");
  b.AppendString("d");
  VectorPtr v = b.Build();
  VectorPtr sliced = v->Slice({3, 1, 0});
  EXPECT_EQ(sliced->size(), 3u);
  EXPECT_EQ(sliced->GetValue(0), Value::String("d"));
  EXPECT_TRUE(sliced->IsNull(1));
  EXPECT_EQ(sliced->GetValue(2), Value::String("a"));
}

TEST(FlatVectorTest, HashConsistentWithCompare) {
  VectorPtr a = MakeVarcharVector({"x", "y"});
  VectorPtr b = MakeVarcharVector({"x", "z"});
  EXPECT_EQ(a->CompareAt(0, *b, 0), 0);
  EXPECT_EQ(a->HashAt(0), b->HashAt(0));
  EXPECT_NE(a->CompareAt(1, *b, 1), 0);
}

TEST(FlatVectorTest, CompareAcrossEncodings) {
  VectorPtr base = MakeBigintVector({100, 200});
  auto dict = std::make_shared<DictionaryVector>(base, std::vector<int32_t>{1, 0, 1});
  VectorPtr flat = MakeBigintVector({200, 100, 200});
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(flat->CompareAt(i, *dict, i), 0) << "row " << i;
  }
}

TEST(RowVectorTest, NestedAccessAndNulls) {
  TypePtr row_type = Type::Row({"id", "name"}, {Type::Bigint(), Type::Varchar()});
  VectorBuilder b(row_type);
  ASSERT_TRUE(b.Append(Value::Row({Value::Int(1), Value::String("uber")})).ok());
  b.AppendNull();
  ASSERT_TRUE(b.Append(Value::Row({Value::Int(3), Value::Null()})).ok());
  VectorPtr v = b.Build();
  auto* row = static_cast<RowVector*>(v.get());
  EXPECT_EQ(row->NumChildren(), 2u);
  EXPECT_EQ(row->child(0)->size(), 3u);  // children stay aligned through nulls
  EXPECT_TRUE(v->IsNull(1));
  EXPECT_EQ(v->GetValue(0), Value::Row({Value::Int(1), Value::String("uber")}));
  EXPECT_EQ(v->GetValue(2), Value::Row({Value::Int(3), Value::Null()}));
}

TEST(ArrayVectorTest, RoundTripThroughBuilder) {
  TypePtr t = Type::Array(Type::Bigint());
  VectorBuilder b(t);
  ASSERT_TRUE(b.Append(Value::Array({Value::Int(1), Value::Int(2)})).ok());
  ASSERT_TRUE(b.Append(Value::Array({})).ok());
  b.AppendNull();
  ASSERT_TRUE(b.Append(Value::Array({Value::Int(9)})).ok());
  VectorPtr v = b.Build();
  EXPECT_EQ(v->GetValue(0), Value::Array({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(v->GetValue(1), Value::Array({}));
  EXPECT_TRUE(v->IsNull(2));
  EXPECT_EQ(v->GetValue(3), Value::Array({Value::Int(9)}));
}

TEST(ArrayVectorTest, SliceRebasesOffsets) {
  TypePtr t = Type::Array(Type::Varchar());
  VectorBuilder b(t);
  ASSERT_TRUE(b.Append(Value::Array({Value::String("a")})).ok());
  ASSERT_TRUE(b.Append(Value::Array({Value::String("b"), Value::String("c")})).ok());
  ASSERT_TRUE(b.Append(Value::Array({Value::String("d")})).ok());
  VectorPtr v = b.Build();
  VectorPtr sliced = v->Slice({2, 1});
  EXPECT_EQ(sliced->GetValue(0), Value::Array({Value::String("d")}));
  EXPECT_EQ(sliced->GetValue(1),
            Value::Array({Value::String("b"), Value::String("c")}));
}

TEST(MapVectorTest, RoundTripAndSlice) {
  TypePtr t = Type::Map(Type::Varchar(), Type::Double());
  VectorBuilder b(t);
  ASSERT_TRUE(b.Append(Value::Map({{Value::String("a"), Value::Double(1.5)}})).ok());
  ASSERT_TRUE(b.Append(Value::Map({})).ok());
  ASSERT_TRUE(b.Append(Value::Map({{Value::String("x"), Value::Double(2.0)},
                                   {Value::String("y"), Value::Double(3.0)}})).ok());
  VectorPtr v = b.Build();
  EXPECT_EQ(v->GetValue(2).map_entries().size(), 2u);
  VectorPtr sliced = v->Slice({2, 0});
  EXPECT_EQ(sliced->GetValue(1),
            Value::Map({{Value::String("a"), Value::Double(1.5)}}));
}

TEST(DictionaryVectorTest, IndirectionAndFlatten) {
  VectorPtr base = MakeVarcharVector({"SF", "NYC", "LA"});
  auto dict = std::make_shared<DictionaryVector>(
      base, std::vector<int32_t>{2, 0, 0, 1, 2});
  EXPECT_EQ(dict->encoding(), VectorEncoding::kDictionary);
  EXPECT_EQ(dict->GetValue(0), Value::String("LA"));
  EXPECT_EQ(dict->GetValue(3), Value::String("NYC"));

  auto flat = Vector::Flatten(dict);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ((*flat)->encoding(), VectorEncoding::kFlat);
  EXPECT_EQ((*flat)->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*flat)->GetValue(i), dict->GetValue(i));
  }
}

TEST(DictionaryVectorTest, FlattenWithNulls) {
  VectorPtr base = MakeBigintVector({7, 8});
  auto dict = std::make_shared<DictionaryVector>(
      base, std::vector<int32_t>{0, 0, 1}, std::vector<uint8_t>{0, 1, 0});
  auto flat = Vector::Flatten(dict);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ((*flat)->GetValue(0), Value::Int(7));
  EXPECT_TRUE((*flat)->IsNull(1));
  EXPECT_EQ((*flat)->GetValue(2), Value::Int(8));
}

TEST(DictionaryVectorTest, NestedDictionaryFlattens) {
  VectorPtr base = MakeBigintVector({10, 20});
  auto inner = std::make_shared<DictionaryVector>(base, std::vector<int32_t>{1, 0});
  auto outer = std::make_shared<DictionaryVector>(inner, std::vector<int32_t>{0, 0, 1});
  auto flat = Vector::Flatten(outer);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ((*flat)->GetValue(0), Value::Int(20));
  EXPECT_EQ((*flat)->GetValue(2), Value::Int(10));
}

TEST(LazyVectorTest, LoadsOnDemandOnce) {
  int loads = 0;
  auto lazy = std::make_shared<LazyVector>(
      Type::Bigint(), 4,
      [&loads](const std::vector<int32_t>& rows) -> Result<VectorPtr> {
        ++loads;
        std::vector<int64_t> out;
        for (int32_t r : rows) out.push_back(r * 10);
        return MakeBigintVector(std::move(out));
      });
  EXPECT_FALSE(lazy->IsLoaded());
  auto v = lazy->Load();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)->GetValue(3), Value::Int(30));
  (void)lazy->Load();
  EXPECT_EQ(loads, 1) << "full load must be cached";
}

TEST(LazyVectorTest, LoadForRowsSkipsUnselected) {
  std::vector<int32_t> requested;
  auto lazy = std::make_shared<LazyVector>(
      Type::Bigint(), 100,
      [&requested](const std::vector<int32_t>& rows) -> Result<VectorPtr> {
        requested = rows;
        std::vector<int64_t> out;
        for (int32_t r : rows) out.push_back(r);
        return MakeBigintVector(std::move(out));
      });
  auto v = lazy->LoadForRows({5, 50});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(requested, (std::vector<int32_t>{5, 50}));
  EXPECT_EQ((*v)->size(), 2u);
  EXPECT_EQ((*v)->GetValue(1), Value::Int(50));
}

TEST(LazyVectorTest, FlattenLoads) {
  auto lazy = std::make_shared<LazyVector>(
      Type::Varchar(), 2, [](const std::vector<int32_t>& rows) -> Result<VectorPtr> {
        std::vector<std::string> out(rows.size(), "v");
        return MakeVarcharVector(std::move(out));
      });
  auto flat = Vector::Flatten(lazy);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ((*flat)->GetValue(0), Value::String("v"));
}

TEST(PageTest, SliceRowsAcrossColumns) {
  Page page({MakeBigintVector({1, 2, 3}), MakeVarcharVector({"a", "b", "c"})});
  EXPECT_EQ(page.num_rows(), 3u);
  EXPECT_EQ(page.num_columns(), 2u);
  Page sliced = page.SliceRows({2, 0});
  EXPECT_EQ(sliced.num_rows(), 2u);
  EXPECT_EQ(sliced.column(1)->GetValue(0), Value::String("c"));
  auto row = sliced.GetRow(1);
  EXPECT_EQ(row[0], Value::Int(1));
  EXPECT_EQ(row[1], Value::String("a"));
}

TEST(BuilderTest, TypeMismatchRejected) {
  VectorBuilder b(Type::Bigint());
  EXPECT_FALSE(b.Append(Value::String("nope")).ok());
  EXPECT_TRUE(b.Append(Value::Int(1)).ok());
}

TEST(BuilderTest, AllNullVector) {
  auto v = MakeAllNullVector(
      Type::Row({"x"}, {Type::Array(Type::Bigint())}), 3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ((*v)->size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_TRUE((*v)->IsNull(i));
}

TEST(BuilderTest, ReusableAfterBuild) {
  VectorBuilder b(Type::Bigint());
  b.AppendBigint(1);
  VectorPtr first = b.Build();
  b.AppendBigint(2);
  VectorPtr second = b.Build();
  EXPECT_EQ(first->size(), 1u);
  EXPECT_EQ(second->size(), 1u);
  EXPECT_EQ(second->GetValue(0), Value::Int(2));
}

}  // namespace
}  // namespace presto
