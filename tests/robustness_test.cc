// Robustness/fuzz tests: randomly corrupted inputs must surface clean
// Status errors (or valid alternate data), never crash or hang — the
// exception-free Status discipline is only real if every decode path
// bounds-checks.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "presto/cluster/cluster.h"
#include "presto/common/compression.h"
#include "presto/common/random.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/expr/serialization.h"
#include "presto/fs/memory_file_system.h"
#include "presto/lakefile/reader.h"
#include "presto/lakefile/writer.h"
#include "presto/sql/parser.h"
#include "presto/tpch/workloads.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

std::shared_ptr<RandomAccessFile> AsFile(const std::vector<uint8_t>& bytes) {
  static MemoryFileSystem& fs = *new MemoryFileSystem();
  static int counter = 0;
  std::string path = "fuzz/file" + std::to_string(counter++);
  EXPECT_TRUE(fs.WriteFile(path, bytes).ok());
  return *fs.OpenForRead(path);
}

// Reads everything from a possibly-corrupt lakefile; must never crash.
void TryReadAll(const std::vector<uint8_t>& bytes) {
  auto reader = lakefile::NativeLakeFileReader::Open(AsFile(bytes),
                                                     lakefile::ReaderOptions());
  if (!reader.ok()) return;  // clean rejection
  lakefile::ScanSpec spec;
  for (size_t c = 0; c < (*reader)->footer().schema->NumChildren(); ++c) {
    spec.columns.push_back((*reader)->footer().schema->field_name(c));
  }
  for (int batches = 0; batches < 1000; ++batches) {
    auto batch = (*reader)->NextBatch(spec);
    if (!batch.ok() || !batch->has_value()) return;
  }
}

TEST(LakeFileFuzzTest, SingleByteFlipsNeverCrash) {
  workloads::TripsOptions options;
  options.num_rows = 200;
  Page page = workloads::GenerateTrips(options);
  auto bytes = lakefile::WriteLakeFile(workloads::TripsType(), {page});
  ASSERT_TRUE(bytes.ok());

  Random rng(77);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> corrupted = *bytes;
    size_t position = rng.NextBelow(corrupted.size());
    corrupted[position] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    TryReadAll(corrupted);
  }
}

TEST(LakeFileFuzzTest, TruncationsNeverCrash) {
  VectorBuilder b(Type::Bigint());
  for (int i = 0; i < 500; ++i) b.AppendBigint(i);
  TypePtr schema = Type::Row({"x"}, {Type::Bigint()});
  auto bytes = lakefile::WriteLakeFile(schema, {Page({b.Build()})});
  ASSERT_TRUE(bytes.ok());
  for (size_t cut = 0; cut < bytes->size(); cut += 7) {
    std::vector<uint8_t> truncated(bytes->begin(), bytes->begin() + cut);
    TryReadAll(truncated);
  }
}

TEST(LakeFileFuzzTest, RandomGarbageRejected) {
  Random rng(78);
  for (int i = 0; i < 100; ++i) {
    std::vector<uint8_t> garbage(rng.NextBelow(4096));
    for (auto& byte : garbage) byte = static_cast<uint8_t>(rng.Next());
    TryReadAll(garbage);
  }
}

TEST(CompressionFuzzTest, CorruptFramesNeverCrash) {
  Random rng(79);
  std::string payload;
  for (int i = 0; i < 500; ++i) payload += "abcdefgh";
  for (CompressionKind kind :
       {CompressionKind::kSnappy, CompressionKind::kGzip}) {
    auto frame = Compress(kind, reinterpret_cast<const uint8_t*>(payload.data()),
                          payload.size());
    for (int i = 0; i < 300; ++i) {
      std::vector<uint8_t> corrupted = frame;
      corrupted[rng.NextBelow(corrupted.size())] ^=
          static_cast<uint8_t>(1 + rng.NextBelow(255));
      auto out = Decompress(kind, corrupted.data(), corrupted.size());
      if (out.ok()) {
        // A flip inside literal bytes can still decode — but never to a
        // larger-than-declared buffer.
        EXPECT_LE(out->size(), payload.size() + 1);
      }
    }
  }
}

TEST(ExpressionFuzzTest, CorruptSerializedExpressionsRejected) {
  ExprPtr expr = SpecialFormExpression::Make(
      SpecialFormKind::kIn, Type::Boolean(),
      {VariableReferenceExpression::Make("x", Type::Bigint()),
       ConstantExpression::MakeBigint(1), ConstantExpression::MakeBigint(2)});
  ByteBuffer buffer;
  SerializeExpression(*expr, &buffer);
  Random rng(80);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> corrupted = buffer.bytes();
    corrupted[rng.NextBelow(corrupted.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBelow(255));
    ByteReader reader(corrupted.data(), corrupted.size());
    (void)DeserializeExpression(&reader);  // must not crash
  }
}

// Rows of a result, boxed and sorted: page arrival order varies across
// partitions and runs, so comparisons must be order-insensitive.
std::vector<std::string> SortedResultRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Page& page : result.pages) {
    for (size_t r = 0; r < page.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < page.num_columns(); ++c) {
        row += page.column(c)->GetValue(r).ToString() + "|";
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Graceful worker shrink racing a running multi-stage query: every query
// must keep producing correct results, and a drained worker must never
// receive an intermediate-stage (or any other) task after it stops
// accepting work.
TEST(ClusterRobustnessTest, GracefulShrinkRacesMultiStageQuery) {
  PrestoCluster cluster("shrink-race", 2, 2);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr facts_type =
      Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  TypePtr dim_type = Type::Row({"key", "w"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("raw", "facts", facts_type).ok());
  ASSERT_TRUE(memory->CreateTable("raw", "dim", dim_type).ok());
  Random rng(83);
  for (int p = 0; p < 8; ++p) {
    std::vector<int64_t> k(500), v(500);
    for (size_t i = 0; i < k.size(); ++i) {
      k[i] = static_cast<int64_t>(rng.NextBelow(50));
      v[i] = static_cast<int64_t>(rng.NextBelow(1000));
    }
    ASSERT_TRUE(memory
                    ->AppendPage("raw", "facts",
                                 Page({MakeBigintVector(std::move(k)),
                                       MakeBigintVector(std::move(v))}))
                    .ok());
  }
  {
    std::vector<int64_t> key(50), w(50);
    for (size_t i = 0; i < key.size(); ++i) {
      key[i] = static_cast<int64_t>(i);
      w[i] = static_cast<int64_t>(i * 10);
    }
    ASSERT_TRUE(memory
                    ->AppendPage("raw", "dim",
                                 Page({MakeBigintVector(std::move(key)),
                                       MakeBigintVector(std::move(w))}))
                    .ok());
  }
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("mem", memory).ok());

  // Join + group-by: a leaf stage per scan, a partitioned join stage, and a
  // final-aggregation stage — plenty of intermediate-stage tasks in flight.
  const std::string sql =
      "SELECT d.w, count(*), sum(f.v) FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k = d.key GROUP BY d.w";
  Session session;
  auto reference = cluster.Execute(sql, session);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const std::vector<std::string> expected = SortedResultRows(*reference);

  std::string victim = cluster.ExpandWorker(2);
  std::shared_ptr<Worker> victim_worker;
  for (const auto& worker : cluster.coordinator().ActiveWorkers()) {
    if (worker->id() == victim) victim_worker = worker;
  }
  ASSERT_NE(victim_worker, nullptr);
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        Session s;
        auto result = cluster.Execute(sql, s);
        if (!result.ok() || SortedResultRows(*result) != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  // Let queries land on the victim, then drain it mid-flight.
  for (int i = 0; i < 2 && !stop.load(); ++i) {
    Session s;
    (void)cluster.Execute(sql, s);
  }
  ASSERT_TRUE(cluster.ShrinkWorkerAndWait(victim).ok());

  // The drained worker is out of the scheduling set, fully idle, and must
  // stay that way: snapshot its completed-task count, run more multi-stage
  // queries, and verify no new task (leaf or intermediate) ever reached it.
  for (const auto& worker : cluster.coordinator().ActiveWorkers()) {
    EXPECT_NE(worker->id(), victim);
  }
  EXPECT_EQ(victim_worker->state(), WorkerState::kShutDown);
  EXPECT_EQ(victim_worker->active_tasks(), 0);
  const int64_t tasks_after_drain = victim_worker->tasks_completed();
  for (int i = 0; i < 3; ++i) {
    Session s;
    auto result = cluster.Execute(sql, s);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(SortedResultRows(*result), expected);
  }
  EXPECT_EQ(victim_worker->tasks_completed(), tasks_after_drain)
      << "drained worker received tasks after shutdown";
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "queries racing the shrink produced wrong results";
}

// Regression: ShrinkWorker must return clean, classified statuses on its
// error paths instead of silently no-opping — an unknown id is kNotFound, a
// second shrink of the same worker is kAlreadyExists, and a crashed (dead)
// worker cannot be drained gracefully (kUnavailable).
TEST(ClusterRobustnessTest, ShrinkWorkerErrorPaths) {
  PrestoCluster cluster("shrink-errors", 3, 1);
  Coordinator& coordinator = cluster.coordinator();
  const int64_t grace = 1'000'000'000;

  Status unknown = coordinator.ShrinkWorker("no-such-worker", grace);
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound) << unknown.ToString();

  std::string drained = cluster.ExpandWorker(1);
  ASSERT_TRUE(cluster.ShrinkWorkerAndWait(drained).ok());
  Status again = coordinator.ShrinkWorker(drained, grace);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists) << again.ToString();

  std::string crashed = cluster.ExpandWorker(1);
  for (const auto& worker : coordinator.ActiveWorkers()) {
    if (worker->id() == crashed) worker->Kill();
  }
  Status dead = coordinator.ShrinkWorker(crashed, grace);
  EXPECT_EQ(dead.code(), StatusCode::kUnavailable) << dead.ToString();

  // The survivors still execute queries after all three error paths.
  auto memory = std::make_shared<MemoryConnector>();
  ASSERT_TRUE(
      memory->CreateTable("raw", "t", Type::Row({"x"}, {Type::Bigint()})).ok());
  ASSERT_TRUE(
      memory->AppendPage("raw", "t", Page({MakeBigintVector({1, 2, 3})})).ok());
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("mem", memory).ok());
  auto result = cluster.Execute("SELECT sum(x) FROM mem.raw.t", Session());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST(SqlFuzzTest, MangledQueriesNeverCrashTheParser) {
  const std::string base =
      "SELECT a.x, count(*) FROM cat.sch.t a JOIN u ON a.id = u.id "
      "WHERE a.x IN (1, 2) AND u.y LIKE 'p%' GROUP BY 1 "
      "ORDER BY 2 DESC LIMIT 10";
  Random rng(81);
  for (int i = 0; i < 500; ++i) {
    std::string mangled = base;
    int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.NextBelow(mangled.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mangled.erase(pos, 1 + rng.NextBelow(5));
          break;
        case 1:
          mangled.insert(pos, 1, static_cast<char>(32 + rng.NextBelow(95)));
          break;
        default:
          if (!mangled.empty()) {
            mangled[pos % mangled.size()] =
                static_cast<char>(32 + rng.NextBelow(95));
          }
          break;
      }
      if (mangled.empty()) mangled = "x";
    }
    (void)sql::ParseQuery(mangled);  // Status or Query, never a crash
  }
}

}  // namespace
}  // namespace presto
