// Chaos tests: failure is a first-class, testable input. A deterministic,
// seedable FaultInjector arms named fault points across the S3 object store,
// connector split readers, the exchange, and worker task bodies; every query
// in the corpus must then either return results identical to the fault-free
// run or fail with a classified (retryable/terminal), non-corrupt error —
// never crash, never hang (query deadlines bound every wait), never return
// partial rows as if they were complete.
//
// Env knobs (wired into scripts/check.sh's chaos stage):
//   PRESTO_CHAOS_SEED   base seed for fault schedules   (default 20260806)
//   PRESTO_CHAOS_ITERS  fault-schedule iterations       (default 3)

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "presto/cluster/cluster.h"
#include "presto/cluster/gateway.h"
#include "presto/common/fault_injection.h"
#include "presto/common/random.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/exec/exchange.h"
#include "presto/fs/presto_s3_file_system.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr || *value == '\0'
             ? fallback
             : std::strtoll(value, nullptr, 10);
}

// Disarms the global injector on scope exit so a failing assertion cannot
// leak an armed fault schedule into the next test.
struct InjectorGuard {
  InjectorGuard() { FaultInjector::Global().Reset(); }
  ~InjectorGuard() { FaultInjector::Global().Reset(); }
};

std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Page& page : result.pages) {
    for (size_t r = 0; r < page.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < page.num_columns(); ++c) {
        row += page.column(c)->GetValue(r).ToString() + "|";
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool JournalHasEvent(const Coordinator& coordinator, QueryEventKind kind) {
  for (const QueryEvent& event : coordinator.journal().Events()) {
    if (event.kind == kind) return true;
  }
  return false;
}

// Shared fixture: one cluster, fact/dim tables in the memory connector (the
// multi-stage join/aggregation corpus) plus the same facts behind a hive
// table stored on simulated S3, so injected S3 faults flow through the
// PrestoS3FileSystem backoff into leaf-task retry.
class ChaosQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    cluster_ = std::make_unique<PrestoCluster>("chaos", 3, 2);
    auto memory = std::make_shared<MemoryConnector>();
    TypePtr facts_type = Type::Row({"k", "v", "v_d"},
                                   {Type::Bigint(), Type::Bigint(), Type::Double()});
    TypePtr dim_type =
        Type::Row({"key", "w"}, {Type::Bigint(), Type::Bigint()});
    ASSERT_TRUE(memory->CreateTable("raw", "facts", facts_type).ok());
    ASSERT_TRUE(memory->CreateTable("raw", "dim", dim_type).ok());

    clock_ = std::make_unique<SimulatedClock>();
    s3_ = std::make_unique<S3ObjectStore>(clock_.get());
    s3fs_ = std::make_unique<PrestoS3FileSystem>(s3_.get(), clock_.get());
    hive_ = std::make_shared<HiveConnector>(s3fs_.get(), "warehouse");
    ASSERT_TRUE(hive_->CreateTable("raw", "facts", facts_type).ok());

    Random rng(91);
    for (int p = 0; p < 6; ++p) {
      size_t n = 400;
      std::vector<int64_t> k(n), v(n);
      std::vector<double> vd(n);
      for (size_t i = 0; i < n; ++i) {
        k[i] = static_cast<int64_t>(rng.NextBelow(40));
        v[i] = static_cast<int64_t>(rng.NextBelow(1000));
        vd[i] = static_cast<double>(rng.NextBelow(10000)) / 4.0;
      }
      std::vector<VectorPtr> columns = {
          MakeBigintVector(std::move(k)), MakeBigintVector(std::move(v)),
          std::make_shared<DoubleVector>(Type::Double(), std::move(vd),
                                         std::vector<uint8_t>{})};
      Page page(std::move(columns), n);
      ASSERT_TRUE(hive_->WriteDataFile("raw", "facts", "", {page},
                                       lakefile::WriterOptions())
                      .ok());
      ASSERT_TRUE(memory->AppendPage("raw", "facts", std::move(page)).ok());
    }
    {
      std::vector<int64_t> key(40), w(40);
      for (size_t i = 0; i < key.size(); ++i) {
        key[i] = static_cast<int64_t>(i);
        w[i] = static_cast<int64_t>(i % 7);
      }
      ASSERT_TRUE(memory
                      ->AppendPage("raw", "dim",
                                   Page({MakeBigintVector(std::move(key)),
                                         MakeBigintVector(std::move(w))}))
                      .ok());
    }
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("s3hive", hive_).ok());
  }

  void TearDown() override { FaultInjector::Global().Reset(); }

  // The randomized multi-stage corpus: scans, filters, multi-stage group-bys
  // and partitioned joins, early-exit LIMIT, and an S3-backed hive scan.
  static std::vector<std::string> Corpus() {
    return {
        "SELECT k, count(*), sum(v), min(v), max(v) FROM mem.raw.facts "
        "GROUP BY k",
        "SELECT d.w, count(*), sum(f.v) FROM mem.raw.facts f "
        "JOIN mem.raw.dim d ON f.k = d.key GROUP BY d.w",
        "SELECT k, v FROM mem.raw.facts WHERE v < 100",
        "SELECT count(*), sum(v), avg(v_d) FROM mem.raw.facts",
        "SELECT k, v FROM mem.raw.facts WHERE k = 7 ORDER BY v LIMIT 10",
        "SELECT k, sum(v) FROM s3hive.raw.facts GROUP BY k",
    };
  }

  Result<QueryResult> Run(const std::string& sql,
                          std::map<std::string, std::string> props) {
    Session session;
    session.properties = std::move(props);
    return cluster_->Execute(sql, session);
  }

  std::unique_ptr<PrestoCluster> cluster_;
  std::unique_ptr<SimulatedClock> clock_;
  std::unique_ptr<S3ObjectStore> s3_;
  std::unique_ptr<PrestoS3FileSystem> s3fs_;
  std::shared_ptr<HiveConnector> hive_;
};

// The chaos differential: randomized fault schedules (rates up to 10%) on S3
// requests, split opens/reads, worker task bodies, and exchange transfers.
// Every corpus query either matches its fault-free reference exactly or
// fails with a classified retryable error — and with retries armed the vast
// majority must succeed.
TEST_F(ChaosQueryTest, DifferentialUnderInjectedFaults) {
  InjectorGuard guard;
  const uint64_t base_seed =
      static_cast<uint64_t>(EnvInt("PRESTO_CHAOS_SEED", 20260806));
  const int iterations = static_cast<int>(EnvInt("PRESTO_CHAOS_ITERS", 3));

  std::map<std::string, std::vector<std::string>> references;
  for (const std::string& sql : Corpus()) {
    auto clean = Run(sql, {});
    ASSERT_TRUE(clean.ok()) << sql << "\n" << clean.status().ToString();
    references[sql] = SortedRows(*clean);
  }

  int runs = 0, successes = 0, classified_failures = 0;
  int64_t total_injected = 0;  // Seed() resets counters; accumulate per iter
  auto& injector = FaultInjector::Global();
  for (int iter = 0; iter < iterations; ++iter) {
    injector.Seed(base_seed + static_cast<uint64_t>(iter));
    Random knobs(base_seed * 31 + static_cast<uint64_t>(iter));
    double rate = 0.02 + 0.08 * knobs.NextDouble();  // 2% .. 10%
    injector.ArmProbabilistic("s3.request", rate);
    injector.ArmProbabilistic("connector.split.open", rate);
    injector.ArmProbabilistic("connector.split.read", rate / 4,
                              StatusCode::kIoError);
    injector.ArmProbabilistic("worker.task.body", rate);
    injector.ArmProbabilistic("exchange.push", rate / 8);
    // Spool I/O faults ride the same schedule: a failed tee write breaks the
    // partition (recovery degrades to restart-once), a failed replay read
    // aborts a stage re-run mid-replay — neither may ever corrupt results.
    injector.ArmProbabilistic("exchange.spool.write", rate / 4);
    injector.ArmProbabilistic("exchange.spool.read", rate / 4,
                              StatusCode::kIoError);

    for (const std::string& sql : Corpus()) {
      auto result = Run(sql, {{"exchange_spool", "true"},
                              {"query_max_task_retries", "3"},
                              {"task_retry_backoff_millis", "1"},
                              {"query_timeout_millis", "30000"}});
      ++runs;
      if (result.ok()) {
        ++successes;
        EXPECT_EQ(SortedRows(*result), references[sql])
            << "faulted run returned corrupt results (seed "
            << base_seed + iter << ") on\n"
            << sql;
      } else {
        ++classified_failures;
        EXPECT_TRUE(IsRetryableStatus(result.status()))
            << "fault leaked out unclassified (seed " << base_seed + iter
            << "): " << result.status().ToString() << "\n"
            << sql;
      }
    }
    total_injected += injector.TotalInjected();
  }
  std::printf(
      "[ chaos  ] seed=%llu iters=%d: %d/%d queries exact-match, %d classified "
      "failures, %lld faults injected\n",
      static_cast<unsigned long long>(base_seed), iterations, successes, runs,
      classified_failures, static_cast<long long>(total_injected));
  EXPECT_GT(total_injected, 0)
      << "chaos schedule never actually fired a fault";
  // Leaf retry + restart-once should absorb most low-rate faults; a chaos
  // run where everything fails means recovery is not actually wired in.
  EXPECT_GT(successes, runs / 2)
      << successes << "/" << runs << " chaos queries succeeded";
  injector.Reset();

  // After disarming, the same corpus is fault-free again (no injector state
  // leaks into later queries).
  for (const std::string& sql : Corpus()) {
    auto result = Run(sql, {});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(SortedRows(*result), references[sql]);
  }
}

// Crash-style worker death mid-query (not graceful shrink): with retries
// armed the query succeeds via heartbeat detection -> blacklist -> leaf
// re-dispatch, and the journal shows the recovery trail.
TEST_F(ChaosQueryTest, WorkerKillMidQueryRecoversViaBlacklist) {
  InjectorGuard guard;
  const std::string sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.facts GROUP BY k";
  auto reference = Run(sql, {});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // Single-stage keeps every worker-hosted task a (retryable) leaf, so the
  // kill deterministically exercises blacklist + re-dispatch rather than the
  // stage-failure restart path.
  FaultInjector::Global().ArmScripted("worker.kill", {2});
  auto result = Run(sql, {{"multi_stage_execution", "false"},
                          {"query_max_task_retries", "2"},
                          {"task_retry_backoff_millis", "1"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedRows(*result), SortedRows(*reference));

  const Coordinator& coordinator = cluster_->coordinator();
  EXPECT_EQ(coordinator.BlacklistedWorkers().size(), 1u);
  EXPECT_TRUE(JournalHasEvent(coordinator, QueryEventKind::kWorkerBlacklisted));
  EXPECT_TRUE(JournalHasEvent(coordinator, QueryEventKind::kTaskRetried));
  EXPECT_GE(coordinator.metrics().Get("worker.blacklisted"), 1);
  EXPECT_GE(coordinator.metrics().Get("task.retry.count"), 1);
  EXPECT_GE(result->exec_metrics["task.retry.count"], 1);

  // The dead worker is out of the fleet; later queries still work and never
  // touch it.
  for (const auto& worker : coordinator.ActiveWorkers()) {
    EXPECT_NE(worker->state(), WorkerState::kDead);
  }
  auto again = Run(sql, {});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(SortedRows(*again), SortedRows(*reference));
}

// The same crash with retries disabled: a clean, classified kUnavailable —
// not a hang, not a crash, not partial results.
TEST_F(ChaosQueryTest, WorkerKillWithoutRetriesFailsCleanly) {
  InjectorGuard guard;
  const std::string sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.facts GROUP BY k";
  FaultInjector::Global().ArmScripted("worker.kill", {2});
  auto result = Run(sql, {{"multi_stage_execution", "false"}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().ToString();
  EXPECT_FALSE(
      JournalHasEvent(cluster_->coordinator(), QueryEventKind::kTaskRetried));
  EXPECT_GE(cluster_->coordinator().queries_failed(), 1);
}

// A transient intermediate-stage failure (latched exchange) is recovered by
// restarting the whole query once, journaled as query_restarted.
TEST_F(ChaosQueryTest, TransientStageFailureRestartsQueryOnce) {
  InjectorGuard guard;
  const std::string sql =
      "SELECT d.w, count(*), sum(f.v) FROM mem.raw.facts f "
      "JOIN mem.raw.dim d ON f.k = d.key GROUP BY d.w";
  auto reference = Run(sql, {});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  FaultInjector::Global().ArmScripted("exchange.push", {1});
  auto result = Run(sql, {{"query_max_task_retries", "1"},
                          {"task_retry_backoff_millis", "1"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedRows(*result), SortedRows(*reference));
  EXPECT_TRUE(
      JournalHasEvent(cluster_->coordinator(), QueryEventKind::kRestarted));
  EXPECT_EQ(cluster_->coordinator().metrics().Get("query.restarted"), 1);
  EXPECT_EQ(result->exec_metrics["query.restarted"], 1);
}

// Scripted nth-call faults make precise regressions expressible: exactly the
// 2nd split open fails, leaf retry re-dispatches, and the query still
// matches the reference with exactly one retry journaled.
TEST_F(ChaosQueryTest, ScriptedSplitOpenFaultRetriesExactlyOnce) {
  InjectorGuard guard;
  const std::string sql = "SELECT count(*), sum(v) FROM mem.raw.facts";
  auto reference = Run(sql, {});
  ASSERT_TRUE(reference.ok());

  FaultInjector::Global().ArmScripted("connector.split.open", {2});
  auto result = Run(sql, {{"query_max_task_retries", "2"},
                          {"task_retry_backoff_millis", "1"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedRows(*result), SortedRows(*reference));
  EXPECT_EQ(result->exec_metrics["task.retry.count"], 1);
  EXPECT_EQ(FaultInjector::Global().InjectedCount("connector.split.open"), 1);
}

// Lazy-scan chaos: the `lakefile.page.read` fault point fires inside the
// native reader's PageReader while a selective scan is skipping pages and
// late-materializing rows. A failed page must surface as a classified
// retryable error (absorbed by leaf retry) — never as wrong or partial rows.
TEST_F(ChaosQueryTest, LazyScanPageReadFaultsNeverCorruptResults) {
  InjectorGuard guard;
  // A dedicated hive table with many small pages and a sorted key, so the
  // scan actually exercises page skipping + lazy materialization while the
  // fault point is armed.
  TypePtr lazy_type = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(hive_->CreateTable("raw", "lazy", lazy_type).ok());
  {
    const size_t n = 1600;
    std::vector<int64_t> k(n), v(n);
    for (size_t i = 0; i < n; ++i) {
      k[i] = static_cast<int64_t>(i);
      v[i] = static_cast<int64_t>(i) * 3;
    }
    lakefile::WriterOptions writer_options;
    writer_options.row_group_rows = n;  // one group; skipping is per page
    writer_options.page_rows = 64;
    ASSERT_TRUE(hive_
                    ->WriteDataFile("raw", "lazy", "",
                                    {Page({MakeBigintVector(std::move(k)),
                                           MakeBigintVector(std::move(v))})},
                                    writer_options)
                    .ok());
  }
  const std::vector<std::string> corpus = {
      "SELECT k, v FROM s3hive.raw.lazy WHERE k < 40",           // selective
      "SELECT sum(v) FROM s3hive.raw.lazy WHERE k >= 1500",      // tail pages
      "SELECT count(*), sum(v) FROM s3hive.raw.lazy",            // full scan
  };
  std::map<std::string, std::vector<std::string>> references;
  for (const std::string& sql : corpus) {
    auto clean = Run(sql, {});
    ASSERT_TRUE(clean.ok()) << sql << "\n" << clean.status().ToString();
    references[sql] = SortedRows(*clean);
  }

  auto& injector = FaultInjector::Global();

  // Scripted regression: exactly the 2nd page read fails; leaf retry
  // re-dispatches and the selective scan still returns exact rows.
  injector.ArmScripted("lakefile.page.read", {2}, StatusCode::kIoError);
  auto retried = Run(corpus[0], {{"query_max_task_retries", "2"},
                                 {"task_retry_backoff_millis", "1"}});
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(SortedRows(*retried), references[corpus[0]]);
  EXPECT_EQ(injector.InjectedCount("lakefile.page.read"), 1);
  injector.Reset();

  // Probabilistic schedules: every run either matches exactly or fails with
  // a classified retryable error.
  const uint64_t base_seed =
      static_cast<uint64_t>(EnvInt("PRESTO_CHAOS_SEED", 20260806));
  const int iterations = static_cast<int>(EnvInt("PRESTO_CHAOS_ITERS", 3));
  int64_t total_injected = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    injector.Seed(base_seed + 1000 + static_cast<uint64_t>(iter));
    Random knobs(base_seed * 17 + static_cast<uint64_t>(iter));
    injector.ArmProbabilistic("lakefile.page.read",
                              0.02 + 0.06 * knobs.NextDouble(),
                              StatusCode::kIoError);
    for (const std::string& sql : corpus) {
      auto result = Run(sql, {{"query_max_task_retries", "3"},
                              {"task_retry_backoff_millis", "1"},
                              {"query_timeout_millis", "30000"}});
      if (result.ok()) {
        EXPECT_EQ(SortedRows(*result), references[sql])
            << "page-read fault corrupted results (iter " << iter << ") on\n"
            << sql;
      } else {
        EXPECT_TRUE(IsRetryableStatus(result.status()))
            << "page-read fault leaked out unclassified (iter " << iter
            << "): " << result.status().ToString() << "\n"
            << sql;
      }
    }
    EXPECT_GT(injector.CallCount("lakefile.page.read"), 0)
        << "lazy scan never reached the page-read fault point";
    total_injected += injector.TotalInjected();
  }
  EXPECT_GT(total_injected, 0) << "schedule never fired a page-read fault";
  injector.Reset();

  // Disarmed again: the corpus is exact.
  for (const std::string& sql : corpus) {
    auto result = Run(sql, {});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(SortedRows(*result), references[sql]);
  }
}

// A retry backoff longer than the query deadline must not hold the query
// alive: the backoff sleep wakes at the deadline and the query fails with
// the canonical timeout status in bounded wall time.
TEST_F(ChaosQueryTest, RetryBackoffHonorsQueryDeadline) {
  InjectorGuard guard;
  FaultInjector::Global().ArmScripted("connector.split.open", {1});
  Stopwatch watch;
  auto result = Run("SELECT count(*), sum(v) FROM mem.raw.facts",
                    {{"query_max_task_retries", "3"},
                     {"task_retry_backoff_millis", "10000"},
                     {"query_timeout_millis", "250"}});
  ASSERT_FALSE(result.ok())
      << "the injected fault never failed the query at all";
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos)
      << result.status().ToString();
  EXPECT_LT(watch.ElapsedNanos(), 5'000'000'000LL)
      << "a 10s retry backoff outlived a 250ms query deadline";
  EXPECT_GE(cluster_->coordinator().metrics().Get("query.timeout"), 1);
}

// Per-query deadline: a query that cannot finish in time returns a clean
// kUnavailable "deadline exceeded" instead of wedging the drain barrier.
TEST(QueryTimeoutTest, DeadlineReturnsCleanUnavailable) {
  InjectorGuard guard;
  PrestoCluster cluster("timeout", 2, 2);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr row = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("raw", "big", row).ok());
  Random rng(7);
  for (int p = 0; p < 8; ++p) {
    size_t n = 65536;
    std::vector<int64_t> k(n), v(n);
    for (size_t i = 0; i < n; ++i) {
      k[i] = static_cast<int64_t>(rng.Next() % 100000);
      v[i] = static_cast<int64_t>(rng.NextBelow(1000));
    }
    ASSERT_TRUE(memory
                    ->AppendPage("raw", "big",
                                 Page({MakeBigintVector(std::move(k)),
                                       MakeBigintVector(std::move(v))}))
                    .ok());
  }
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("mem", memory).ok());

  Session session;
  session.properties["query_timeout_millis"] = "1";
  auto result = cluster.Execute(
      "SELECT k, count(*), sum(v) FROM mem.raw.big GROUP BY k", session);
  ASSERT_FALSE(result.ok()) << "a 1 ms deadline on a 512k-row group-by held";
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("deadline"), std::string::npos)
      << result.status().ToString();
  EXPECT_GE(cluster.coordinator().metrics().Get("query.timeout"), 1);

  // Without the deadline the same query completes.
  auto ok = cluster.Execute(
      "SELECT k, count(*), sum(v) FROM mem.raw.big GROUP BY k", Session());
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// A producer blocked on exchange backpressure wakes at the deadline and the
// exchange latches the timeout — the wedged-query shape the deadline exists
// to break.
TEST(QueryTimeoutTest, BlockedExchangeProducerWakesAtDeadline) {
  auto make_page = [] {
    std::vector<int64_t> values(1024);
    for (size_t i = 0; i < values.size(); ++i) values[i] = static_cast<int64_t>(i);
    return Page({MakeBigintVector(std::move(values))});
  };
  PartitionedExchange exchange(1, /*capacity_bytes=*/1024);
  exchange.SetProducerCount(1);
  exchange.SetDeadlineNanos(SteadyNowNanos() + 100'000'000);  // 100 ms
  Stopwatch watch;
  std::thread producer([&] {
    exchange.Push(0, make_page());  // fills the budget
    exchange.Push(0, make_page());  // blocks until the deadline latches
    exchange.ProducerDone();
  });
  producer.join();
  EXPECT_LT(watch.ElapsedNanos(), 10'000'000'000LL)
      << "blocked producer did not wake at the deadline";
  auto next = exchange.Next(0);
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(next.status().message().find("deadline"), std::string::npos);
}

// ---------------------------------------------------------------------------
// PartitionedExchange fault-injection fuzz (satellite): random producer
// Fail() / consumer-cancel interleavings on randomized pages must never
// deadlock a blocked producer or leak buffered bytes past the budget.
// ---------------------------------------------------------------------------

TEST(ExchangeFaultFuzzTest, RandomFailCancelInterleavingsNeverDeadlockOrLeak) {
  const uint64_t base_seed =
      static_cast<uint64_t>(EnvInt("PRESTO_CHAOS_SEED", 20260806));
  const int iterations = static_cast<int>(EnvInt("PRESTO_CHAOS_ITERS", 3)) * 8;

  for (int iter = 0; iter < iterations; ++iter) {
    Random rng(base_seed ^ (0x9e3779b9ULL * (iter + 1)));
    const int num_partitions = 1 + static_cast<int>(rng.NextBelow(4));
    const int num_producers = 1 + static_cast<int>(rng.NextBelow(4));
    const int64_t capacity = 512 * (1 + static_cast<int64_t>(rng.NextBelow(8)));

    // Pre-draw every schedule decision on the main thread so the run is a
    // deterministic function of the seed (threads interleave freely, but
    // each thread's script is fixed).
    struct ProducerScript {
      std::vector<std::pair<int, size_t>> pages;  // (partition, rows)
      int fail_at = -1;  // call Fail() before pushing this page index
    };
    std::vector<ProducerScript> producers(num_producers);
    int64_t max_page_bytes = 0;
    for (ProducerScript& script : producers) {
      size_t pages = 1 + rng.NextBelow(12);
      for (size_t i = 0; i < pages; ++i) {
        size_t rows = 1 + rng.NextBelow(512);
        script.pages.emplace_back(static_cast<int>(rng.NextBelow(num_partitions)),
                                  rows);
        max_page_bytes =
            std::max(max_page_bytes, static_cast<int64_t>(rows * 8 + 128));
      }
      if (rng.NextBool(0.25)) {
        script.fail_at = static_cast<int>(rng.NextBelow(script.pages.size()));
      }
    }
    std::vector<int> cancel_after(num_partitions, -1);
    for (int p = 0; p < num_partitions; ++p) {
      if (rng.NextBool(0.3)) {
        cancel_after[p] = static_cast<int>(rng.NextBelow(8));
      }
    }

    PartitionedExchange exchange(num_partitions, capacity);
    exchange.SetProducerCount(num_producers);
    std::vector<std::thread> threads;
    for (const ProducerScript& script : producers) {
      threads.emplace_back([&exchange, &script] {
        for (size_t i = 0; i < script.pages.size(); ++i) {
          if (static_cast<int>(i) == script.fail_at) {
            exchange.Fail(Status::Unavailable("injected producer failure"));
          }
          auto [partition, rows] = script.pages[i];
          std::vector<int64_t> values(rows);
          for (size_t r = 0; r < rows; ++r) values[r] = static_cast<int64_t>(r);
          exchange.Push(partition, Page({MakeBigintVector(std::move(values))}));
        }
        exchange.ProducerDone();
      });
    }
    for (int p = 0; p < num_partitions; ++p) {
      threads.emplace_back([&exchange, p, cancel = cancel_after[p]] {
        int consumed = 0;
        while (true) {
          if (cancel >= 0 && consumed >= cancel) {
            exchange.ConsumerDone(p);
            return;
          }
          auto page = exchange.Next(p);
          if (!page.ok() || !page->has_value()) return;
          ++consumed;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();

    EXPECT_LE(exchange.peak_buffered_bytes(), capacity + max_page_bytes)
        << "byte budget breached (seed " << base_seed << ", iter " << iter
        << ")";
    EXPECT_EQ(exchange.buffered_bytes(), 0)
        << "buffered bytes leaked after teardown (iter " << iter << ")";
  }
}

// ---------------------------------------------------------------------------
// Gateway health-aware routing (satellite): N consecutive retryable failures
// mark a cluster unhealthy and traffic fails over; the first success (e.g.
// an out-of-band probe) restores it.
// ---------------------------------------------------------------------------

// Memory connector whose split opens fail with kUnavailable while `failing`
// is set — a cluster whose substrate is down, from the gateway's viewpoint.
class FlakyMemoryConnector : public MemoryConnector {
 public:
  Result<std::unique_ptr<ConnectorPageSource>> CreatePageSource(
      const SplitPtr& split, const AcceptedPushdown& pushdown) override {
    if (failing.load()) {
      return Status::Unavailable("injected cluster outage");
    }
    return MemoryConnector::CreatePageSource(split, pushdown);
  }

  std::atomic<bool> failing{false};
};

TEST(GatewayHealthTest, UnhealthyClusterFailsOverAndRecovers) {
  mysqlite::MySqlLite routing_db;
  PrestoGateway gateway(&routing_db, /*unhealthy_threshold=*/3);

  PrestoCluster alpha("alpha", 1, 1);
  PrestoCluster beta("beta", 1, 1);
  auto flaky = std::make_shared<FlakyMemoryConnector>();
  auto healthy = std::make_shared<MemoryConnector>();
  TypePtr row = Type::Row({"x"}, {Type::Bigint()});
  for (auto& connector :
       std::vector<std::shared_ptr<MemoryConnector>>{flaky, healthy}) {
    ASSERT_TRUE(connector->CreateTable("raw", "t", row).ok());
    ASSERT_TRUE(
        connector->AppendPage("raw", "t", Page({MakeBigintVector({1, 2, 3})}))
            .ok());
  }
  ASSERT_TRUE(alpha.catalogs().RegisterCatalog("mem", flaky).ok());
  ASSERT_TRUE(beta.catalogs().RegisterCatalog("mem", healthy).ok());
  ASSERT_TRUE(gateway.RegisterCluster("alpha", &alpha).ok());
  ASSERT_TRUE(gateway.RegisterCluster("beta", &beta).ok());
  ASSERT_TRUE(gateway.SetDefaultRoute("alpha").ok());

  const std::string sql = "SELECT sum(x) FROM mem.raw.t";
  Session session;

  // Healthy path routes to alpha.
  auto routed = gateway.Route(session);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ((*routed)->name(), "alpha");

  // Alpha's substrate goes down: the submission burns through alpha's
  // failure threshold, marks it unhealthy, and completes on beta.
  flaky->failing.store(true);
  auto result = gateway.Submit(sql, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->Row(0)[0], Value::Int(6));
  EXPECT_FALSE(gateway.IsClusterHealthy("alpha"));
  EXPECT_TRUE(gateway.IsClusterHealthy("beta"));
  EXPECT_EQ(gateway.metrics().Get("gateway.cluster.unhealthy"), 1);
  EXPECT_GE(gateway.metrics().Get("gateway.query.retried"), 3);

  // While alpha is sick, routing itself fails over.
  auto rerouted = gateway.Route(session);
  ASSERT_TRUE(rerouted.ok());
  EXPECT_EQ((*rerouted)->name(), "beta");
  EXPECT_GE(gateway.metrics().Get("gateway.route.failover"), 1);

  // Terminal (user) errors do not count against the healthy cluster.
  auto user_error = gateway.Submit("SELECT nope FROM mem.raw.missing", session);
  EXPECT_FALSE(user_error.ok());
  EXPECT_TRUE(gateway.IsClusterHealthy("beta"));

  // Alpha heals; the first success (out-of-band probe) restores routing.
  flaky->failing.store(false);
  gateway.ReportClusterSuccess("alpha");
  EXPECT_TRUE(gateway.IsClusterHealthy("alpha"));
  EXPECT_EQ(gateway.metrics().Get("gateway.cluster.recovered"), 1);
  auto back = gateway.Route(session);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->name(), "alpha");
  auto healthy_again = gateway.Submit(sql, session);
  ASSERT_TRUE(healthy_again.ok()) << healthy_again.status().ToString();
  EXPECT_EQ(healthy_again->Row(0)[0], Value::Int(6));
}

TEST(GatewayHealthTest, AllClustersUnhealthyIsCleanUnavailable) {
  mysqlite::MySqlLite routing_db;
  PrestoGateway gateway(&routing_db, /*unhealthy_threshold=*/1);
  PrestoCluster only("only", 1, 1);
  ASSERT_TRUE(gateway.RegisterCluster("only", &only).ok());
  ASSERT_TRUE(gateway.SetDefaultRoute("only").ok());
  gateway.ReportClusterFailure("only");
  auto routed = gateway.Route(Session());
  ASSERT_FALSE(routed.ok());
  EXPECT_EQ(routed.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace presto
