// End-to-end engine tests: SQL in, results out, through the full
// parse -> analyze -> optimize -> fragment -> schedule -> execute path.

#include <gtest/gtest.h>

#include "presto/cluster/cluster.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// Shared fixture: a cluster with a memory catalog holding small tables.
class EngineTest : public ::testing::Test {
 protected:
  static PrestoCluster& Cluster() {
    static PrestoCluster& cluster = *new PrestoCluster("test", 2, 2);
    static bool initialized = [] {
      auto memory = std::make_shared<MemoryConnector>();

      // orders(id BIGINT, customer VARCHAR, price DOUBLE, region VARCHAR)
      TypePtr orders_type = Type::Row(
          {"id", "customer", "price", "region"},
          {Type::Bigint(), Type::Varchar(), Type::Double(), Type::Varchar()});
      EXPECT_TRUE(memory->CreateTable("default", "orders", orders_type).ok());
      VectorBuilder id(Type::Bigint()), cust(Type::Varchar()),
          price(Type::Double()), region(Type::Varchar());
      struct Row {
        int64_t id;
        const char* customer;
        double price;
        const char* region;
      };
      std::vector<Row> rows = {{1, "ann", 10.0, "us"}, {2, "bob", 20.0, "eu"},
                               {3, "ann", 5.0, "us"},  {4, "cat", 7.5, "ap"},
                               {5, "bob", 2.5, "eu"},  {6, "dan", 40.0, "us"}};
      for (const Row& r : rows) {
        id.AppendBigint(r.id);
        cust.AppendString(r.customer);
        price.AppendDouble(r.price);
        region.AppendString(r.region);
      }
      EXPECT_TRUE(memory
                      ->AppendPage("default", "orders",
                                   Page({id.Build(), cust.Build(), price.Build(),
                                         region.Build()}))
                      .ok());

      // customers(name VARCHAR, tier BIGINT)
      TypePtr customers_type =
          Type::Row({"name", "tier"}, {Type::Varchar(), Type::Bigint()});
      EXPECT_TRUE(memory->CreateTable("default", "customers", customers_type).ok());
      VectorBuilder name(Type::Varchar()), tier(Type::Bigint());
      for (auto& [n, t] : std::vector<std::pair<const char*, int64_t>>{
               {"ann", 1}, {"bob", 2}, {"cat", 1}}) {
        name.AppendString(n);
        tier.AppendBigint(t);
      }
      EXPECT_TRUE(memory
                      ->AppendPage("default", "customers",
                                   Page({name.Build(), tier.Build()}))
                      .ok());

      // trips(id BIGINT, base ROW(driver_uuid VARCHAR, city_id BIGINT))
      TypePtr base_type = Type::Row({"driver_uuid", "city_id"},
                                    {Type::Varchar(), Type::Bigint()});
      TypePtr trips_type = Type::Row({"id", "base"}, {Type::Bigint(), base_type});
      EXPECT_TRUE(memory->CreateTable("default", "trips", trips_type).ok());
      VectorBuilder trip_id(Type::Bigint()), base(base_type);
      for (int64_t i = 0; i < 10; ++i) {
        trip_id.AppendBigint(i);
        EXPECT_TRUE(base.Append(Value::Row({Value::String("d" + std::to_string(i)),
                                            Value::Int(i % 3)}))
                        .ok());
      }
      EXPECT_TRUE(memory
                      ->AppendPage("default", "trips",
                                   Page({trip_id.Build(), base.Build()}))
                      .ok());

      EXPECT_TRUE(cluster.catalogs().RegisterCatalog("memory", memory).ok());
      return true;
    }();
    (void)initialized;
    return cluster;
  }

  static QueryResult Run(const std::string& sql) {
    Session session;
    auto result = Cluster().Execute(sql, session);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    if (!result.ok()) return QueryResult();
    return std::move(*result);
  }

  static Status RunError(const std::string& sql) {
    Session session;
    auto result = Cluster().Execute(sql, session);
    EXPECT_FALSE(result.ok()) << sql << " unexpectedly succeeded";
    return result.status();
  }

  // Flattens results into boxed rows for easy assertions.
  static std::vector<std::vector<Value>> Rows(const QueryResult& result) {
    std::vector<std::vector<Value>> out;
    for (const Page& page : result.pages) {
      for (size_t r = 0; r < page.num_rows(); ++r) out.push_back(page.GetRow(r));
    }
    return out;
  }
};

TEST_F(EngineTest, SelectStar) {
  QueryResult result = Run("SELECT * FROM orders");
  EXPECT_EQ(result.total_rows, 6);
  EXPECT_EQ(result.column_names,
            (std::vector<std::string>{"id", "customer", "price", "region"}));
}

TEST_F(EngineTest, ProjectionAndArithmetic) {
  QueryResult result = Run("SELECT id + 100, price * 2.0 AS doubled FROM orders WHERE id = 1");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(101));
  EXPECT_EQ(rows[0][1], Value::Double(20.0));
  EXPECT_EQ(result.column_names[1], "doubled");
}

TEST_F(EngineTest, WhereFilters) {
  QueryResult result = Run(
      "SELECT id FROM orders WHERE region = 'us' AND price > 6.0 ORDER BY id");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[1][0], Value::Int(6));
}

TEST_F(EngineTest, InBetweenLikeNot) {
  EXPECT_EQ(Run("SELECT id FROM orders WHERE id IN (2, 4)").total_rows, 2);
  EXPECT_EQ(Run("SELECT id FROM orders WHERE id BETWEEN 2 AND 4").total_rows, 3);
  EXPECT_EQ(Run("SELECT id FROM orders WHERE customer LIKE 'a%'").total_rows, 2);
  EXPECT_EQ(Run("SELECT id FROM orders WHERE customer NOT LIKE 'a%'").total_rows, 4);
  EXPECT_EQ(Run("SELECT id FROM orders WHERE NOT (region = 'us')").total_rows, 3);
}

TEST_F(EngineTest, GlobalAggregation) {
  QueryResult result = Run(
      "SELECT count(*), sum(price), min(price), max(price), avg(price) FROM orders");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(6));
  EXPECT_EQ(rows[0][1], Value::Double(85.0));
  EXPECT_EQ(rows[0][2], Value::Double(2.5));
  EXPECT_EQ(rows[0][3], Value::Double(40.0));
  EXPECT_TRUE(rows[0][4].Equals(Value::Double(85.0 / 6)));
}

TEST_F(EngineTest, GlobalAggregationOnEmptyInput) {
  QueryResult result = Run("SELECT count(*), sum(price) FROM orders WHERE id > 999");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(0));
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(EngineTest, GroupByWithHaving) {
  QueryResult result = Run(
      "SELECT region, count(*) AS n, sum(price) AS total FROM orders "
      "GROUP BY region HAVING count(*) >= 2 ORDER BY region");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::String("eu"));
  EXPECT_EQ(rows[0][1], Value::Int(2));
  EXPECT_EQ(rows[0][2], Value::Double(22.5));
  EXPECT_EQ(rows[1][0], Value::String("us"));
  EXPECT_EQ(rows[1][1], Value::Int(3));
  EXPECT_EQ(rows[1][2], Value::Double(55.0));
}

TEST_F(EngineTest, GroupByOrdinal) {
  QueryResult result =
      Run("SELECT customer, count(*) FROM orders GROUP BY 1 ORDER BY 1");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], Value::String("ann"));
  EXPECT_EQ(rows[0][1], Value::Int(2));
}

TEST_F(EngineTest, InnerJoin) {
  QueryResult result = Run(
      "SELECT o.id, c.tier FROM orders o JOIN customers c ON o.customer = c.name "
      "ORDER BY o.id");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 5u);  // dan has no customer row
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[0][1], Value::Int(1));
  EXPECT_EQ(rows[4][0], Value::Int(5));
}

TEST_F(EngineTest, LeftJoinNullExtends) {
  QueryResult result = Run(
      "SELECT o.id, c.tier FROM orders o LEFT JOIN customers c "
      "ON o.customer = c.name WHERE o.id = 6");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(6));
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(EngineTest, JoinWithResidualFilter) {
  QueryResult result = Run(
      "SELECT o.id FROM orders o JOIN customers c "
      "ON o.customer = c.name AND o.price > c.tier * 8.0 ORDER BY o.id");
  auto rows = Rows(result);
  // ann: price>8 -> id 1; bob: price>16 -> id 2; cat: price>8 -> none.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[1][0], Value::Int(2));
}

TEST_F(EngineTest, CrossJoin) {
  QueryResult result = Run("SELECT o.id, c.name FROM orders o CROSS JOIN customers c");
  EXPECT_EQ(result.total_rows, 18);
}

TEST_F(EngineTest, AggregateOverJoin) {
  QueryResult result = Run(
      "SELECT c.tier, sum(o.price) AS total FROM orders o "
      "JOIN customers c ON o.customer = c.name GROUP BY c.tier ORDER BY c.tier");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_EQ(rows[0][1], Value::Double(22.5));
  EXPECT_EQ(rows[1][0], Value::Int(2));
  EXPECT_EQ(rows[1][1], Value::Double(22.5));
}

TEST_F(EngineTest, OrderByDescAndLimit) {
  QueryResult result = Run("SELECT id, price FROM orders ORDER BY price DESC LIMIT 2");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(6));
  EXPECT_EQ(rows[1][0], Value::Int(2));
}

TEST_F(EngineTest, LimitWithoutOrder) {
  EXPECT_EQ(Run("SELECT id FROM orders LIMIT 3").total_rows, 3);
  EXPECT_EQ(Run("SELECT id FROM orders LIMIT 0").total_rows, 0);
}

TEST_F(EngineTest, NestedStructDereference) {
  QueryResult result = Run(
      "SELECT base.driver_uuid FROM trips WHERE base.city_id = 1 ORDER BY 1");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 3u);  // ids 1, 4, 7
  EXPECT_EQ(rows[0][0], Value::String("d1"));
  EXPECT_EQ(rows[1][0], Value::String("d4"));
  EXPECT_EQ(rows[2][0], Value::String("d7"));
}

TEST_F(EngineTest, GroupByNestedField) {
  QueryResult result = Run(
      "SELECT base.city_id, count(*) FROM trips GROUP BY base.city_id "
      "ORDER BY base.city_id");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::Int(0));
  EXPECT_EQ(rows[0][1], Value::Int(4));  // 0,3,6,9
}

TEST_F(EngineTest, CastAndCoercion) {
  QueryResult result =
      Run("SELECT CAST(id AS VARCHAR), id + 0.5 FROM orders WHERE id = 3");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::String("3"));
  EXPECT_EQ(rows[0][1], Value::Double(3.5));
}

TEST_F(EngineTest, ApproxDistinct) {
  QueryResult result = Run("SELECT approx_distinct(customer) FROM orders");
  auto rows = Rows(result);
  EXPECT_EQ(rows[0][0], Value::Int(4));
}

TEST_F(EngineTest, ExplainShowsPushdown) {
  Session session;
  auto explain = Cluster().Explain(
      "SELECT base.driver_uuid FROM trips WHERE base.city_id = 1", session);
  ASSERT_TRUE(explain.ok());
  // The memory connector cannot absorb predicates, so the filter stays in
  // the engine; projection pushdown still applies.
  EXPECT_NE(explain->find("TableScan[memory.default.trips]"), std::string::npos);
  EXPECT_NE(explain->find("Filter"), std::string::npos);
  EXPECT_NE(explain->find("Fragment 1 (leaf)"), std::string::npos);
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  EXPECT_EQ(RunError("SELECT missing_col FROM orders").code(), StatusCode::kUserError);
  EXPECT_EQ(RunError("SELECT id FROM no_such_table").code(), StatusCode::kNotFound);
  EXPECT_EQ(RunError("SELECT FROM orders").code(), StatusCode::kSyntaxError);
  EXPECT_EQ(RunError("SELECT no_such_fn(id) FROM orders").code(),
            StatusCode::kUserError);
  EXPECT_EQ(RunError("SELECT sum(price) FROM orders GROUP BY").code(),
            StatusCode::kSyntaxError);
}

TEST_F(EngineTest, AmbiguousColumnRejected) {
  Status status = RunError(
      "SELECT id FROM orders o JOIN trips t ON o.id = t.id WHERE id = 1");
  EXPECT_EQ(status.code(), StatusCode::kUserError);
  EXPECT_NE(status.message().find("ambiguous"), std::string::npos);
}


TEST_F(EngineTest, SelectDistinct) {
  QueryResult result = Run("SELECT DISTINCT region FROM orders ORDER BY region");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::String("ap"));
  EXPECT_EQ(rows[1][0], Value::String("eu"));
  EXPECT_EQ(rows[2][0], Value::String("us"));

  QueryResult pairs =
      Run("SELECT DISTINCT customer, region FROM orders ORDER BY 1, 2");
  EXPECT_EQ(Rows(pairs).size(), 4u);  // ann/us, bob/eu, cat/ap, dan/us
}

TEST_F(EngineTest, InsufficientResourceForBigJoinBuild) {
  Session session;
  session.properties["max_join_build_rows"] = "3";
  // Broadcast replicates the full build side into every join task, so the
  // per-task limit trips.
  session.properties["join_distribution_type"] = "broadcast";
  auto result = Cluster().Execute(
      "SELECT o.id FROM orders o JOIN orders o2 ON o.id = o2.id", session);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("Insufficient Resource"),
            std::string::npos)
      << result.status().ToString();
  // Raising the session limit lets the same query run.
  session.properties["max_join_build_rows"] = "1000";
  EXPECT_TRUE(Cluster()
                  .Execute("SELECT o.id FROM orders o JOIN orders o2 "
                           "ON o.id = o2.id",
                           session)
                  .ok());
  // A hash-partitioned join divides the build side across partitions, so the
  // same small per-task limit is never hit.
  session.properties["max_join_build_rows"] = "3";
  session.properties["join_distribution_type"] = "partitioned";
  EXPECT_TRUE(Cluster()
                  .Execute("SELECT o.id FROM orders o JOIN orders o2 "
                           "ON o.id = o2.id",
                           session)
                  .ok());
}


TEST_F(EngineTest, CountDistinct) {
  QueryResult result = Run(
      "SELECT count(DISTINCT customer), count(DISTINCT region) FROM orders");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(4));
  EXPECT_EQ(rows[0][1], Value::Int(3));

  QueryResult grouped = Run(
      "SELECT region, count(DISTINCT customer) FROM orders "
      "GROUP BY region ORDER BY region");
  auto grows = Rows(grouped);
  ASSERT_EQ(grows.size(), 3u);
  EXPECT_EQ(grows[2][0], Value::String("us"));
  EXPECT_EQ(grows[2][1], Value::Int(2));  // ann, dan

  EXPECT_EQ(RunError("SELECT sum(DISTINCT price) FROM orders").code(),
            StatusCode::kUserError);
}

}  // namespace
}  // namespace presto
