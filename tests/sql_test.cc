// Tests for the SQL frontend: lexer, parser (AST shapes, precedence, error
// positions), and plan-level checks on the optimizer and fragmenter via
// EXPLAIN output.

#include <gtest/gtest.h>

#include "presto/cluster/cluster.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/sql/lexer.h"
#include "presto/sql/parser.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT x1, 'it''s', 1.5e3 <> -42 -- comment\n FROM t");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> texts;
  for (const Token& t : *tokens) {
    if (t.kind != TokenKind::kEnd) texts.push_back(t.text);
  }
  EXPECT_EQ(texts, (std::vector<std::string>{"SELECT", "x1", ",", "it's", ",",
                                             "1.5e3", "<>", "-", "42", "FROM",
                                             "t"}));
}

TEST(LexerTest, OperatorsAndErrors) {
  auto tokens = Tokenize("a <= b >= c != d -> e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<=");
  EXPECT_EQ((*tokens)[3].text, ">=");
  EXPECT_EQ((*tokens)[5].text, "<>");  // != normalizes to <>
  EXPECT_EQ((*tokens)[7].text, "->");
  EXPECT_EQ(Tokenize("SELECT 'unterminated").status().code(),
            StatusCode::kSyntaxError);
  EXPECT_EQ(Tokenize("SELECT @").status().code(), StatusCode::kSyntaxError);
}

TEST(ParserTest, FullQueryShape) {
  auto query = ParseQuery(
      "SELECT a.x AS col, count(*) FROM cat.sch.tbl a "
      "LEFT JOIN other b ON a.id = b.id "
      "WHERE a.x > 1 AND b.y LIKE 'p%' "
      "GROUP BY 1 HAVING count(*) > 2 "
      "ORDER BY col DESC, 2 LIMIT 10;");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->items.size(), 2u);
  EXPECT_EQ(query->items[0].alias, "col");
  EXPECT_EQ(query->from.name_parts,
            (std::vector<std::string>{"cat", "sch", "tbl"}));
  EXPECT_EQ(query->from.alias, "a");
  ASSERT_EQ(query->joins.size(), 1u);
  EXPECT_EQ(query->joins[0].kind, JoinClause::Kind::kLeft);
  ASSERT_NE(query->where, nullptr);
  EXPECT_EQ(query->group_by.size(), 1u);
  ASSERT_NE(query->having, nullptr);
  ASSERT_EQ(query->order_by.size(), 2u);
  EXPECT_FALSE(query->order_by[0].ascending);
  EXPECT_TRUE(query->order_by[1].ascending);
  EXPECT_EQ(query->limit, 10);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto expr = ParseExpression("a OR b AND NOT c = 1 + 2 * 3");
  ASSERT_TRUE(expr.ok());
  // OR binds loosest; * binds tightest.
  EXPECT_EQ((*expr)->ToString(),
            "(a OR (b AND NOT((c = (1 + (2 * 3))))))");
}

TEST(ParserTest, BetweenInLikeIsNull) {
  EXPECT_EQ((*ParseExpression("x BETWEEN 1 AND 2"))->ToString(),
            "(x BETWEEN 1 AND 2)");
  EXPECT_EQ((*ParseExpression("x NOT IN (1, 2)"))->ToString(),
            "(x NOT IN (1, 2))");
  EXPECT_EQ((*ParseExpression("x IS NOT NULL"))->ToString(),
            "(x IS NOT NULL)");
  EXPECT_EQ((*ParseExpression("CAST(x AS DOUBLE)"))->ToString(),
            "CAST(x AS DOUBLE)");
}

TEST(ParserTest, LambdaForms) {
  EXPECT_EQ((*ParseExpression("transform(arr, x -> x + 1)"))->ToString(),
            "transform(arr, (x) -> (x + 1))");
  EXPECT_EQ((*ParseExpression("f(a, (x, y) -> x)"))->ToString(),
            "f(a, (x, y) -> x)");
}

TEST(ParserTest, NestedFieldChains) {
  auto expr = ParseExpression("t.base.loc.lng");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ((*expr)->kind, AstExpr::Kind::kIdentifier);
  EXPECT_EQ((*expr)->parts,
            (std::vector<std::string>{"t", "base", "loc", "lng"}));
}

TEST(ParserTest, StarVariants) {
  auto q1 = ParseQuery("SELECT * FROM t");
  ASSERT_TRUE(q1.ok());
  EXPECT_TRUE(q1->items[0].star);
  auto q2 = ParseQuery("SELECT t.* FROM t");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(q2->items[0].star);
  EXPECT_EQ(q2->items[0].star_qualifier, "t");
  auto q3 = ParseQuery("SELECT count(*) FROM t");
  ASSERT_TRUE(q3.ok());
  EXPECT_TRUE(q3->items[0].expr->star_arg);
}

TEST(ParserTest, SyntaxErrorsCarryPosition) {
  Status s = ParseQuery("SELECT FROM t").status();
  EXPECT_EQ(s.code(), StatusCode::kSyntaxError);
  EXPECT_NE(s.message().find("offset"), std::string::npos);
  EXPECT_FALSE(ParseQuery("SELECT x t").ok());  // missing FROM
  EXPECT_FALSE(ParseQuery("SELECT x FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM t LIMIT banana").ok());
  EXPECT_FALSE(ParseQuery("SELECT x FROM t JOIN u").ok());  // missing ON
  EXPECT_FALSE(ParseQuery("SELECT x FROM t extra garbage").ok());
}

// ---------------------------------------------------------------------------
// Plan-shape tests via EXPLAIN
// ---------------------------------------------------------------------------

class PlanShapeTest : public ::testing::Test {
 protected:
  static PrestoCluster& Cluster() {
    static PrestoCluster& cluster = *new PrestoCluster("planshape", 1, 1);
    static bool initialized = [] {
      auto memory = std::make_shared<MemoryConnector>();
      TypePtr t = Type::Row({"a", "b", "c"},
                            {Type::Bigint(), Type::Double(), Type::Varchar()});
      EXPECT_TRUE(memory->CreateTable("default", "t", t).ok());
      EXPECT_TRUE(memory->AppendPage("default", "t",
                                     Page({MakeBigintVector({1, 2}),
                                           MakeDoubleVector({1.5, 2.5}),
                                           MakeVarcharVector({"x", "y"})}))
                      .ok());
      TypePtr u = Type::Row({"a", "d"}, {Type::Bigint(), Type::Bigint()});
      EXPECT_TRUE(memory->CreateTable("default", "u", u).ok());
      EXPECT_TRUE(memory->AppendPage("default", "u",
                                     Page({MakeBigintVector({1}),
                                           MakeBigintVector({10})}))
                      .ok());
      EXPECT_TRUE(cluster.catalogs().RegisterCatalog("memory", memory).ok());
      return true;
    }();
    (void)initialized;
    return cluster;
  }

  static std::string Explain(const std::string& sql,
                             Session session = Session()) {
    auto plan = Cluster().Explain(sql, session);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? *plan : "";
  }
};

TEST_F(PlanShapeTest, ProjectionPushdownPrunesColumns) {
  std::string plan = Explain("SELECT a FROM t");
  EXPECT_NE(plan.find("columns=[a]"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("columns=[a, b"), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, CountStarKeepsOneColumn) {
  std::string plan = Explain("SELECT count(*) FROM t");
  EXPECT_NE(plan.find("columns=[a]"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Aggregate(PARTIAL)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Aggregate(FINAL)"), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, AggregationSplitsAcrossFragments) {
  std::string plan = Explain("SELECT a, sum(b) FROM t GROUP BY a");
  // Partial in the leaf fragment (hash-partitioned on the group-by key),
  // final in its own intermediate stage above a partitioned remote source.
  size_t partial_pos = plan.find("Aggregate(PARTIAL)");
  size_t final_pos = plan.find("Aggregate(FINAL)");
  ASSERT_NE(partial_pos, std::string::npos) << plan;
  ASSERT_NE(final_pos, std::string::npos) << plan;
  // The final aggregation reads from a partitioned remote source below it.
  size_t remote_below_final = plan.find("RemoteSource", final_pos);
  ASSERT_NE(remote_below_final, std::string::npos) << plan;
  EXPECT_NE(plan.find("partitioned]", remote_below_final), std::string::npos)
      << plan;
  // The partial leaf hash-partitions its output on the group-by key.
  EXPECT_NE(plan.find("[output: hash("), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, SortLimitFusesToDistributedTopN) {
  std::string plan = Explain("SELECT a FROM t ORDER BY a LIMIT 5");
  EXPECT_NE(plan.find("TopN[5"), std::string::npos) << plan;
  EXPECT_NE(plan.find("TopN(PARTIAL)[5"), std::string::npos)
      << "leaf-side partial TopN expected:\n" << plan;
}

TEST_F(PlanShapeTest, LimitSplitsPartialFinal) {
  std::string plan = Explain("SELECT a FROM t LIMIT 7");
  EXPECT_NE(plan.find("Limit[7]"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Limit(PARTIAL)[7]"), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, SingleSideFilterPushedBelowJoin) {
  std::string plan = Explain(
      "SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.b > 1.0 AND u.d = 10");
  // Both single-side conjuncts end up in filters below the join (inside the
  // leaf fragments), not above it.
  size_t join_pos = plan.find("Join[INNER");
  ASSERT_NE(join_pos, std::string::npos) << plan;
  EXPECT_EQ(plan.find("Filter[(gt"), std::string::npos)
      << "no combined filter should remain above the join:\n" << plan;
  EXPECT_NE(plan.find("gt(b_1, 1.000000)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("eq(d_4, 10)"), std::string::npos) << plan;
}

TEST_F(PlanShapeTest, JoinDistributionFollowsSessionProperty) {
  Session broadcast;
  broadcast.properties["join_distribution_type"] = "broadcast";
  EXPECT_NE(Explain("SELECT t.a FROM t JOIN u ON t.a = u.a", broadcast)
                .find("Join[INNER, broadcast"),
            std::string::npos);
  Session partitioned;
  partitioned.properties["join_distribution_type"] = "partitioned";
  EXPECT_NE(Explain("SELECT t.a FROM t JOIN u ON t.a = u.a", partitioned)
                .find("Join[INNER, partitioned"),
            std::string::npos);
}

TEST_F(PlanShapeTest, EveryLeafFragmentHasOneScan) {
  std::string plan = Explain(
      "SELECT t.a, sum(u.d) FROM t JOIN u ON t.a = u.a GROUP BY t.a");
  // Two scans -> two leaf fragments.
  EXPECT_NE(plan.find("Fragment 1 (leaf)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Fragment 2 (leaf)"), std::string::npos) << plan;
}

}  // namespace
}  // namespace sql
}  // namespace presto
