// Tests for presto/common: Status/Result, byte buffers, hashing, RNG,
// compression codecs, thread pool, metrics.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "presto/common/bytes.h"
#include "presto/common/compression.h"
#include "presto/common/hash.h"
#include "presto/common/metrics.h"
#include "presto/common/random.h"
#include "presto/common/status.h"
#include "presto/common/thread_pool.h"

namespace presto {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such table");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such table");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleOf(int x) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleOf(3).value(), 6);
  EXPECT_FALSE(DoubleOf(-1).ok());
}

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteBuffer buf;
  buf.PutU8(7);
  buf.PutU32(123456);
  buf.PutI64(-99);
  buf.PutDouble(2.5);
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadU8().value(), 7);
  EXPECT_EQ(reader.ReadU32().value(), 123456u);
  EXPECT_EQ(reader.ReadI64().value(), -99);
  EXPECT_EQ(reader.ReadDouble().value(), 2.5);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, VarintRoundTrip) {
  ByteBuffer buf;
  std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1u << 20, 0xFFFFFFFFFFFFFFFFull};
  for (uint64_t v : values) buf.PutVarint(v);
  ByteReader reader(buf.bytes());
  for (uint64_t v : values) EXPECT_EQ(reader.ReadVarint().value(), v);
}

TEST(BytesTest, SignedVarintRoundTrip) {
  ByteBuffer buf;
  std::vector<int64_t> values = {0, -1, 1, -64, 63, -1000000, 1000000,
                                 INT64_MIN, INT64_MAX};
  for (int64_t v : values) buf.PutSignedVarint(v);
  ByteReader reader(buf.bytes());
  for (int64_t v : values) EXPECT_EQ(reader.ReadSignedVarint().value(), v);
}

TEST(BytesTest, StringRoundTrip) {
  ByteBuffer buf;
  buf.PutString("hello");
  buf.PutString("");
  buf.PutString(std::string(1000, 'x'));
  ByteReader reader(buf.bytes());
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_EQ(reader.ReadString().value(), std::string(1000, 'x'));
}

TEST(BytesTest, ReadPastEndIsCorruption) {
  ByteBuffer buf;
  buf.PutU8(1);
  ByteReader reader(buf.bytes());
  EXPECT_TRUE(reader.ReadU8().ok());
  EXPECT_EQ(reader.ReadU32().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedVarintIsCorruption) {
  std::vector<uint8_t> bytes = {0x80};  // continuation bit set, no next byte
  ByteReader reader(bytes.data(), bytes.size());
  EXPECT_EQ(reader.ReadVarint().status().code(), StatusCode::kCorruption);
}

TEST(HashTest, MixedIntegersDiffer) {
  std::set<uint64_t> hashes;
  for (uint64_t i = 0; i < 1000; ++i) hashes.insert(HashMix64(i));
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(HashTest, StringHashStable) {
  EXPECT_EQ(HashString("presto"), HashString("presto"));
  EXPECT_NE(HashString("presto"), HashString("Presto"));
}

TEST(RandomTest, Deterministic) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, RangesRespected) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, StringsHaveRequestedLength) {
  Random r(2);
  EXPECT_EQ(r.NextString(17).size(), 17u);
}

class CompressionRoundTrip : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(CompressionRoundTrip, EmptyInput) {
  auto compressed = Compress(GetParam(), nullptr, 0);
  auto out = Decompress(GetParam(), compressed.data(), compressed.size());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST_P(CompressionRoundTrip, RepetitiveData) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data += "abcabcabc_block_";
  auto compressed =
      Compress(GetParam(), reinterpret_cast<const uint8_t*>(data.data()), data.size());
  auto out = Decompress(GetParam(), compressed.data(), compressed.size());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(std::string(out->begin(), out->end()), data);
  if (GetParam() != CompressionKind::kNone) {
    EXPECT_LT(compressed.size(), data.size() / 4)
        << "repetitive data should compress well";
  }
}

TEST_P(CompressionRoundTrip, RandomData) {
  Random rng(3);
  std::vector<uint8_t> data(64 * 1024);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  auto compressed = Compress(GetParam(), data.data(), data.size());
  auto out = Decompress(GetParam(), compressed.data(), compressed.size());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

TEST_P(CompressionRoundTrip, RleStyleOverlappingMatches) {
  std::vector<uint8_t> data(10000, 'z');  // single repeated byte
  auto compressed = Compress(GetParam(), data.data(), data.size());
  auto out = Decompress(GetParam(), compressed.data(), compressed.size());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, data);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CompressionRoundTrip,
                         ::testing::Values(CompressionKind::kNone,
                                           CompressionKind::kSnappy,
                                           CompressionKind::kGzip),
                         [](const auto& info) {
                           return CompressionKindToString(info.param);
                         });

TEST(CompressionTest, DenseBeatsOrMatchesFastOnText) {
  std::string data;
  Random rng(4);
  // Structured text with long-range repetition: dense codec's larger window
  // and chained matching must not do worse than the fast codec.
  for (int i = 0; i < 2000; ++i) {
    data += "user_" + std::to_string(rng.NextBelow(50)) + ",city_" +
            std::to_string(rng.NextBelow(10)) + ",status_ok\n";
  }
  auto fast = Compress(CompressionKind::kSnappy,
                       reinterpret_cast<const uint8_t*>(data.data()), data.size());
  auto dense = Compress(CompressionKind::kGzip,
                        reinterpret_cast<const uint8_t*>(data.data()), data.size());
  EXPECT_LE(dense.size(), fast.size());
}

TEST(CompressionTest, CorruptFrameRejected) {
  std::string data = "hello world hello world hello world";
  auto compressed = Compress(CompressionKind::kSnappy,
                             reinterpret_cast<const uint8_t*>(data.data()),
                             data.size());
  // Truncate the frame: decompression must fail cleanly, not crash.
  auto out = Decompress(CompressionKind::kSnappy, compressed.data(),
                        compressed.size() / 2);
  EXPECT_FALSE(out.ok());
}

TEST(CompressionTest, UnknownKindNameRejected) {
  EXPECT_FALSE(CompressionKindFromString("LZ4").ok());
  EXPECT_EQ(*CompressionKindFromString("SNAPPY"), CompressionKind::kSnappy);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry metrics;
  metrics.Increment("fs.dir.list");
  metrics.Increment("fs.dir.list", 4);
  EXPECT_EQ(metrics.Get("fs.dir.list"), 5);
  EXPECT_EQ(metrics.Get("unknown"), 0);
  metrics.Reset();
  EXPECT_EQ(metrics.Get("fs.dir.list"), 0);
}

}  // namespace
}  // namespace presto
