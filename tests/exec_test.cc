// Execution-layer tests: join edge cases (left joins with filters,
// null-extension, empty sides), aggregation partial/final equivalence,
// exchange error propagation, worker lifecycle, and operator stats.

#include <gtest/gtest.h>

#include <thread>

#include "presto/cluster/cluster.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/exec/exchange.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

class ExecTest : public ::testing::Test {
 protected:
  static PrestoCluster& Cluster() {
    static PrestoCluster& cluster = *new PrestoCluster("exec", 2, 2);
    static bool initialized = [] {
      auto memory = std::make_shared<MemoryConnector>();
      // left(k BIGINT, v BIGINT): k = 1..5, with a duplicate k=3.
      TypePtr lt = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
      EXPECT_TRUE(memory->CreateTable("default", "lhs", lt).ok());
      EXPECT_TRUE(memory->AppendPage("default", "lhs",
                                     Page({MakeBigintVector({1, 2, 3, 3, 4, 5}),
                                           MakeBigintVector({10, 20, 30, 31, 40, 50})}))
                      .ok());
      // right(k BIGINT, w BIGINT): k = 2..3 duplicated, 6 unmatched.
      TypePtr rt = Type::Row({"k", "w"}, {Type::Bigint(), Type::Bigint()});
      EXPECT_TRUE(memory->CreateTable("default", "rhs", rt).ok());
      EXPECT_TRUE(memory->AppendPage("default", "rhs",
                                     Page({MakeBigintVector({2, 3, 3, 6}),
                                           MakeBigintVector({200, 300, 301, 600})}))
                      .ok());
      // empty table
      TypePtr et = Type::Row({"k"}, {Type::Bigint()});
      EXPECT_TRUE(memory->CreateTable("default", "empty", et).ok());
      // nullable keys
      TypePtr nt = Type::Row({"k", "x"}, {Type::Bigint(), Type::Bigint()});
      EXPECT_TRUE(memory->CreateTable("default", "withnulls", nt).ok());
      VectorBuilder k(Type::Bigint()), x(Type::Bigint());
      k.AppendBigint(1);
      x.AppendBigint(100);
      k.AppendNull();
      x.AppendBigint(101);
      k.AppendBigint(3);
      x.AppendNull();
      EXPECT_TRUE(memory->AppendPage("default", "withnulls",
                                     Page({k.Build(), x.Build()}))
                      .ok());
      EXPECT_TRUE(cluster.catalogs().RegisterCatalog("memory", memory).ok());
      return true;
    }();
    (void)initialized;
    return cluster;
  }

  static std::vector<std::vector<Value>> Run(const std::string& sql) {
    Session session;
    auto result = Cluster().Execute(sql, session);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    std::vector<std::vector<Value>> rows;
    if (!result.ok()) return rows;
    for (const Page& page : result->pages) {
      for (size_t r = 0; r < page.num_rows(); ++r) rows.push_back(page.GetRow(r));
    }
    return rows;
  }
};

TEST_F(ExecTest, InnerJoinDuplicatesMultiply) {
  auto rows = Run(
      "SELECT l.v, r.w FROM lhs l JOIN rhs r ON l.k = r.k ORDER BY l.v, r.w");
  // k=2: 1x1; k=3: 2 lhs x 2 rhs = 4 pairs.
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0], Value::Int(20));
  EXPECT_EQ(rows[0][1], Value::Int(200));
  EXPECT_EQ(rows[1][0], Value::Int(30));
  EXPECT_EQ(rows[1][1], Value::Int(300));
  EXPECT_EQ(rows[2][0], Value::Int(30));
  EXPECT_EQ(rows[2][1], Value::Int(301));
}

TEST_F(ExecTest, LeftJoinNullExtension) {
  auto rows = Run(
      "SELECT l.k, r.w FROM lhs l LEFT JOIN rhs r ON l.k = r.k ORDER BY l.k, r.w");
  // 1,4,5 unmatched -> null; 2 one match; 3 duplicated 2x2.
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0][0], Value::Int(1));
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_EQ(rows[7][0], Value::Int(5));
  EXPECT_TRUE(rows[7][1].is_null());
}

TEST_F(ExecTest, LeftJoinFilterFailuresStillNullExtend) {
  // Matched pairs exist for k=3 but the residual filter rejects them all:
  // LEFT JOIN semantics require the probe rows to survive null-extended.
  auto rows = Run(
      "SELECT l.k, l.v, r.w FROM lhs l LEFT JOIN rhs r "
      "ON l.k = r.k AND r.w > 1000 WHERE l.k = 3 ORDER BY l.v");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Int(30));
  EXPECT_TRUE(rows[0][2].is_null());
  EXPECT_EQ(rows[1][1], Value::Int(31));
  EXPECT_TRUE(rows[1][2].is_null());
}

TEST_F(ExecTest, JoinWithNullKeysNeverMatches) {
  auto rows = Run(
      "SELECT a.x, b.x FROM withnulls a JOIN withnulls b ON a.k = b.k "
      "ORDER BY a.x");
  // NULL keys must not join with each other: only k=1 and k=3 self-match.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int(100));
  EXPECT_TRUE(rows[1][0].is_null())
      << "k=3 row has null x; ASC sorts NULLS LAST (Presto default)";
}

TEST_F(ExecTest, JoinAgainstEmptyBuildSide) {
  EXPECT_EQ(Run("SELECT l.k FROM lhs l JOIN empty e ON l.k = e.k").size(), 0u);
  auto left_rows =
      Run("SELECT l.k, e.k FROM lhs l LEFT JOIN empty e ON l.k = e.k");
  EXPECT_EQ(left_rows.size(), 6u);
  for (const auto& row : left_rows) EXPECT_TRUE(row[1].is_null());
}

TEST_F(ExecTest, EmptyProbeSide) {
  EXPECT_EQ(Run("SELECT e.k FROM empty e JOIN lhs l ON e.k = l.k").size(), 0u);
  EXPECT_EQ(Run("SELECT e.k FROM empty e CROSS JOIN lhs l").size(), 0u);
}

TEST_F(ExecTest, CrossJoinCardinal) {
  EXPECT_EQ(Run("SELECT l.k, r.k FROM lhs l CROSS JOIN rhs r").size(), 24u);
}

TEST_F(ExecTest, GroupByNullKeyFormsItsOwnGroup) {
  auto rows = Run(
      "SELECT k, count(*) FROM withnulls GROUP BY k ORDER BY k");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[2][0].is_null());  // ASC: NULLS LAST (Presto default)
  EXPECT_EQ(rows[2][1], Value::Int(1));
  EXPECT_EQ(rows[0][0], Value::Int(1));
}

TEST_F(ExecTest, CountVariantsOverNulls) {
  auto rows = Run("SELECT count(*), count(x), count(k) FROM withnulls");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(3));
  EXPECT_EQ(rows[0][1], Value::Int(2));
  EXPECT_EQ(rows[0][2], Value::Int(2));
}

TEST_F(ExecTest, OrderByIsStableAcrossEqualKeys) {
  auto rows = Run("SELECT k, v FROM lhs ORDER BY k");
  ASSERT_EQ(rows.size(), 6u);
  // The two k=3 rows keep input order (stable sort): v=30 before v=31.
  EXPECT_EQ(rows[2][1], Value::Int(30));
  EXPECT_EQ(rows[3][1], Value::Int(31));
}

TEST_F(ExecTest, LimitLargerThanInput) {
  EXPECT_EQ(Run("SELECT k FROM lhs LIMIT 100").size(), 6u);
}

TEST_F(ExecTest, DivisionByZeroYieldsNull) {
  auto rows = Run("SELECT v / (k - k) FROM lhs WHERE k = 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null());
}

TEST(PartitionedExchangeTest, MultipleProducersDrainToConsumer) {
  PartitionedExchange exchange(/*num_partitions=*/1,
                               /*capacity_bytes=*/64 << 20);
  exchange.SetProducerCount(3);
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&exchange, p] {
      for (int i = 0; i < 10; ++i) {
        exchange.Push(0, Page({MakeBigintVector({p * 100 + i})}));
      }
      exchange.ProducerDone();
    });
  }
  int pages = 0;
  while (true) {
    auto page = exchange.Next(0);
    ASSERT_TRUE(page.ok());
    if (!page->has_value()) break;
    ++pages;
  }
  EXPECT_EQ(pages, 30);
  for (auto& t : producers) t.join();
}

TEST(PartitionedExchangeTest, FailurePropagatesToConsumer) {
  PartitionedExchange exchange(1, 64 << 20);
  exchange.SetProducerCount(1);
  std::thread producer([&exchange] {
    exchange.Push(0, Page({MakeBigintVector({1})}));
    exchange.Fail(Status::IoError("split read failed"));
    exchange.ProducerDone();
  });
  producer.join();
  // The error wins over buffered pages.
  auto page = exchange.Next(0);
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kIoError);
}

TEST(PartitionedExchangeTest, HashRoutingIsDisjointAndComplete) {
  PartitionedExchange exchange(/*num_partitions=*/4, 64 << 20);
  exchange.SetProducerCount(1);
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 1000; ++i) keys.push_back(i % 37);
  exchange.PushPartitioned(Page({MakeBigintVector(keys)}), {0});
  exchange.ProducerDone();
  // Every row lands in exactly one partition and equal keys co-locate.
  std::map<int64_t, int> key_partition;
  int64_t total_rows = 0;
  for (int p = 0; p < 4; ++p) {
    while (true) {
      auto page = exchange.Next(p);
      ASSERT_TRUE(page.ok());
      if (!page->has_value()) break;
      total_rows += static_cast<int64_t>((*page)->num_rows());
      for (size_t r = 0; r < (*page)->num_rows(); ++r) {
        int64_t key = (*page)->column(0)->GetValue(r).int_value();
        auto it = key_partition.find(key);
        if (it == key_partition.end()) {
          key_partition[key] = p;
        } else {
          EXPECT_EQ(it->second, p) << "key " << key << " split across partitions";
        }
      }
    }
  }
  EXPECT_EQ(total_rows, 1000);
  EXPECT_EQ(key_partition.size(), 37u);
}

// Satellite: a slow consumer over a tiny byte budget must block producers
// without deadlock or page loss, and the buffered high-water mark must stay
// within capacity plus one page.
TEST(PartitionedExchangeTest, BackpressureBoundsBufferWithoutPageLoss) {
  MetricsRegistry metrics;
  Page sample({MakeBigintVector(std::vector<int64_t>(256, 7))});
  const int64_t page_bytes = sample.EstimateBytes();
  // Budget fits ~2 pages; producers push 64.
  PartitionedExchange exchange(1, page_bytes * 2, &metrics);
  exchange.SetProducerCount(2);
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&exchange, &sample] {
      for (int i = 0; i < 32; ++i) exchange.Push(0, sample);
      exchange.ProducerDone();
    });
  }
  int64_t consumed = 0;
  while (true) {
    auto page = exchange.Next(0);
    ASSERT_TRUE(page.ok());
    if (!page->has_value()) break;
    consumed += static_cast<int64_t>((*page)->num_rows());
    std::this_thread::yield();  // slow consumer: producers must block
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(consumed, 64 * 256);  // no page lost
  EXPECT_LE(exchange.peak_buffered_bytes(), page_bytes * 2 + page_bytes);
  EXPECT_EQ(metrics.FindOrRegister("exchange.page.pushed")->Get(), 64);
  EXPECT_EQ(metrics.FindOrRegister("exchange.page.dropped")->Get(), 0);
  // With a 2-page budget and 64 pages through it, producers must have hit
  // the backpressure wait at least once.
  EXPECT_GT(metrics.FindOrRegister("exchange.producer.blocked")->Get(), 0);
}

// Satellite: Fail() while a producer is blocked on a full buffer must wake
// the producer (its page is dropped) and surface the error to the consumer.
TEST(PartitionedExchangeTest, FailWhileProducerBlocked) {
  Page sample({MakeBigintVector(std::vector<int64_t>(64, 1))});
  PartitionedExchange exchange(1, /*capacity_bytes=*/1);  // one page fills it
  exchange.SetProducerCount(1);
  std::atomic<bool> producer_exited{false};
  std::thread producer([&] {
    exchange.Push(0, sample);  // accepted: buffer was empty
    exchange.Push(0, sample);  // blocks: over budget
    exchange.Push(0, sample);  // dropped: failure already latched
    exchange.ProducerDone();
    producer_exited.store(true);
  });
  // Give the producer time to reach the blocking push, then fail.
  while (exchange.pages_pushed() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(producer_exited.load());
  exchange.Fail(Status::Internal("task died"));
  producer.join();  // no deadlock: Fail released the blocked producer
  auto page = exchange.Next(0);
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kInternal);
}

// ConsumerDone drops queued pages, releases blocked producers, and flips
// AllConsumersDone so producers can stop early (LIMIT-style cancellation).
TEST(PartitionedExchangeTest, ConsumerDoneReleasesProducers) {
  Page sample({MakeBigintVector(std::vector<int64_t>(64, 1))});
  PartitionedExchange exchange(2, /*capacity_bytes=*/1);
  exchange.SetProducerCount(1);
  EXPECT_FALSE(exchange.AllConsumersDone());
  std::thread producer([&] {
    exchange.Push(0, sample);
    exchange.Push(1, sample);  // blocks until a consumer closes
    exchange.ProducerDone();
  });
  while (exchange.pages_pushed() < 1) std::this_thread::yield();
  exchange.ConsumerDone(0);  // frees partition 0's bytes -> unblocks
  producer.join();
  EXPECT_FALSE(exchange.AllConsumersDone());
  // Partition 1 still delivers its page; partition 0 is closed (EOF).
  auto closed = exchange.Next(0);
  ASSERT_TRUE(closed.ok());
  EXPECT_FALSE(closed->has_value());
  auto open = exchange.Next(1);
  ASSERT_TRUE(open.ok());
  EXPECT_TRUE(open->has_value());
  exchange.ConsumerDone(1);
  EXPECT_TRUE(exchange.AllConsumersDone());
  EXPECT_EQ(exchange.buffered_bytes(), 0);
}

TEST(WorkerTest, LifecycleAndGracefulShutdown) {
  Worker worker("w1", 2);
  EXPECT_EQ(worker.state(), WorkerState::kActive);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(worker.SubmitTask([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    }));
  }
  worker.RequestGracefulShutdown(/*grace_period_nanos=*/1'000'000);
  EXPECT_EQ(worker.state(), WorkerState::kShuttingDown);
  // New work is rejected while draining.
  EXPECT_FALSE(worker.SubmitTask([] {}));
  worker.AwaitShutdown();
  EXPECT_EQ(worker.state(), WorkerState::kShutDown);
  EXPECT_EQ(done.load(), 8) << "all active tasks complete before shutdown";
  EXPECT_EQ(worker.tasks_completed(), 8);
}

TEST(WorkerTest, DoubleShutdownIsIdempotent) {
  Worker worker("w2", 1);
  worker.RequestGracefulShutdown(1000);
  worker.RequestGracefulShutdown(1000);
  worker.AwaitShutdown();
  EXPECT_EQ(worker.state(), WorkerState::kShutDown);
}


TEST(FragmentResultCacheTest, SecondRunServedFromCache) {
  PrestoCluster cluster("fragcache", 1, 1);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr t = Type::Row({"k"}, {Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("default", "nums", t).ok());
  ASSERT_TRUE(memory->AppendPage("default", "nums",
                                 Page({MakeBigintVector({1, 2, 3, 4})}))
                  .ok());
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("memory", memory).ok());

  Session cached;
  cached.properties["fragment_result_cache"] = "true";
  const std::string sql = "SELECT sum(k) FROM memory.default.nums";

  auto first = cluster.Execute(sql, cached);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Row(0)[0], Value::Int(10));
  EXPECT_EQ(cluster.coordinator().fragment_cache_metrics().Get("cache.fragment_result.misses"), 1);

  auto second = cluster.Execute(sql, cached);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->Row(0)[0], Value::Int(10));
  EXPECT_EQ(cluster.coordinator().fragment_cache_metrics().Get("cache.fragment_result.hits"), 1);

  // Without the session property the cache is bypassed entirely.
  Session plain;
  ASSERT_TRUE(cluster.Execute(sql, plain).ok());
  EXPECT_EQ(cluster.coordinator().fragment_cache_metrics().Get("cache.fragment_result.hits"), 1);

  // New data + explicit invalidation: fresh results.
  ASSERT_TRUE(memory->AppendPage("default", "nums",
                                 Page({MakeBigintVector({100})}))
                  .ok());
  cluster.coordinator().InvalidateFragmentCache();
  auto third = cluster.Execute(sql, cached);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->Row(0)[0], Value::Int(110));
}

}  // namespace
}  // namespace presto
