// Additional behaviour coverage: near-real-time open partitions through the
// full SQL path, integer dictionary pushdown, split distribution across
// workers, and multi-batch partial aggregation.

#include <gtest/gtest.h>

#include "presto/cluster/cluster.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/fs/memory_file_system.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/lakefile/reader.h"
#include "presto/lakefile/writer.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

TEST(OpenPartitionTest, NearRealTimeIngestVisibleThroughSql) {
  SimulatedClock clock;
  SimulatedHdfs hdfs(&clock);
  PrestoCluster cluster("nrt", 1, 1);
  auto hive = std::make_shared<HiveConnector>(&hdfs, "wh");
  TypePtr t = Type::Row({"ds", "x"}, {Type::Varchar(), Type::Bigint()});
  ASSERT_TRUE(hive->CreateTable("s", "t", t, "ds").ok());
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("hive", hive).ok());

  auto write_rows = [&](const std::string& ds, int64_t start, int64_t n) {
    VectorBuilder date(Type::Varchar()), x(Type::Bigint());
    for (int64_t i = 0; i < n; ++i) {
      date.AppendString(ds);
      x.AppendBigint(start + i);
    }
    return hive->WriteDataFile("s", "t", ds, {Page({date.Build(), x.Build()})});
  };

  ASSERT_TRUE(write_rows("today", 0, 10).ok());
  // "today" is an open partition: a micro-batch ingestion engine keeps
  // writing files to it.
  ASSERT_TRUE(hive->SetPartitionSealed("s", "t", "today", false).ok());

  Session session;
  auto count = [&] {
    auto result = cluster.Execute(
        "SELECT count(*) FROM hive.s.t WHERE ds = 'today'", session);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->Row(0)[0].int_value() : -1;
  };
  EXPECT_EQ(count(), 10);

  // Simulate the external micro-batch writer adding a file directly to
  // storage (bypassing the connector and its cache invalidation): the open
  // partition must pick it up immediately.
  VectorBuilder x2(Type::Bigint());
  for (int64_t i = 0; i < 5; ++i) x2.AppendBigint(100 + i);
  TypePtr on_disk = Type::Row({"x"}, {Type::Bigint()});
  auto bytes = lakefile::WriteLakeFile(on_disk, {Page({x2.Build()})});
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(hdfs.WriteFile("wh/s/t/ds=today/external-0.lake", *bytes).ok());
  EXPECT_EQ(count(), 15) << "open partitions guarantee data freshness";
}

TEST(LakeFileTest, IntegerDictionaryPushdownSkips) {
  // A low-cardinality BIGINT column dictionary-encodes; an equality on a
  // value absent from the dictionary skips the row group even though the
  // min/max range covers it.
  TypePtr schema = Type::Row({"code"}, {Type::Bigint()});
  VectorBuilder b(Type::Bigint());
  for (int i = 0; i < 2000; ++i) b.AppendBigint(i % 2 == 0 ? 10 : 90);
  auto bytes = lakefile::WriteLakeFile(schema, {Page({b.Build()})});
  ASSERT_TRUE(bytes.ok());

  static MemoryFileSystem& fs = *new MemoryFileSystem();
  ASSERT_TRUE(fs.WriteFile("intdict", *bytes).ok());
  auto file = fs.OpenForRead("intdict");
  ASSERT_TRUE(file.ok());

  lakefile::ScanSpec spec;
  spec.columns = {"code"};
  spec.predicates = {{"code", lakefile::LeafPredicate::Op::kEq, {Value::Int(50)}}};
  auto reader = lakefile::NativeLakeFileReader::Open(*file, lakefile::ReaderOptions());
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->NextBatch(spec);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->has_value());
  EXPECT_EQ((*reader)->stats().row_groups_skipped_dictionary, 1)
      << "50 is inside [10, 90] but not in the dictionary {10, 90}";
}

TEST(SchedulingTest, TasksSpreadAcrossWorkers) {
  PrestoCluster cluster("sched", 3, 1);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr t = Type::Row({"x"}, {Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("default", "many", t).ok());
  for (int64_t p = 0; p < 24; ++p) {
    ASSERT_TRUE(memory->AppendPage("default", "many",
                                   Page({MakeBigintVector({p})}))
                    .ok());
  }
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("memory", memory).ok());
  Session session;
  auto result = cluster.Execute("SELECT sum(x) FROM many", session);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->Row(0)[0], Value::Int(276));  // 0+..+23
  EXPECT_GT(result->num_tasks, 1) << "multiple tasks expected";
  int workers_used = 0;
  for (const auto& worker : cluster.coordinator().ActiveWorkers()) {
    if (worker->tasks_completed() > 0) ++workers_used;
  }
  EXPECT_GE(workers_used, 2) << "tasks should spread across workers";
}

TEST(MultiBatchAggregationTest, PartialsMergeAcrossManySplits) {
  PrestoCluster cluster("multibatch", 2, 2);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr t = Type::Row({"g", "v"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("default", "wide", t).ok());
  int64_t expected_sum[5] = {0, 0, 0, 0, 0};
  int64_t expected_count[5] = {0, 0, 0, 0, 0};
  for (int page = 0; page < 40; ++page) {
    VectorBuilder g(Type::Bigint()), v(Type::Bigint());
    for (int64_t i = 0; i < 50; ++i) {
      int64_t group = (page + i) % 5;
      int64_t value = page * 100 + i;
      g.AppendBigint(group);
      v.AppendBigint(value);
      expected_sum[group] += value;
      expected_count[group] += 1;
    }
    ASSERT_TRUE(memory->AppendPage("default", "wide",
                                   Page({g.Build(), v.Build()}))
                    .ok());
  }
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("memory", memory).ok());
  Session session;
  auto result = cluster.Execute(
      "SELECT g, sum(v), count(*) FROM wide GROUP BY g ORDER BY g", session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->total_rows, 5);
  for (int64_t group = 0; group < 5; ++group) {
    auto row = result->Row(group);
    EXPECT_EQ(row[0], Value::Int(group));
    EXPECT_EQ(row[1], Value::Int(expected_sum[group]));
    EXPECT_EQ(row[2], Value::Int(expected_count[group]));
  }
}

}  // namespace
}  // namespace presto
