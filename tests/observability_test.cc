// End-to-end observability tests: operator stats reconciliation with query
// results (with kernels on and off), EXPLAIN / EXPLAIN ANALYZE rendering,
// query event journal ordering under a simulated clock, slow-query logging,
// failed-query partial counters, and Prometheus metrics exposition.

#include <gtest/gtest.h>

#include <cctype>

#include "presto/cluster/cluster.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/lakefile/writer.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// Every cluster in this file shares one simulated clock so journal
// timestamps are deterministic.
SimulatedClock* TestClock() {
  static SimulatedClock clock;
  return &clock;
}

std::shared_ptr<MemoryConnector> MakeOrdersConnector() {
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr t = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  EXPECT_TRUE(memory->CreateTable("default", "orders", t).ok());
  std::vector<int64_t> keys, values;
  for (int64_t i = 0; i < 1000; ++i) {
    keys.push_back(i % 10);
    values.push_back(i);
  }
  EXPECT_TRUE(memory->AppendPage("default", "orders",
                                 Page({MakeBigintVector(std::move(keys)),
                                       MakeBigintVector(std::move(values))}))
                  .ok());
  return memory;
}

CoordinatorOptions TestOptions() {
  CoordinatorOptions options;
  options.clock = TestClock();
  return options;
}

// PrestoCluster is not movable (the coordinator owns mutexes), so tests
// construct it in place and this helper only registers the test catalog.
struct ObsCluster {
  explicit ObsCluster(const std::string& name)
      : cluster(name, /*num_workers=*/2, /*slots_per_worker=*/2, TestOptions()) {
    EXPECT_TRUE(
        cluster.catalogs().RegisterCatalog("memory", MakeOrdersConnector()).ok());
  }
  PrestoCluster* operator->() { return &cluster; }
  PrestoCluster cluster;
};

constexpr const char* kGroupBy =
    "SELECT k, count(*), sum(v) FROM orders GROUP BY k";

TEST(ObservabilityTest, OperatorStatsReconcileWithResult) {
  ObsCluster cluster("obs-stats");
  Session session;
  auto result = cluster->Execute(kGroupBy, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_rows, 10);

  // The stats tree's query output must reconcile exactly with the result.
  EXPECT_EQ(result->stats.output_rows, result->total_rows);
  EXPECT_EQ(result->stats.total_tasks, result->num_tasks + 1);  // + root task

  // Every fragment appears as a stage; fragment 0 is the root stage.
  ASSERT_EQ(result->stats.stages.size(),
            static_cast<size_t>(result->num_fragments));
  EXPECT_EQ(result->stats.stages[0].fragment_id, 0);
  EXPECT_EQ(result->stats.stages[0].output_rows, result->total_rows);

  // The scan read the full table; its stats merged across all leaf tasks.
  int64_t scan_output = 0;
  bool saw_agg = false;
  for (const auto& [id, op] : result->stats.operators) {
    if (op.operator_type == "TableScan") scan_output += op.output_rows;
    if (op.operator_type == "HashAggregation") {
      saw_agg = true;
      EXPECT_GT(op.peak_buffered_rows, 0) << "group hash table high-water";
    }
    EXPECT_GE(op.wall_nanos, 0);
    EXPECT_GE(op.cpu_nanos, 0);
  }
  EXPECT_EQ(scan_output, 1000);
  EXPECT_TRUE(saw_agg);
}

TEST(ObservabilityTest, StatsSurviveBoxedFallback) {
  ObsCluster cluster("obs-fallback");
  Session kernels, boxed;
  boxed.properties["vectorized_kernels"] = "false";

  auto fast = cluster->Execute(kGroupBy, kernels);
  auto slow = cluster->Execute(kGroupBy, boxed);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());

  // Same rows either way, and identical per-operator row counts: the stats
  // layer is execution-strategy agnostic.
  EXPECT_EQ(fast->stats.output_rows, slow->stats.output_rows);
  ASSERT_EQ(fast->stats.operators.size(), slow->stats.operators.size());
  int64_t fast_kernel = 0, fast_fallback = 0, slow_kernel = 0, slow_fallback = 0;
  for (const auto& [id, op] : fast->stats.operators) {
    EXPECT_EQ(op.output_rows, slow->stats.operators.at(id).output_rows)
        << "node " << id;
    fast_kernel += op.kernel_pages;
    fast_fallback += op.fallback_pages;
  }
  for (const auto& [id, op] : slow->stats.operators) {
    slow_kernel += op.kernel_pages;
    slow_fallback += op.fallback_pages;
  }
  // The kernel-vs-fallback split tells which path actually ran.
  EXPECT_GT(fast_kernel, 0);
  EXPECT_EQ(fast_fallback, 0);
  EXPECT_EQ(slow_kernel, 0);
  EXPECT_GT(slow_fallback, 0);
}

TEST(ObservabilityTest, ExplainReturnsPlanText) {
  ObsCluster cluster("obs-explain");
  Session session;
  auto result = cluster->Execute(std::string("EXPLAIN ") + kGroupBy, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->total_rows, 1);
  ASSERT_EQ(result->column_names.size(), 1u);
  EXPECT_EQ(result->column_names[0], "Query Plan");
  std::string text = result->Row(0)[0].ToString();
  EXPECT_NE(text.find("Fragment 0"), std::string::npos) << text;
  EXPECT_NE(text.find("TableScan"), std::string::npos) << text;
  // EXPLAIN plans but does not execute.
  EXPECT_EQ(text.find("rows:"), std::string::npos) << text;
}

TEST(ObservabilityTest, ExplainAnalyzeAnnotatesEveryNodeAndReconciles) {
  ObsCluster cluster("obs-analyze");
  Session session;
  auto plain = cluster->Execute(kGroupBy, session);
  ASSERT_TRUE(plain.ok());

  auto analyzed =
      cluster->Execute(std::string("EXPLAIN ANALYZE ") + kGroupBy, session);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  ASSERT_EQ(analyzed->total_rows, 1);
  std::string text = analyzed->Row(0)[0].ToString();

  // The analyzed run's stats must reconcile exactly with the plain run.
  EXPECT_EQ(analyzed->stats.output_rows, plain->total_rows);

  // Every plan node line ("- Foo") is followed by an annotation line with
  // actual rows, and the query-output row count appears verbatim.
  size_t nodes = 0, annotations = 0;
  size_t pos = 0;
  while ((pos = text.find("- ", pos)) != std::string::npos) {
    ++nodes;
    pos += 2;
  }
  pos = 0;
  while ((pos = text.find("rows:", pos)) != std::string::npos) {
    ++annotations;
    pos += 5;
  }
  EXPECT_GT(nodes, 0u);
  EXPECT_GE(annotations, nodes) << text;
  EXPECT_NE(text.find("rows: " + std::to_string(plain->total_rows)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("[tasks:"), std::string::npos) << text;
}

TEST(ObservabilityTest, ExplainAnalyzeShowsPartitionedExchanges) {
  ObsCluster cluster("obs-exchange");
  Session session;
  auto analyzed =
      cluster->Execute(std::string("EXPLAIN ANALYZE ") + kGroupBy, session);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::string text = analyzed->Row(0)[0].ToString();

  // The partial-aggregation leaf hash-partitions its output into the final
  // aggregation's intermediate stage; the rendered plan shows the scheme,
  // the partition count, and the exchanged bytes per stage.
  EXPECT_NE(text.find("(intermediate)"), std::string::npos) << text;
  EXPECT_NE(text.find("partitions, exchanged:"), std::string::npos) << text;
  EXPECT_NE(text.find("hash("), std::string::npos) << text;

  // The same numbers land in the structured per-stage stats.
  bool saw_partitioned_stage = false;
  for (const auto& stage : analyzed->stats.stages) {
    if (stage.num_partitions > 1 && stage.exchanged_bytes > 0) {
      saw_partitioned_stage = true;
    }
  }
  EXPECT_TRUE(saw_partitioned_stage);

  // Exchange counters ride along in the per-query metric snapshot, and the
  // buffered high-water mark respects the (default) byte budget.
  EXPECT_GT(analyzed->exec_metrics["exchange.page.pushed"], 0);
  EXPECT_GT(analyzed->exec_metrics["exchange.byte.pushed"], 0);
  EXPECT_GT(analyzed->exec_metrics["exchange.peak_buffered_bytes"], 0);
  EXPECT_EQ(analyzed->exec_metrics["exchange.page.dropped"], 0);
}

TEST(ObservabilityTest, ExplainAnalyzeShowsLazyScanStatsAndEnforcedPushdown) {
  // A selective scan over a hive lakefile with many small pages: EXPLAIN
  // ANALYZE must surface the page-skipping / late-materialization counters
  // on the TableScan node, mark the pushdown " enforced", and carry NO
  // residual engine-side Filter (the connector emits exactly matching rows).
  PrestoCluster cluster("obs-lazyscan", 2, 2, TestOptions());
  auto hdfs = std::make_unique<SimulatedHdfs>(TestClock());
  auto hive = std::make_shared<HiveConnector>(hdfs.get(), "warehouse");
  TypePtr row = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(hive->CreateTable("raw", "pts", row).ok());
  {
    const size_t n = 2048;
    std::vector<int64_t> k(n), v(n);
    for (size_t i = 0; i < n; ++i) {
      k[i] = static_cast<int64_t>(i);  // sorted: page stats are tight
      v[i] = static_cast<int64_t>(i) * 5;
    }
    lakefile::WriterOptions writer_options;
    writer_options.row_group_rows = n;  // one group: skipping is per page
    writer_options.page_rows = 64;
    ASSERT_TRUE(hive
                    ->WriteDataFile("raw", "pts", "",
                                    {Page({MakeBigintVector(std::move(k)),
                                           MakeBigintVector(std::move(v))})},
                                    writer_options)
                    .ok());
  }
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("lake", hive).ok());

  const std::string sql = "SELECT v FROM lake.raw.pts WHERE k < 40";
  Session session;
  auto analyzed = cluster.Execute("EXPLAIN ANALYZE " + sql, session);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  std::string text = analyzed->Row(0)[0].ToString();

  // Scan counters rendered on the TableScan annotation line.
  EXPECT_NE(text.find("pages_skipped"), std::string::npos) << text;
  EXPECT_NE(text.find("rows_pruned"), std::string::npos) << text;
  EXPECT_NE(text.find("scan-io"), std::string::npos) << text;

  // Pushdown fully absorbed: marked enforced, no residual Filter node.
  EXPECT_NE(text.find("pushedPredicates="), std::string::npos) << text;
  EXPECT_NE(text.find(" enforced"), std::string::npos) << text;
  EXPECT_EQ(text.find("Filter["), std::string::npos)
      << "enforced pushdown must drop the engine-side residual filter:\n"
      << text;

  // Structured per-operator stats agree with the rendered text.
  bool saw_scan = false;
  for (const auto& [id, op] : analyzed->stats.operators) {
    if (op.operator_type != "TableScan") continue;
    saw_scan = true;
    EXPECT_GT(op.scan_pages_total, 0);
    EXPECT_GT(op.scan_pages_skipped_stats, 0)
        << "a 2% scan over 64-row pages must skip pages via page stats";
    EXPECT_GT(op.scan_rows_pruned_late, 0);
    EXPECT_LT(op.scan_pages_read, op.scan_pages_total);
    EXPECT_GT(op.scan_bytes_read, 0);
    EXPECT_EQ(op.output_rows, 40);
  }
  EXPECT_TRUE(saw_scan);

  // The lakefile.* counters ride along in the per-query metric snapshot.
  EXPECT_GT(analyzed->exec_metrics["lakefile.pages.read"], 0);
  EXPECT_GT(analyzed->exec_metrics["lakefile.pages.skipped_stats"], 0);
  EXPECT_GT(analyzed->exec_metrics["lakefile.rows.pruned_late"], 0);
  EXPECT_GT(analyzed->exec_metrics["lakefile.bytes.read"], 0);

  // And the query itself returns exactly the matching rows.
  auto result = cluster.Execute(sql, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_rows, 40);
}

TEST(ObservabilityTest, ExchangePeakStaysWithinSessionBudget) {
  ObsCluster cluster("obs-budget");
  Session session;
  session.properties["exchange_buffer_bytes"] = "8192";
  auto result = cluster->Execute(kGroupBy, session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_rows, 10);
  // Bounded buffering: the high-water mark can overshoot the budget by at
  // most one page (a producer only learns the buffer is full after its
  // reservation), never more.
  int64_t peak = result->exec_metrics["exchange.peak_buffered_bytes"];
  int64_t pages = result->exec_metrics["exchange.page.pushed"];
  int64_t bytes = result->exec_metrics["exchange.byte.pushed"];
  ASSERT_GT(pages, 0);
  int64_t max_page = bytes;  // conservative upper bound for one page
  EXPECT_GT(peak, 0);
  EXPECT_LE(peak, 8192 + max_page);
}

TEST(ObservabilityTest, JournalOrdersLifecycleUnderSimulatedClock) {
  ObsCluster cluster("obs-journal");
  Session session;
  auto result = cluster->Execute(kGroupBy, session);
  ASSERT_TRUE(result.ok());

  auto events = cluster->coordinator().journal().EventsForQuery(result->query_id);
  ASSERT_GE(events.size(), 4u);
  EXPECT_EQ(events.front().kind, QueryEventKind::kCreated);
  EXPECT_EQ(events.front().detail, kGroupBy);
  EXPECT_EQ(events[1].kind, QueryEventKind::kPlanned);
  EXPECT_EQ(events[2].kind, QueryEventKind::kScheduled);
  EXPECT_EQ(events.back().kind, QueryEventKind::kCompleted);
  EXPECT_EQ(events.back().counters.at("output_rows"), result->total_rows);

  // Every fragment's stage-finished event is present, between scheduled and
  // completed.
  int stage_finished = 0;
  for (const QueryEvent& event : events) {
    if (event.kind == QueryEventKind::kStageFinished) ++stage_finished;
  }
  EXPECT_EQ(stage_finished, result->num_fragments);

  // Nobody advanced the simulated clock mid-query, yet timestamps (and
  // sequence numbers) are strictly increasing.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].timestamp_nanos, events[i - 1].timestamp_nanos);
    EXPECT_GT(events[i].sequence, events[i - 1].sequence);
  }
}

TEST(ObservabilityTest, SlowQueryLogAndFailedQueryCounters) {
  ObsCluster cluster("obs-slow");
  Session session;
  session.properties["slow_query_millis"] = "0";  // everything is slow
  auto result = cluster->Execute(kGroupBy, session);
  ASSERT_TRUE(result.ok());
  auto events = cluster->coordinator().journal().EventsForQuery(result->query_id);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, QueryEventKind::kSlowQuery);
  // The slow-query record carries the per-query exec counter snapshot.
  EXPECT_EQ(events.back().counters, result->exec_metrics);

  // A failing query journals kFailed; no result escapes, so the journal is
  // where its diagnostics live.
  auto failed = cluster->Execute("SELECT nope FROM orders", session);
  ASSERT_FALSE(failed.ok());
  auto all = cluster->coordinator().journal().Events();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.back().kind, QueryEventKind::kFailed);
  EXPECT_EQ(cluster->coordinator().metrics().Get("coordinator.query.failed"), 1);
}

TEST(ObservabilityTest, JournalRingDropsOldestBeyondCapacity) {
  CoordinatorOptions options;
  options.clock = TestClock();
  options.journal_capacity = 8;
  CatalogRegistry catalogs;
  Coordinator coordinator(&catalogs, options);
  // No catalogs registered: every statement fails after created+failed
  // events; 6 statements = 12 events through a ring of 8.
  Session session;
  for (int i = 0; i < 6; ++i) {
    (void)coordinator.ExecuteSql("SELECT x FROM t" + std::to_string(i), session);
  }
  auto events = coordinator.journal().Events();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(coordinator.journal().events_recorded(), 12);
  // Oldest events fell off the front; the survivors stay ordered.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].sequence, events[i - 1].sequence);
  }
}

TEST(ObservabilityTest, QueryStatsPropertyDisablesCollection) {
  ObsCluster cluster("obs-disable");
  Session session;
  session.properties["query_stats"] = "false";
  auto result = cluster->Execute(kGroupBy, session);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_rows, 10);  // rows still flow & count correctly
  EXPECT_TRUE(result->stats.operators.empty());

  // EXPLAIN ANALYZE overrides the property: it cannot work without stats.
  auto analyzed =
      cluster->Execute(std::string("EXPLAIN ANALYZE ") + kGroupBy, session);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_FALSE(analyzed->stats.operators.empty());
}

TEST(ObservabilityTest, ClusterMetricsRenderAsPrometheusText) {
  ObsCluster cluster("obs-prom");
  Session session;
  ASSERT_TRUE(cluster->Execute(kGroupBy, session).ok());

  std::string text = cluster->RenderMetricsText();
  // Counters and gauges with sanitized names and TYPE headers.
  EXPECT_NE(text.find("# TYPE coordinator_query_completed counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("coordinator_query_completed 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE worker_task_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cluster_workers_active gauge"),
            std::string::npos);
  EXPECT_NE(text.find("cluster_workers_active 2"), std::string::npos);
  EXPECT_NE(text.find("coordinator_journal_events"), std::string::npos);
  // Latency histograms export as summaries with quantile labels.
  EXPECT_NE(text.find("# TYPE query_latency_micros summary"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("query_latency_micros{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_micros_count 1"), std::string::npos);

  // Valid Prometheus text: every non-comment line is "<name>[{labels}] <int>",
  // names restricted to [a-zA-Z0-9_:].
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    // Optional label block ({quantile="0.95"}) must be balanced and
    // terminal; the name-charset rule applies to what precedes it.
    size_t brace = name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
      ASSERT_FALSE(name.empty()) << line;
    }
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << line;
    }
    EXPECT_NO_THROW(std::stoll(line.substr(space + 1))) << line;
  }
}

}  // namespace
}  // namespace presto
