// Coverage for the remaining builtin scalar functions (math, strings,
// timestamps) and aggregate intermediate-state round trips — every function
// is exercised through SQL so resolution, coercion, and vectorized
// evaluation are all on the path.

#include <gtest/gtest.h>

#include <cmath>

#include "presto/cluster/cluster.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

class FunctionsTest : public ::testing::Test {
 protected:
  static PrestoCluster& Cluster() {
    static PrestoCluster& cluster = *new PrestoCluster("fn", 1, 1);
    static bool initialized = [] {
      auto memory = std::make_shared<MemoryConnector>();
      TypePtr t = Type::Row({"i", "d", "s", "ts"},
                            {Type::Bigint(), Type::Double(), Type::Varchar(),
                             Type::Timestamp()});
      EXPECT_TRUE(memory->CreateTable("default", "vals", t).ok());
      VectorBuilder i(Type::Bigint()), d(Type::Double()), s(Type::Varchar()),
          ts(Type::Timestamp());
      i.AppendBigint(-7);
      d.AppendDouble(2.25);
      s.AppendString("Presto Rocks");
      ts.AppendBigint(3600000);
      i.AppendBigint(9);
      d.AppendDouble(-1.5);
      s.AppendString("abc");
      ts.AppendBigint(7200000);
      EXPECT_TRUE(memory->AppendPage("default", "vals",
                                     Page({i.Build(), d.Build(), s.Build(),
                                           ts.Build()}))
                      .ok());
      EXPECT_TRUE(cluster.catalogs().RegisterCatalog("memory", memory).ok());
      return true;
    }();
    (void)initialized;
    return cluster;
  }

  static std::vector<Value> Row0(const std::string& sql) {
    Session session;
    auto result = Cluster().Execute(sql, session);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    if (!result.ok() || result->total_rows == 0) return {};
    return result->Row(0);
  }
};

TEST_F(FunctionsTest, MathFunctions) {
  auto row = Row0(
      "SELECT abs(i), abs(d), floor(d), ceil(d), round(d), sqrt(4.0), "
      "ln(1.0), exp(0.0) FROM vals WHERE i = -7");
  ASSERT_EQ(row.size(), 8u);
  EXPECT_EQ(row[0], Value::Int(7));
  EXPECT_EQ(row[1], Value::Double(2.25));
  EXPECT_EQ(row[2], Value::Double(2.0));
  EXPECT_EQ(row[3], Value::Double(3.0));
  EXPECT_EQ(row[4], Value::Double(2.0));
  EXPECT_EQ(row[5], Value::Double(2.0));
  EXPECT_EQ(row[6], Value::Double(0.0));
  EXPECT_EQ(row[7], Value::Double(1.0));
}

TEST_F(FunctionsTest, UnaryMinusAndModulus) {
  auto row = Row0("SELECT -i, i % 4, -d FROM vals WHERE i = 9");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], Value::Int(-9));
  EXPECT_EQ(row[1], Value::Int(1));
  EXPECT_EQ(row[2], Value::Double(1.5));
}

TEST_F(FunctionsTest, StringFunctions) {
  auto row = Row0(
      "SELECT length(s), lower(s), upper(s), substr(s, 8, 5), "
      "concat(s, '!'), starts_with(s, 'Pre') FROM vals WHERE i = -7");
  ASSERT_EQ(row.size(), 6u);
  EXPECT_EQ(row[0], Value::Int(12));
  EXPECT_EQ(row[1], Value::String("presto rocks"));
  EXPECT_EQ(row[2], Value::String("PRESTO ROCKS"));
  EXPECT_EQ(row[3], Value::String("Rocks"));
  EXPECT_EQ(row[4], Value::String("Presto Rocks!"));
  EXPECT_EQ(row[5], Value::Bool(true));
}

TEST_F(FunctionsTest, SubstrOutOfRange) {
  auto row = Row0("SELECT substr(s, 99, 3), substr(s, 1, 0) FROM vals WHERE i = 9");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], Value::String(""));
  EXPECT_EQ(row[1], Value::String(""));
}

TEST_F(FunctionsTest, TimestampComparisons) {
  // TIMESTAMP vs integer-literal comparisons (epoch millis), both orders.
  auto row = Row0(
      "SELECT count(*) FROM vals WHERE ts >= 3600000 AND 7200000 >= ts");
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0], Value::Int(2));
  auto narrow = Row0("SELECT count(*) FROM vals WHERE ts > 3600000");
  EXPECT_EQ(narrow[0], Value::Int(1));
}

TEST_F(FunctionsTest, LikePatterns) {
  EXPECT_EQ(Row0("SELECT count(*) FROM vals WHERE s LIKE '%Rock%'")[0],
            Value::Int(1));
  EXPECT_EQ(Row0("SELECT count(*) FROM vals WHERE s LIKE '___'")[0],
            Value::Int(1));  // abc
  EXPECT_EQ(Row0("SELECT count(*) FROM vals WHERE s LIKE 'a%c'")[0],
            Value::Int(1));
  EXPECT_EQ(Row0("SELECT count(*) FROM vals WHERE s LIKE ''")[0], Value::Int(0));
}

TEST_F(FunctionsTest, CoalesceAndIfThroughSql) {
  auto row = Row0(
      "SELECT coalesce(CAST('nope' AS BIGINT), i), "
      "if(i > 0, 'pos', 'neg') FROM vals WHERE i = -7");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], Value::Int(-7));
  EXPECT_EQ(row[1], Value::String("neg"));
}

TEST(AggregateStateTest, CountDistinctMergesAcrossPartials) {
  auto& registry = FunctionRegistry::Default();
  auto handle = registry.ResolveAggregate("count_distinct", {Type::Varchar()});
  ASSERT_TRUE(handle.ok());
  auto fn = registry.FindAggregate(*handle);
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ((*fn)->intermediate_type->ToString(), "ARRAY(VARCHAR)");

  auto p1 = (*fn)->factory();
  auto p2 = (*fn)->factory();
  VectorPtr v1 = MakeVarcharVector({"a", "b", "a"});
  VectorPtr v2 = MakeVarcharVector({"b", "c"});
  for (size_t i = 0; i < 3; ++i) p1->Add({v1}, i);
  for (size_t i = 0; i < 2; ++i) p2->Add({v2}, i);
  auto final_acc = (*fn)->factory();
  final_acc->MergeIntermediate(p1->Intermediate());
  final_acc->MergeIntermediate(p2->Intermediate());
  EXPECT_EQ(final_acc->Final(), Value::Int(3));  // a, b, c
}

TEST(AggregateStateTest, MinMaxIntermediateRoundTrip) {
  auto& registry = FunctionRegistry::Default();
  auto handle = registry.ResolveAggregate("max", {Type::Varchar()});
  ASSERT_TRUE(handle.ok());
  auto fn = registry.FindAggregate(*handle);
  ASSERT_TRUE(fn.ok());
  auto partial = (*fn)->factory();
  VectorPtr v = MakeVarcharVector({"m", "z", "a"});
  for (size_t i = 0; i < 3; ++i) partial->Add({v}, i);
  auto final_acc = (*fn)->factory();
  final_acc->MergeIntermediate(partial->Intermediate());
  EXPECT_EQ(final_acc->Final(), Value::String("z"));
  // Merging a NULL intermediate (empty partial) is a no-op.
  final_acc->MergeIntermediate(Value::Null());
  EXPECT_EQ(final_acc->Final(), Value::String("z"));
}

}  // namespace
}  // namespace presto
