// Tests for RowExpressions (paper Table I), function resolution, the
// vectorized evaluator, and expression serialization.

#include <gtest/gtest.h>

#include "presto/expr/evaluator.h"
#include "presto/expr/expression.h"
#include "presto/expr/function_registry.h"
#include "presto/expr/serialization.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

FunctionRegistry& Reg() { return FunctionRegistry::Default(); }

ExprPtr Call(const std::string& name, std::vector<ExprPtr> args) {
  std::vector<TypePtr> types;
  for (const auto& a : args) types.push_back(a->type());
  auto handle = Reg().ResolveScalar(name, types);
  EXPECT_TRUE(handle.ok()) << handle.status().ToString();
  return CallExpression::Make(*handle, std::move(args));
}

ExprPtr Var(const std::string& name, const TypePtr& type) {
  return VariableReferenceExpression::Make(name, type);
}

TEST(ExpressionTest, TableOneSubtypesToString) {
  // ConstantExpression: literal values such as (1L, BIGINT).
  EXPECT_EQ(ConstantExpression::MakeBigint(1)->ToString(), "1");
  EXPECT_EQ(ConstantExpression::MakeVarchar("string")->ToString(), "'string'");
  // VariableReferenceExpression.
  EXPECT_EQ(Var("city_id", Type::Bigint())->ToString(), "city_id");
  // CallExpression with embedded FunctionHandle.
  ExprPtr call = Call("plus", {ConstantExpression::MakeBigint(1),
                               ConstantExpression::MakeBigint(2)});
  EXPECT_EQ(call->ToString(), "plus(1, 2)");
  const auto& handle = static_cast<const CallExpression&>(*call).handle();
  EXPECT_EQ(handle.name, "plus");
  EXPECT_EQ(handle.return_type->kind(), TypeKind::kBigint);
  // SpecialFormExpression.
  ExprPtr is_null = SpecialFormExpression::Make(
      SpecialFormKind::kIsNull, Type::Boolean(), {Var("x", Type::Bigint())});
  EXPECT_EQ(is_null->ToString(), "(x IS NULL)");
  // LambdaDefinitionExpression: (x BIGINT, y BIGINT) -> x + y.
  ExprPtr lambda = LambdaDefinitionExpression::Make(
      {"x", "y"}, {Type::Bigint(), Type::Bigint()},
      Call("plus", {Var("x", Type::Bigint()), Var("y", Type::Bigint())}));
  EXPECT_EQ(lambda->ToString(), "(x BIGINT, y BIGINT) -> plus(x, y)");
}

TEST(FunctionRegistryTest, ExactAndCoercedResolution) {
  auto exact = Reg().ResolveScalar("plus", {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->return_type->kind(), TypeKind::kBigint);

  // BIGINT + DOUBLE coerces to the DOUBLE overload.
  auto coerced = Reg().ResolveScalar("plus", {Type::Bigint(), Type::Double()});
  ASSERT_TRUE(coerced.ok());
  EXPECT_EQ(coerced->return_type->kind(), TypeKind::kDouble);

  EXPECT_FALSE(Reg().ResolveScalar("plus", {Type::Varchar(), Type::Bigint()}).ok());
  EXPECT_FALSE(Reg().ResolveScalar("no_such_fn", {Type::Bigint()}).ok());
}

TEST(FunctionRegistryTest, AggregateResolution) {
  auto sum = Reg().ResolveAggregate("sum", {Type::Bigint()});
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->return_type->kind(), TypeKind::kBigint);
  EXPECT_TRUE(Reg().IsAggregateName("count"));
  EXPECT_FALSE(Reg().IsAggregateName("plus"));
}

Page OnePage() {
  VectorBuilder a(Type::Bigint());
  a.AppendBigint(1);
  a.AppendBigint(2);
  a.AppendNull();
  a.AppendBigint(4);
  VectorBuilder b(Type::Bigint());
  b.AppendBigint(10);
  b.AppendBigint(20);
  b.AppendBigint(30);
  b.AppendNull();
  return Page({a.Build(), b.Build()});
}

const std::map<std::string, int> kLayout = {{"a", 0}, {"b", 1}};

TEST(EvaluatorTest, ArithmeticWithNullPropagation) {
  ExprPtr expr = Call("plus", {Var("a", Type::Bigint()), Var("b", Type::Bigint())});
  auto result = Evaluator::EvalExpression(*expr, OnePage(), kLayout);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->GetValue(0), Value::Int(11));
  EXPECT_EQ((*result)->GetValue(1), Value::Int(22));
  EXPECT_TRUE((*result)->IsNull(2));
  EXPECT_TRUE((*result)->IsNull(3));
}

TEST(EvaluatorTest, DivisionByZeroYieldsNull) {
  ExprPtr expr = Call("divide", {Var("a", Type::Bigint()),
                                 ConstantExpression::MakeBigint(0)});
  auto result = Evaluator::EvalExpression(*expr, OnePage(), kLayout);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE((*result)->IsNull(i));
}

TEST(EvaluatorTest, ThreeValuedAnd) {
  // (a > 1) AND (b > 10): row2 has a NULL in `a`, row3 NULL in `b`.
  ExprPtr cond = SpecialFormExpression::Make(
      SpecialFormKind::kAnd, Type::Boolean(),
      {Call("gt", {Var("a", Type::Bigint()), ConstantExpression::MakeBigint(1)}),
       Call("gt", {Var("b", Type::Bigint()), ConstantExpression::MakeBigint(10)})});
  auto result = Evaluator::EvalExpression(*cond, OnePage(), kLayout);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetValue(0), Value::Bool(false));  // a=1 not > 1
  EXPECT_EQ((*result)->GetValue(1), Value::Bool(true));
  EXPECT_TRUE((*result)->IsNull(2));   // NULL AND true -> NULL
  EXPECT_TRUE((*result)->IsNull(3));   // true AND NULL -> NULL
}

TEST(EvaluatorTest, NullAndFalseIsFalse) {
  ExprPtr cond = SpecialFormExpression::Make(
      SpecialFormKind::kAnd, Type::Boolean(),
      {SpecialFormExpression::Make(SpecialFormKind::kIsNull, Type::Boolean(),
                                   {Var("a", Type::Bigint())}),
       ConstantExpression::MakeBool(false)});
  auto result = Evaluator::EvalExpression(*cond, OnePage(), kLayout);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*result)->GetValue(i), Value::Bool(false));
  }
}

TEST(EvaluatorTest, InListWithNull) {
  ExprPtr in_list = SpecialFormExpression::Make(
      SpecialFormKind::kIn, Type::Boolean(),
      {Var("a", Type::Bigint()), ConstantExpression::MakeBigint(2),
       ConstantExpression::MakeBigint(4)});
  auto result = Evaluator::EvalExpression(*in_list, OnePage(), kLayout);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetValue(0), Value::Bool(false));
  EXPECT_EQ((*result)->GetValue(1), Value::Bool(true));
  EXPECT_TRUE((*result)->IsNull(2));
  EXPECT_EQ((*result)->GetValue(3), Value::Bool(true));
}

TEST(EvaluatorTest, IfAndCoalesce) {
  ExprPtr if_expr = SpecialFormExpression::Make(
      SpecialFormKind::kIf, Type::Bigint(),
      {Call("gt", {Var("a", Type::Bigint()), ConstantExpression::MakeBigint(1)}),
       Var("a", Type::Bigint()), ConstantExpression::MakeBigint(-1)});
  auto r1 = Evaluator::EvalExpression(*if_expr, OnePage(), kLayout);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ((*r1)->GetValue(0), Value::Int(-1));
  EXPECT_EQ((*r1)->GetValue(1), Value::Int(2));
  EXPECT_EQ((*r1)->GetValue(2), Value::Int(-1));  // NULL condition -> else

  ExprPtr coalesce = SpecialFormExpression::Make(
      SpecialFormKind::kCoalesce, Type::Bigint(),
      {Var("a", Type::Bigint()), ConstantExpression::MakeBigint(0)});
  auto r2 = Evaluator::EvalExpression(*coalesce, OnePage(), kLayout);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->GetValue(2), Value::Int(0));
}

TEST(EvaluatorTest, DereferenceNestedStruct) {
  TypePtr base_type =
      Type::Row({"city_id", "status"}, {Type::Bigint(), Type::Varchar()});
  VectorBuilder builder(base_type);
  ASSERT_TRUE(builder.Append(Value::Row({Value::Int(12), Value::String("ok")})).ok());
  builder.AppendNull();
  ASSERT_TRUE(builder.Append(Value::Row({Value::Int(7), Value::String("no")})).ok());
  Page page({builder.Build()});

  auto deref = SpecialFormExpression::MakeDereference(Var("base", base_type),
                                                      "city_id");
  ASSERT_TRUE(deref.ok());
  auto result = Evaluator::EvalExpression(**deref, page, {{"base", 0}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetValue(0), Value::Int(12));
  EXPECT_TRUE((*result)->IsNull(1)) << "null struct yields null field";
  EXPECT_EQ((*result)->GetValue(2), Value::Int(7));

  EXPECT_FALSE(
      SpecialFormExpression::MakeDereference(Var("base", base_type), "nope").ok());
}

TEST(EvaluatorTest, CastBetweenTypes) {
  ExprPtr cast = SpecialFormExpression::Make(
      SpecialFormKind::kCast, Type::Varchar(), {Var("a", Type::Bigint())});
  auto result = Evaluator::EvalExpression(*cast, OnePage(), kLayout);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->GetValue(0), Value::String("1"));
  EXPECT_TRUE((*result)->IsNull(2));

  // VARCHAR -> BIGINT, unparseable yields NULL.
  VectorBuilder sb(Type::Varchar());
  sb.AppendString("123");
  sb.AppendString("abc");
  Page page({sb.Build()});
  ExprPtr cast2 = SpecialFormExpression::Make(
      SpecialFormKind::kCast, Type::Bigint(), {Var("s", Type::Varchar())});
  auto r2 = Evaluator::EvalExpression(*cast2, page, {{"s", 0}});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)->GetValue(0), Value::Int(123));
  EXPECT_TRUE((*r2)->IsNull(1));
}

TEST(EvaluatorTest, StringFunctions) {
  VectorBuilder sb(Type::Varchar());
  sb.AppendString("San Francisco");
  sb.AppendString("nyc");
  Page page({sb.Build()});
  std::map<std::string, int> layout{{"s", 0}};

  auto lower = Evaluator::EvalExpression(
      *Call("lower", {Var("s", Type::Varchar())}), page, layout);
  ASSERT_TRUE(lower.ok());
  EXPECT_EQ((*lower)->GetValue(0), Value::String("san francisco"));

  auto like = Evaluator::EvalExpression(
      *Call("like", {Var("s", Type::Varchar()),
                     ConstantExpression::MakeVarchar("%Fran%")}),
      page, layout);
  ASSERT_TRUE(like.ok());
  EXPECT_EQ((*like)->GetValue(0), Value::Bool(true));
  EXPECT_EQ((*like)->GetValue(1), Value::Bool(false));

  auto substr = Evaluator::EvalExpression(
      *Call("substr", {Var("s", Type::Varchar()), ConstantExpression::MakeBigint(5),
                       ConstantExpression::MakeBigint(4)}),
      page, layout);
  ASSERT_TRUE(substr.ok());
  EXPECT_EQ((*substr)->GetValue(0), Value::String("Fran"));
}

TEST(EvaluatorTest, HigherOrderTransformAndFilter) {
  TypePtr arr_type = Type::Array(Type::Bigint());
  VectorBuilder b(arr_type);
  ASSERT_TRUE(b.Append(Value::Array({Value::Int(1), Value::Int(2), Value::Int(3)})).ok());
  ASSERT_TRUE(b.Append(Value::Array({Value::Int(10)})).ok());
  Page page({b.Build()});
  std::map<std::string, int> layout{{"arr", 0}};

  ExprPtr lambda = LambdaDefinitionExpression::Make(
      {"x"}, {Type::Bigint()},
      Call("multiply", {Var("x", Type::Bigint()), ConstantExpression::MakeBigint(2)}));
  ExprPtr transform = CallExpression::Make(
      FunctionHandle{"transform", {arr_type, lambda->type()}, arr_type},
      {Var("arr", arr_type), lambda});
  auto r = Evaluator::EvalExpression(*transform, page, layout);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->GetValue(0),
            Value::Array({Value::Int(2), Value::Int(4), Value::Int(6)}));
  EXPECT_EQ((*r)->GetValue(1), Value::Array({Value::Int(20)}));

  ExprPtr pred_lambda = LambdaDefinitionExpression::Make(
      {"x"}, {Type::Bigint()},
      Call("gt", {Var("x", Type::Bigint()), ConstantExpression::MakeBigint(1)}));
  ExprPtr filter = CallExpression::Make(
      FunctionHandle{"filter", {arr_type, pred_lambda->type()}, arr_type},
      {Var("arr", arr_type), pred_lambda});
  auto f = Evaluator::EvalExpression(*filter, page, layout);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->GetValue(0), Value::Array({Value::Int(2), Value::Int(3)}));
}

TEST(EvaluatorTest, CollectionFunctions) {
  TypePtr arr_type = Type::Array(Type::Varchar());
  VectorBuilder b(arr_type);
  ASSERT_TRUE(b.Append(Value::Array({Value::String("a"), Value::String("b")})).ok());
  ASSERT_TRUE(b.Append(Value::Array({})).ok());
  Page page({b.Build()});
  std::map<std::string, int> layout{{"arr", 0}};

  auto card = Evaluator::EvalExpression(
      *Call("cardinality", {Var("arr", arr_type)}), page, layout);
  ASSERT_TRUE(card.ok());
  EXPECT_EQ((*card)->GetValue(0), Value::Int(2));
  EXPECT_EQ((*card)->GetValue(1), Value::Int(0));

  auto contains = Evaluator::EvalExpression(
      *Call("contains", {Var("arr", arr_type), ConstantExpression::MakeVarchar("b")}),
      page, layout);
  ASSERT_TRUE(contains.ok());
  EXPECT_EQ((*contains)->GetValue(0), Value::Bool(true));
  EXPECT_EQ((*contains)->GetValue(1), Value::Bool(false));
}

TEST(EvaluatorTest, PredicateRowSelection) {
  ExprPtr pred = Call("gte", {Var("a", Type::Bigint()),
                              ConstantExpression::MakeBigint(2)});
  auto rows = EvalPredicate(*pred, OnePage(), kLayout);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<int32_t>{1, 3}));  // NULL row excluded
}

TEST(AggregateTest, SumAvgMinMaxCount) {
  auto make_acc = [](const std::string& name, const TypePtr& t) {
    auto handle = Reg().ResolveAggregate(name, {t});
    EXPECT_TRUE(handle.ok());
    auto fn = Reg().FindAggregate(*handle);
    EXPECT_TRUE(fn.ok());
    return (*fn)->factory();
  };
  VectorBuilder b(Type::Bigint());
  b.AppendBigint(5);
  b.AppendNull();
  b.AppendBigint(3);
  b.AppendBigint(10);
  VectorPtr v = b.Build();
  std::vector<VectorPtr> args{v};

  auto sum = make_acc("sum", Type::Bigint());
  auto avg = make_acc("avg", Type::Bigint());
  auto min = make_acc("min", Type::Bigint());
  auto max = make_acc("max", Type::Bigint());
  auto count = make_acc("count", Type::Bigint());
  for (size_t i = 0; i < v->size(); ++i) {
    sum->Add(args, i);
    avg->Add(args, i);
    min->Add(args, i);
    max->Add(args, i);
    count->Add(args, i);
  }
  EXPECT_EQ(sum->Final(), Value::Int(18));
  EXPECT_EQ(avg->Final(), Value::Double(6.0));
  EXPECT_EQ(min->Final(), Value::Int(3));
  EXPECT_EQ(max->Final(), Value::Int(10));
  EXPECT_EQ(count->Final(), Value::Int(3)) << "count skips nulls";
}

TEST(AggregateTest, PartialFinalMergeMatchesSinglePass) {
  auto handle = Reg().ResolveAggregate("avg", {Type::Double()});
  ASSERT_TRUE(handle.ok());
  auto fn = Reg().FindAggregate(*handle);
  ASSERT_TRUE(fn.ok());

  VectorPtr v1 = MakeDoubleVector({1.0, 2.0});
  VectorPtr v2 = MakeDoubleVector({3.0, 6.0});
  auto partial1 = (*fn)->factory();
  auto partial2 = (*fn)->factory();
  for (size_t i = 0; i < 2; ++i) partial1->Add({v1}, i);
  for (size_t i = 0; i < 2; ++i) partial2->Add({v2}, i);

  auto final_acc = (*fn)->factory();
  final_acc->MergeIntermediate(partial1->Intermediate());
  final_acc->MergeIntermediate(partial2->Intermediate());
  EXPECT_EQ(final_acc->Final(), Value::Double(3.0));
}

TEST(AggregateTest, ApproxDistinctAccuracy) {
  auto handle = Reg().ResolveAggregate("approx_distinct", {Type::Bigint()});
  ASSERT_TRUE(handle.ok());
  auto fn = Reg().FindAggregate(*handle);
  ASSERT_TRUE(fn.ok());
  auto acc = (*fn)->factory();
  constexpr int64_t kDistinct = 20000;
  std::vector<int64_t> values;
  for (int64_t i = 0; i < kDistinct; ++i) values.push_back(i);
  VectorPtr v = MakeBigintVector(std::move(values));
  for (size_t i = 0; i < v->size(); ++i) acc->Add({v}, i);
  int64_t estimate = acc->Final().int_value();
  EXPECT_GT(estimate, kDistinct * 0.9);
  EXPECT_LT(estimate, kDistinct * 1.1);
}

TEST(SerializationTest, ValueRoundTrip) {
  std::vector<Value> values = {
      Value::Null(), Value::Bool(true), Value::Int(-42), Value::Double(2.5),
      Value::String("presto"),
      Value::Row({Value::Int(1), Value::Array({Value::String("a")})}),
      Value::Map({{Value::String("k"), Value::Double(9.0)}})};
  for (const Value& v : values) {
    ByteBuffer buf;
    SerializeValue(v, &buf);
    ByteReader reader(buf.bytes());
    auto back = DeserializeValue(&reader);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->Equals(v)) << v.ToString();
  }
}

TEST(SerializationTest, ExpressionRoundTripIsSelfContained) {
  // max(base.city_id) + 1 IN (2, 3) style compound with every node kind.
  TypePtr base_type = Type::Row({"city_id"}, {Type::Bigint()});
  auto deref = SpecialFormExpression::MakeDereference(
      Var("base", base_type), "city_id");
  ASSERT_TRUE(deref.ok());
  ExprPtr plus = Call("plus", {*deref, ConstantExpression::MakeBigint(1)});
  ExprPtr in_expr = SpecialFormExpression::Make(
      SpecialFormKind::kIn, Type::Boolean(),
      {plus, ConstantExpression::MakeBigint(2), ConstantExpression::MakeBigint(3)});

  auto copy = CopyExpressionViaSerialization(*in_expr);
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();
  EXPECT_EQ((*copy)->ToString(), in_expr->ToString());

  // The deserialized copy evaluates identically — the FunctionHandle inside
  // survived the round trip without re-resolution.
  VectorBuilder builder(base_type);
  ASSERT_TRUE(builder.Append(Value::Row({Value::Int(1)})).ok());
  ASSERT_TRUE(builder.Append(Value::Row({Value::Int(5)})).ok());
  Page page({builder.Build()});
  auto r1 = Evaluator::EvalExpression(*in_expr, page, {{"base", 0}});
  auto r2 = Evaluator::EvalExpression(**copy, page, {{"base", 0}});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE((*r1)->GetValue(i).Equals((*r2)->GetValue(i)));
  }
}

TEST(SerializationTest, LambdaRoundTrip) {
  ExprPtr lambda = LambdaDefinitionExpression::Make(
      {"x"}, {Type::Bigint()},
      Call("plus", {Var("x", Type::Bigint()), ConstantExpression::MakeBigint(1)}));
  auto copy = CopyExpressionViaSerialization(*lambda);
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ((*copy)->ToString(), lambda->ToString());
}

TEST(SerializationTest, CorruptBytesRejected) {
  std::vector<uint8_t> garbage = {0xFF, 0x01, 0x02};
  ByteReader reader(garbage.data(), garbage.size());
  EXPECT_FALSE(DeserializeExpression(&reader).ok());
}

TEST(ExpressionTest, CollectReferencedVariables) {
  ExprPtr lambda = LambdaDefinitionExpression::Make(
      {"x"}, {Type::Bigint()},
      Call("plus", {Var("x", Type::Bigint()), Var("outer", Type::Bigint())}));
  std::vector<std::string> vars;
  CollectReferencedVariables(*lambda, &vars);
  EXPECT_EQ(vars, std::vector<std::string>{"outer"}) << "lambda params are bound";
  EXPECT_TRUE(ReferencesVariable(*lambda, "outer"));
  EXPECT_FALSE(ReferencesVariable(*lambda, "x"));
}

}  // namespace
}  // namespace presto
