// Morsel-driven intra-task parallelism: the replicated-chain execution of a
// task (session task_threads) must be invisible in results — group-by and
// join answers at 2 or 8 chains match the single-threaded reference exactly
// for integer aggregates and within fp tolerance for doubles (cross-chain
// merge reassociates additions) — and EXPLAIN ANALYZE totals must reconcile
// exactly because every morsel is counted by exactly one chain. Inputs mix
// flat, nullable, and dictionary-encoded pages so the parallel consume sees
// every encoding the readers produce.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <thread>

#include "presto/cluster/cluster.h"
#include "presto/common/fault_injection.h"
#include "presto/common/random.h"
#include "presto/common/thread_pool.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/exec/morsel.h"
#include "presto/vector/vector.h"

namespace presto {
namespace {

// -- WorkStealingPool ---------------------------------------------------------

TEST(WorkStealingPoolTest, RunsEverySubmittedTask) {
  WorkStealingPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkStealingPoolTest, ShutdownDrainsPendingWork) {
  std::atomic<int> ran{0};
  {
    WorkStealingPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(WorkStealingPoolTest, ExternalCallerCanHelp) {
  // An external (non-pool) thread may drain queued work via TryRunOne; the
  // combination of caller and pool thread must run every task exactly once.
  WorkStealingPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  while (pool.TryRunOne()) {
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1000);
}

// -- RunParallel --------------------------------------------------------------

TEST(RunParallelTest, RunsAllSlotsWithoutPool) {
  std::atomic<uint32_t> mask{0};
  Status st = RunParallel(nullptr, 8, [&mask](int slot) {
    mask.fetch_or(1u << slot);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(mask.load(), 0xFFu);
}

TEST(RunParallelTest, RunsAllSlotsWithPool) {
  WorkStealingPool pool(3);
  std::atomic<uint32_t> mask{0};
  Status st = RunParallel(&pool, 8, [&mask](int slot) {
    mask.fetch_or(1u << slot);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(mask.load(), 0xFFu);
}

TEST(RunParallelTest, PropagatesFirstError) {
  WorkStealingPool pool(2);
  Status st = RunParallel(&pool, 4, [](int slot) {
    if (slot == 2) return Status::Internal("slot 2 failed");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("slot 2 failed"), std::string::npos);
}

// -- Differential: parallel chains vs the single-threaded reference -----------

std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Page& page : result.pages) {
    for (size_t r = 0; r < page.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < page.num_columns(); ++c) {
        row += page.column(c)->GetValue(r).ToString();
        row += "|";
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class MorselDifferentialTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 200'000;
  static constexpr int64_t kKeys = 20'000;  // forces the radix upgrade
  static constexpr size_t kPageRows = 10'000;

  static void SetUpTestSuite() {
    cluster_ = new PrestoCluster("morsel-diff", 2, 2);
    auto memory = std::make_shared<MemoryConnector>();
    TypePtr facts_type = Type::Row(
        {"k", "tag", "v", "d"},
        {Type::Bigint(), Type::Varchar(), Type::Bigint(), Type::Double()});
    ASSERT_TRUE(memory->CreateTable("raw", "facts", facts_type).ok());

    // Dictionary base shared by the tag column of every page.
    std::vector<std::string> tags;
    for (int i = 0; i < 17; ++i) tags.push_back("tag_" + std::to_string(i));
    VectorPtr tag_base = MakeVarcharVector(tags);

    Random rng(20260808);
    for (int64_t done = 0; done < kRows; done += kPageRows) {
      std::vector<int64_t> k(kPageRows), v(kPageRows);
      std::vector<double> d(kPageRows);
      std::vector<uint8_t> v_nulls(kPageRows, 0);
      std::vector<int32_t> tag_idx(kPageRows);
      for (size_t i = 0; i < kPageRows; ++i) {
        k[i] = static_cast<int64_t>(rng.Next() % kKeys);
        v[i] = static_cast<int64_t>(rng.Next() % 1000);
        d[i] = static_cast<double>(rng.Next() % 100000) / 7.0;
        v_nulls[i] = rng.Next() % 20 == 0 ? 1 : 0;
        tag_idx[i] = static_cast<int32_t>(rng.Next() % tags.size());
      }
      std::vector<VectorPtr> columns;
      columns.push_back(MakeBigintVector(std::move(k)));
      columns.push_back(VectorPtr(
          std::make_shared<DictionaryVector>(tag_base, std::move(tag_idx))));
      columns.push_back(VectorPtr(std::make_shared<Int64Vector>(
          Type::Bigint(), std::move(v), std::move(v_nulls))));
      columns.push_back(MakeDoubleVector(std::move(d)));
      ASSERT_TRUE(memory
                      ->AppendPage("raw", "facts",
                                   Page(std::move(columns), kPageRows))
                      .ok());
    }
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
  }

  static void TearDownTestSuite() {
    delete cluster_;
    cluster_ = nullptr;
  }

  static QueryResult Execute(const std::string& sql, int task_threads,
                             bool kernels) {
    Session session;
    session.properties["task_threads"] = std::to_string(task_threads);
    session.properties["vectorized_kernels"] = kernels ? "true" : "false";
    auto result = cluster_->Execute(sql, session);
    EXPECT_TRUE(result.ok()) << sql << " (task_threads=" << task_threads
                             << ", kernels=" << kernels << ")\n"
                             << result.status().ToString();
    return result.ok() ? *result : QueryResult();
  }

  // Integer-only aggregates: results must be bit-identical at any thread
  // count, on both the kernel and the boxed path.
  static void ExpectExactAcrossThreadCounts(const std::string& sql) {
    for (bool kernels : {true, false}) {
      auto reference = SortedRows(Execute(sql, 1, kernels));
      ASSERT_FALSE(reference.empty()) << sql;
      for (int threads : {2, 8}) {
        EXPECT_EQ(SortedRows(Execute(sql, threads, kernels)), reference)
            << sql << " diverged at task_threads=" << threads
            << " kernels=" << kernels;
      }
    }
  }

  static PrestoCluster* cluster_;
};

PrestoCluster* MorselDifferentialTest::cluster_ = nullptr;

TEST_F(MorselDifferentialTest, GroupByExactAcrossThreadCounts) {
  ExpectExactAcrossThreadCounts(
      "SELECT k, count(*), sum(v), min(v), max(v) FROM mem.raw.facts "
      "GROUP BY k");
}

TEST_F(MorselDifferentialTest, DictionaryKeyGroupByExact) {
  ExpectExactAcrossThreadCounts(
      "SELECT tag, count(*), sum(v) FROM mem.raw.facts GROUP BY tag");
}

TEST_F(MorselDifferentialTest, GlobalAggregateExact) {
  ExpectExactAcrossThreadCounts(
      "SELECT count(*), sum(v), min(k), max(k) FROM mem.raw.facts");
}

TEST_F(MorselDifferentialTest, JoinExactAcrossThreadCounts) {
  // Self-join keeps the build side at kRows rows, past the radix-join
  // threshold, so the partitioned build tables get exercised.
  ExpectExactAcrossThreadCounts(
      "SELECT a.k, count(*) FROM mem.raw.facts a JOIN mem.raw.facts b "
      "ON a.k = b.k WHERE a.v < 3 AND b.v < 3 GROUP BY a.k");
}

TEST_F(MorselDifferentialTest, DoubleSumWithinTolerance) {
  // Cross-chain merge reassociates double additions; values must agree to
  // relative 1e-9 per group even though they need not be bit-identical.
  const std::string sql = "SELECT k, sum(d) FROM mem.raw.facts GROUP BY k";
  auto parse = [](const QueryResult& result) {
    std::map<int64_t, double> by_key;
    for (const Page& page : result.pages) {
      for (size_t r = 0; r < page.num_rows(); ++r) {
        by_key[page.column(0)->GetValue(r).int_value()] =
            page.column(1)->GetValue(r).AsDouble();
      }
    }
    return by_key;
  };
  auto reference = parse(Execute(sql, 1, true));
  // ~e^-10 of the 20k keys may go undrawn in 200k samples; all that matters
  // is that the parallel runs see exactly the same key set.
  ASSERT_GT(reference.size(), static_cast<size_t>(kKeys) * 9 / 10);
  for (int threads : {2, 8}) {
    auto parallel = parse(Execute(sql, threads, true));
    ASSERT_EQ(parallel.size(), reference.size());
    for (const auto& [key, expected] : reference) {
      double actual = parallel.at(key);
      EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-9 + 1e-9)
          << "key " << key << " at task_threads=" << threads;
    }
  }
}

TEST_F(MorselDifferentialTest, ExplainAnalyzeReconcilesExactly) {
  const std::string sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.facts GROUP BY k";
  Session session;
  session.properties["task_threads"] = "8";
  auto plain = cluster_->Execute(sql, session);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  auto analyzed = cluster_->Execute("EXPLAIN ANALYZE " + sql, session);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();

  // Output totals reconcile exactly with the plain run.
  EXPECT_EQ(analyzed->stats.output_rows, plain->total_rows);

  // Every morsel is consumed by exactly one chain: the scan node's merged
  // per-chain stats must add up to exactly the table's rows.
  int64_t scan_rows = 0;
  bool saw_scan = false;
  for (const auto& [node_id, op] : analyzed->stats.operators) {
    if (op.operator_type == "TableScan") {
      scan_rows += op.output_rows;
      saw_scan = true;
    }
  }
  ASSERT_TRUE(saw_scan);
  EXPECT_EQ(scan_rows, kRows);
}

TEST_F(MorselDifferentialTest, ParallelChainsSurviveChaos) {
  // Faults armed while chains consume in parallel: every run either matches
  // the reference exactly or fails with a classified, retryable error.
  const std::string sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.facts GROUP BY k";
  Session session;
  session.properties["task_threads"] = "4";
  auto reference = cluster_->Execute(sql, session);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  const auto expected = SortedRows(*reference);

  auto& injector = FaultInjector::Global();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    injector.Reset();
    injector.Seed(seed);
    injector.ArmProbabilistic("connector.split.read", 0.02,
                              StatusCode::kIoError);
    injector.ArmProbabilistic("worker.task.body", 0.05);
    auto chaotic = cluster_->Execute(sql, session);
    if (chaotic.ok()) {
      EXPECT_EQ(SortedRows(*chaotic), expected) << "seed " << seed;
    } else {
      EXPECT_TRUE(IsRetryableStatus(chaotic.status()))
          << "seed " << seed << ": " << chaotic.status().ToString();
    }
  }
  injector.Reset();

  auto recovered = cluster_->Execute(sql, session);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(*recovered), expected);
}

TEST_F(MorselDifferentialTest, ZeroCopyCounterTicksOnGather) {
  Session session;
  auto result =
      cluster_->Execute("SELECT count(*) FROM mem.raw.facts", session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The partial-aggregation stage gathers into the final stage through a
  // single-partition exchange: every page passes through zero-copy.
  EXPECT_GT(result->exec_metrics["exchange.page.zero_copy"], 0);
}

}  // namespace
}  // namespace presto
