// Cross-connector integration tests: SQL over mini-Druid (aggregation
// pushdown), mini-MySQL, Hive-on-lakefiles (pruning, predicate pushdown,
// caches, schema evolution), federated joins across all three, the gateway,
// graceful shrink, and the QuadTree geo-join rewrite.

#include <gtest/gtest.h>

#include "presto/cluster/cluster.h"
#include "presto/cluster/gateway.h"
#include "presto/common/random.h"
#include "presto/connectors/druid/druid_connector.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/connectors/mysql/mysql_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/geo/geometry.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

std::string SquareWkt(double cx, double cy, double h) {
  auto num = [](double v) { return std::to_string(v); };
  return "POLYGON ((" + num(cx - h) + " " + num(cy - h) + ", " + num(cx + h) +
         " " + num(cy - h) + ", " + num(cx + h) + " " + num(cy + h) + ", " +
         num(cx - h) + " " + num(cy + h) + ", " + num(cx - h) + " " +
         num(cy - h) + "))";
}

// A federated environment: one cluster with druid, mysql, and hive catalogs.
class FederationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new PrestoCluster("fed", 2, 2);
    clock_ = new SimulatedClock();
    hdfs_ = new SimulatedHdfs(clock_);
    druid_store_ = new druid::DruidStore();
    mysql_db_ = new mysqlite::MySqlLite();

    // --- Druid: real-time ride events ------------------------------------
    druid::DatasourceSchema schema;
    schema.dimensions = {"city", "status"};
    schema.metrics = {"fare"};
    ASSERT_TRUE(druid_store_->CreateDatasource("rides", schema).ok());
    std::vector<druid::DruidRow> events;
    const char* cities[] = {"sf", "nyc", "la"};
    for (int i = 0; i < 300; ++i) {
      events.push_back({i * 1000, {cities[i % 3], i % 2 == 0 ? "done" : "open"},
                        {1.0 + i % 10}});
    }
    ASSERT_TRUE(druid_store_->Ingest("rides", events).ok());

    // --- MySQL: city dimension table --------------------------------------
    ASSERT_TRUE(mysql_db_
                    ->CreateTable("dim", "cities",
                                  Type::Row({"city", "population"},
                                            {Type::Varchar(), Type::Bigint()}))
                    .ok());
    ASSERT_TRUE(mysql_db_
                    ->Insert("dim", "cities",
                             {{Value::String("sf"), Value::Int(800000)},
                              {Value::String("nyc"), Value::Int(8000000)},
                              {Value::String("la"), Value::Int(4000000)}})
                    .ok());

    // --- Hive: nested trips on simulated HDFS ------------------------------
    hive_ = std::make_shared<HiveConnector>(hdfs_, "warehouse");
    TypePtr base_type = Type::Row({"driver_uuid", "city_id"},
                                  {Type::Varchar(), Type::Bigint()});
    TypePtr trips_type = Type::Row(
        {"datestr", "id", "base"}, {Type::Varchar(), Type::Bigint(), base_type});
    ASSERT_TRUE(hive_->CreateTable("rawdata", "trips", trips_type, "datestr").ok());
    for (int day = 1; day <= 3; ++day) {
      VectorBuilder id(Type::Bigint()), base(base_type);
      for (int64_t i = 0; i < 100; ++i) {
        id.AppendBigint(day * 1000 + i);
        ASSERT_TRUE(base.Append(Value::Row({Value::String("drv"), Value::Int(i % 20)}))
                        .ok());
      }
      // The partition column is carried in the page (dropped on write).
      VectorBuilder date(Type::Varchar());
      for (int64_t i = 0; i < 100; ++i) date.AppendString("2017-03-0" + std::to_string(day));
      ASSERT_TRUE(hive_
                      ->WriteDataFile("rawdata", "trips",
                                      "2017-03-0" + std::to_string(day),
                                      {Page({date.Build(), id.Build(), base.Build()})})
                      .ok());
    }

    ASSERT_TRUE(cluster_->catalogs()
                    .RegisterCatalog("druid",
                                     std::make_shared<DruidConnector>(druid_store_))
                    .ok());
    ASSERT_TRUE(cluster_->catalogs()
                    .RegisterCatalog("mysql",
                                     std::make_shared<MySqlConnector>(mysql_db_))
                    .ok());
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("hive", hive_).ok());
  }

  static QueryResult Run(const std::string& sql, Session session = Session()) {
    auto result = cluster_->Execute(sql, session);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
    if (!result.ok()) return QueryResult();
    return std::move(*result);
  }

  static std::vector<std::vector<Value>> Rows(const QueryResult& result) {
    std::vector<std::vector<Value>> out;
    for (const Page& page : result.pages) {
      for (size_t r = 0; r < page.num_rows(); ++r) out.push_back(page.GetRow(r));
    }
    return out;
  }

  static PrestoCluster* cluster_;
  static SimulatedClock* clock_;
  static SimulatedHdfs* hdfs_;
  static druid::DruidStore* druid_store_;
  static mysqlite::MySqlLite* mysql_db_;
  static std::shared_ptr<HiveConnector> hive_;
};

PrestoCluster* FederationTest::cluster_ = nullptr;
SimulatedClock* FederationTest::clock_ = nullptr;
SimulatedHdfs* FederationTest::hdfs_ = nullptr;
druid::DruidStore* FederationTest::druid_store_ = nullptr;
mysqlite::MySqlLite* FederationTest::mysql_db_ = nullptr;
std::shared_ptr<HiveConnector> FederationTest::hive_;

TEST_F(FederationTest, DruidScanThroughSql) {
  // All 300 events share one hourly bucket, so rollup leaves 3 cities x 2
  // statuses = 6 rows; status = 'done' selects 3 (under the LIMIT).
  QueryResult result =
      Run("SELECT city, fare FROM druid.default.rides WHERE status = 'done' LIMIT 5");
  EXPECT_EQ(result.total_rows, 3);
  QueryResult unlimited =
      Run("SELECT city, fare FROM druid.default.rides LIMIT 5");
  EXPECT_EQ(unlimited.total_rows, 5);
}

TEST_F(FederationTest, DruidAggregationPushdown) {
  Session session;
  auto explain = cluster_->Explain(
      "SELECT city, sum(fare) AS total, count(*) AS n FROM druid.default.rides "
      "GROUP BY city",
      session);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("pushedAggregation"), std::string::npos)
      << "EXPLAIN should show aggregation pushdown:\n" << *explain;

  QueryResult result = Run(
      "SELECT city, sum(fare) AS total, count(*) AS n FROM druid.default.rides "
      "GROUP BY city ORDER BY city");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::String("la"));
  EXPECT_EQ(rows[1][0], Value::String("nyc"));
  EXPECT_EQ(rows[2][0], Value::String("sf"));

  // Pushed-down and engine-side aggregation must agree.
  Session no_push;
  // Disabling pushdown end-to-end: aggregate over a subquery-free scan with
  // an expression key defeats the pushdown pattern.
  QueryResult raw = Run(
      "SELECT city, sum(fare + 0.0) AS total, count(*) AS n "
      "FROM druid.default.rides GROUP BY city ORDER BY city");
  auto raw_rows = Rows(raw);
  ASSERT_EQ(raw_rows.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(rows[i][1].Equals(raw_rows[i][1])) << i;
    EXPECT_TRUE(rows[i][2].Equals(raw_rows[i][2])) << i;
  }
}

TEST_F(FederationTest, DruidPredicatePushdownUsesIndexes) {
  int64_t queries_before = druid_store_->metrics().Get("druid.query.calls");
  QueryResult result = Run(
      "SELECT count(*) FROM druid.default.rides WHERE city = 'sf' AND status = 'done'");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0][0].int_value(), 0);
  EXPECT_EQ(druid_store_->metrics().Get("druid.query.calls"), queries_before + 1);
}

TEST_F(FederationTest, MySqlPredicateAndProjectionPushdown) {
  int64_t scanned_before = mysql_db_->metrics().Get("mysql.rows.returned");
  QueryResult result =
      Run("SELECT population FROM mysql.dim.cities WHERE city = 'sf'");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int(800000));
  // Server returned exactly one row: the predicate ran in "MySQL".
  EXPECT_EQ(mysql_db_->metrics().Get("mysql.rows.returned"), scanned_before + 1);
}

TEST_F(FederationTest, HivePartitionPruningAndNestedPredicate) {
  QueryResult result = Run(
      "SELECT base.driver_uuid, id FROM hive.rawdata.trips "
      "WHERE datestr = '2017-03-02' AND base.city_id = 12 ORDER BY id");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 5u);  // city_id = i%20 == 12 -> 5 of 100
  EXPECT_EQ(rows[0][1], Value::Int(2012));
}

TEST_F(FederationTest, HiveExplainShowsNestedPruning) {
  Session session;
  auto explain = cluster_->Explain(
      "SELECT base.driver_uuid FROM hive.rawdata.trips WHERE base.city_id = 12",
      session);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("prunedLeaves"), std::string::npos) << *explain;
  EXPECT_NE(explain->find("base.city_id = 12"), std::string::npos) << *explain;
}

TEST_F(FederationTest, FederatedJoinAcrossThreeStores) {
  // Join real-time Druid data with a MySQL dimension and aggregate —
  // "unified SQL on heterogeneous storage systems without data copy".
  QueryResult result = Run(
      "SELECT c.population, sum(r.fare) AS total "
      "FROM druid.default.rides r JOIN mysql.dim.cities c ON r.city = c.city "
      "GROUP BY c.population ORDER BY c.population");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value::Int(800000));
}

TEST_F(FederationTest, HiveSchemaEvolutionNullFillsNewField) {
  // Evolve trips: add a new top-level column and a new nested field.
  TypePtr base_v2 =
      Type::Row({"driver_uuid", "city_id", "vehicle_id"},
                {Type::Varchar(), Type::Bigint(), Type::Varchar()});
  TypePtr trips_v2 =
      Type::Row({"datestr", "id", "base", "tip"},
                {Type::Varchar(), Type::Bigint(), base_v2, Type::Double()});
  ASSERT_TRUE(hive_->EvolveSchema("rawdata", "trips", trips_v2).ok());

  QueryResult result = Run(
      "SELECT tip, base.vehicle_id, base.city_id FROM hive.rawdata.trips "
      "WHERE datestr = '2017-03-01' AND id = 1001");
  auto rows = Rows(result);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0][0].is_null()) << "new column reads NULL in old files";
  EXPECT_TRUE(rows[0][1].is_null()) << "new nested field reads NULL in old files";
  EXPECT_EQ(rows[0][2], Value::Int(1));

  // A type change is rejected by the schema service.
  TypePtr bad = Type::Row({"datestr", "id", "base", "tip"},
                          {Type::Varchar(), Type::Varchar(), base_v2, Type::Double()});
  EXPECT_EQ(hive_->EvolveSchema("rawdata", "trips", bad).code(),
            StatusCode::kSchemaViolation);
}

TEST_F(FederationTest, GeoJoinRewriteMatchesBruteForce) {
  // cities geofences + trip points in a memory catalog.
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr cities_type = Type::Row({"city_id", "geo_shape"},
                                  {Type::Bigint(), Type::Varchar()});
  ASSERT_TRUE(memory->CreateTable("geo", "cities", cities_type).ok());
  VectorBuilder city_id(Type::Bigint()), shape(Type::Varchar());
  for (int64_t c = 0; c < 20; ++c) {
    city_id.AppendBigint(c);
    shape.AppendString(SquareWkt(c * 10.0, c * 10.0, 4.0));
  }
  ASSERT_TRUE(memory->AppendPage("geo", "cities",
                                 Page({city_id.Build(), shape.Build()}))
                  .ok());
  TypePtr points_type = Type::Row({"trip_id", "lng", "lat"},
                                  {Type::Bigint(), Type::Double(), Type::Double()});
  ASSERT_TRUE(memory->CreateTable("geo", "trip_points", points_type).ok());
  VectorBuilder trip_id(Type::Bigint()), lng(Type::Double()), lat(Type::Double());
  Random rng(11);
  for (int64_t t = 0; t < 500; ++t) {
    trip_id.AppendBigint(t);
    double base = static_cast<double>(rng.NextBelow(20)) * 10.0;
    lng.AppendDouble(base + rng.NextDouble() * 6.0 - 3.0);
    lat.AppendDouble(base + rng.NextDouble() * 6.0 - 3.0);
  }
  ASSERT_TRUE(memory->AppendPage("geo", "trip_points",
                                 Page({trip_id.Build(), lng.Build(), lat.Build()}))
                  .ok());
  ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("geomem", memory).ok());

  const std::string kQuery =
      "SELECT c.city_id, count(*) AS trips FROM geomem.geo.trip_points t "
      "JOIN geomem.geo.cities c "
      "ON st_contains(c.geo_shape, st_point(t.lng, t.lat)) "
      "GROUP BY 1 ORDER BY 1";

  Session with_rewrite;
  auto explain = cluster_->Explain(kQuery, with_rewrite);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("build_geo_index"), std::string::npos)
      << "rewrite should build a QuadTree on the fly:\n" << *explain;
  EXPECT_NE(explain->find("geo_contains"), std::string::npos);

  QueryResult fast = Run(kQuery, with_rewrite);

  Session brute;
  brute.properties["geo_index_rewrite"] = "false";
  auto brute_explain = cluster_->Explain(kQuery, brute);
  ASSERT_TRUE(brute_explain.ok());
  EXPECT_EQ(brute_explain->find("geo_contains"), std::string::npos)
      << "brute force path must keep st_contains:\n" << *brute_explain;
  QueryResult slow = Run(kQuery, brute);

  auto fast_rows = Rows(fast);
  auto slow_rows = Rows(slow);
  ASSERT_EQ(fast_rows.size(), slow_rows.size());
  ASSERT_GT(fast_rows.size(), 0u);
  for (size_t i = 0; i < fast_rows.size(); ++i) {
    EXPECT_TRUE(fast_rows[i][0].Equals(slow_rows[i][0])) << i;
    EXPECT_TRUE(fast_rows[i][1].Equals(slow_rows[i][1])) << i;
  }
}

TEST_F(FederationTest, GracefulShrinkDuringQueries) {
  std::string victim = cluster_->ExpandWorker(2);
  // Run a few queries, then shrink the worker; queries keep succeeding.
  for (int i = 0; i < 3; ++i) {
    Run("SELECT count(*) FROM hive.rawdata.trips");
  }
  ASSERT_TRUE(cluster_->ShrinkWorkerAndWait(victim).ok());
  QueryResult after = Run("SELECT count(*) FROM hive.rawdata.trips");
  EXPECT_EQ(Rows(after)[0][0], Value::Int(300));
}

TEST(GatewayTest, RoutesByUserGroupAndDefault) {
  mysqlite::MySqlLite routing_db;
  PrestoGateway gateway(&routing_db);

  PrestoCluster dedicated("dedicated", 1, 1);
  PrestoCluster shared("shared", 1, 1);
  auto add_table = [](PrestoCluster& cluster, int64_t marker) {
    auto memory = std::make_shared<MemoryConnector>();
    TypePtr t = Type::Row({"marker"}, {Type::Bigint()});
    ASSERT_TRUE(memory->CreateTable("default", "who", t).ok());
    ASSERT_TRUE(memory->AppendPage("default", "who",
                                   Page({MakeBigintVector({marker})}))
                    .ok());
    ASSERT_TRUE(cluster.catalogs().RegisterCatalog("memory", memory).ok());
  };
  add_table(dedicated, 1);
  add_table(shared, 2);

  ASSERT_TRUE(gateway.RegisterCluster("dedicated", &dedicated).ok());
  ASSERT_TRUE(gateway.RegisterCluster("shared", &shared).ok());
  ASSERT_TRUE(gateway.SetDefaultRoute("shared").ok());
  ASSERT_TRUE(gateway.SetUserRoute("analyst1", "dedicated").ok());
  ASSERT_TRUE(gateway.SetGroupRoute("marketplace", "dedicated").ok());

  Session analyst;
  analyst.user = "analyst1";
  auto r1 = gateway.Submit("SELECT marker FROM memory.default.who", analyst);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->Row(0)[0], Value::Int(1));

  Session marketplace_user;
  marketplace_user.user = "someone";
  marketplace_user.group = "marketplace";
  auto r2 = gateway.Submit("SELECT marker FROM memory.default.who", marketplace_user);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->Row(0)[0], Value::Int(1));

  Session randomer;
  randomer.user = "random";
  randomer.group = "other";
  auto r3 = gateway.Submit("SELECT marker FROM memory.default.who", randomer);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->Row(0)[0], Value::Int(2));

  // Maintenance: drain dedicated -> shared; analyst traffic follows with no
  // downtime.
  ASSERT_TRUE(gateway.DrainClusterRoutes("dedicated", "shared").ok());
  auto r4 = gateway.Submit("SELECT marker FROM memory.default.who", analyst);
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4->Row(0)[0], Value::Int(2));
}

TEST(GatewayTest, UnroutableWithoutDefault) {
  mysqlite::MySqlLite routing_db;
  PrestoGateway gateway(&routing_db);
  Session session;
  EXPECT_FALSE(gateway.Route(session).ok());
}

}  // namespace
}  // namespace presto
