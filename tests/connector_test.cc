// Connector-SPI-level tests: pushdown negotiation contracts, split
// generation, partition pruning, sealed/open cache interaction, residual
// predicate correctness when a connector only absorbs part of a filter,
// and expression-to-SimplePredicate normalization.

#include <gtest/gtest.h>

#include "presto/cluster/cluster.h"
#include "presto/connector/pushdown.h"
#include "presto/connectors/druid/druid_connector.h"
#include "presto/connectors/hive/hive_connector.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/fs/simulated_hdfs.h"
#include "presto/tpch/workloads.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// ---------------------------------------------------------------------------
// SimplePredicate normalization
// ---------------------------------------------------------------------------

ExprPtr Var(const std::string& name, const TypePtr& type) {
  return VariableReferenceExpression::Make(name, type);
}

ExprPtr Cmp(const std::string& fn, ExprPtr a, ExprPtr b) {
  auto handle =
      FunctionRegistry::Default().ResolveScalar(fn, {a->type(), b->type()});
  EXPECT_TRUE(handle.ok());
  return CallExpression::Make(*handle, {std::move(a), std::move(b)});
}

TEST(NormalizeConjunctTest, ComparisonForms) {
  auto p1 = NormalizeConjunct(
      *Cmp("eq", Var("x", Type::Bigint()), ConstantExpression::MakeBigint(5)));
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->ToString(), "x = 5");

  // Literal on the left flips the operator.
  auto p2 = NormalizeConjunct(
      *Cmp("lt", ConstantExpression::MakeBigint(5), Var("x", Type::Bigint())));
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->ToString(), "x > 5");

  // Dereference chains become dotted paths.
  TypePtr base_type = Type::Row({"city_id"}, {Type::Bigint()});
  auto deref =
      SpecialFormExpression::MakeDereference(Var("base", base_type), "city_id");
  ASSERT_TRUE(deref.ok());
  auto p3 = NormalizeConjunct(
      *Cmp("gte", *deref, ConstantExpression::MakeBigint(10)));
  ASSERT_TRUE(p3.has_value());
  EXPECT_EQ(p3->ToString(), "base.city_id >= 10");
}

TEST(NormalizeConjunctTest, InListForm) {
  ExprPtr in_expr = SpecialFormExpression::Make(
      SpecialFormKind::kIn, Type::Boolean(),
      {Var("s", Type::Varchar()), ConstantExpression::MakeVarchar("a"),
       ConstantExpression::MakeVarchar("b")});
  auto pred = NormalizeConjunct(*in_expr);
  ASSERT_TRUE(pred.has_value());
  EXPECT_EQ(pred->op, SimplePredicate::Op::kIn);
  EXPECT_EQ(pred->values.size(), 2u);
}

TEST(NormalizeConjunctTest, NonNormalizableForms) {
  // col-to-col comparisons, arithmetic sides, and NULL literals stay residual.
  EXPECT_FALSE(NormalizeConjunct(*Cmp("eq", Var("x", Type::Bigint()),
                                      Var("y", Type::Bigint())))
                   .has_value());
  ExprPtr sum = Cmp("eq",
                    CallExpression::Make(
                        *FunctionRegistry::Default().ResolveScalar(
                            "plus", {Type::Bigint(), Type::Bigint()}),
                        {Var("x", Type::Bigint()),
                         ConstantExpression::MakeBigint(1)}),
                    ConstantExpression::MakeBigint(5));
  EXPECT_FALSE(NormalizeConjunct(*sum).has_value());
  EXPECT_FALSE(NormalizeConjunct(*Cmp("eq", Var("x", Type::Bigint()),
                                      ConstantExpression::MakeNull(Type::Bigint())))
                   .has_value());
}

TEST(ConjunctUtilsTest, FlattenAndCombine) {
  ExprPtr a = Cmp("eq", Var("x", Type::Bigint()), ConstantExpression::MakeBigint(1));
  ExprPtr b = Cmp("eq", Var("y", Type::Bigint()), ConstantExpression::MakeBigint(2));
  ExprPtr c = Cmp("eq", Var("z", Type::Bigint()), ConstantExpression::MakeBigint(3));
  ExprPtr and_ab = SpecialFormExpression::Make(SpecialFormKind::kAnd,
                                               Type::Boolean(), {a, b});
  ExprPtr nested = SpecialFormExpression::Make(SpecialFormKind::kAnd,
                                               Type::Boolean(), {and_ab, c});
  std::vector<ExprPtr> conjuncts;
  FlattenConjuncts(nested, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(CombineConjuncts({}), nullptr);
  EXPECT_EQ(CombineConjuncts({a}), a);
  EXPECT_NE(CombineConjuncts({a, b}), nullptr);
}

// ---------------------------------------------------------------------------
// Residual predicates with partial connector acceptance
// ---------------------------------------------------------------------------

TEST(DruidResidualTest, MetricPredicateStaysInEngine) {
  druid::DruidStore store;
  druid::DatasourceSchema schema;
  schema.dimensions = {"city"};
  schema.metrics = {"revenue"};
  schema.granularity_millis = 1000;
  ASSERT_TRUE(store.CreateDatasource("events", schema).ok());
  std::vector<druid::DruidRow> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back({i * 1000, {i % 2 == 0 ? "sf" : "nyc"},
                      {static_cast<double>(i)}});
  }
  ASSERT_TRUE(store.Ingest("events", events).ok());

  PrestoCluster cluster("residual", 1, 1);
  auto connector = std::make_shared<DruidConnector>(&store);
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("druid", connector).ok());

  // city = 'sf' is pushable; revenue > 50 is on a metric -> residual.
  Session session;
  auto explain = cluster.Explain(
      "SELECT revenue FROM druid.default.events "
      "WHERE city = 'sf' AND revenue > 50.0", session);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("pushedPredicates=[city = 'sf']"), std::string::npos)
      << *explain;
  EXPECT_NE(explain->find("Filter[gt("), std::string::npos)
      << "metric predicate must remain as engine filter:\n" << *explain;

  auto result = cluster.Execute(
      "SELECT count(*) FROM druid.default.events "
      "WHERE city = 'sf' AND revenue > 50.0", session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Even i in (52..98): 24 rows.
  EXPECT_EQ(result->Row(0)[0], Value::Int(24));
}

TEST(DruidResidualTest, AggregationNotPushedWhenFilterResidual) {
  druid::DruidStore store;
  druid::DatasourceSchema schema;
  schema.dimensions = {"city"};
  schema.metrics = {"revenue"};
  ASSERT_TRUE(store.CreateDatasource("events", schema).ok());
  ASSERT_TRUE(store.Ingest("events", {{0, {"sf"}, {1.0}},
                                      {0, {"sf"}, {100.0}},
                                      {0, {"nyc"}, {100.0}}})
                  .ok());
  PrestoCluster cluster("noaggpush", 1, 1);
  ASSERT_TRUE(cluster.catalogs()
                  .RegisterCatalog("druid", std::make_shared<DruidConnector>(&store))
                  .ok());
  Session session;
  // The residual metric filter blocks aggregation pushdown (otherwise the
  // connector would aggregate unfiltered rows).
  auto explain = cluster.Explain(
      "SELECT city, count(*) FROM druid.default.events "
      "WHERE revenue > 50.0 GROUP BY city", session);
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->find("pushedAggregation"), std::string::npos) << *explain;

  auto result = cluster.Execute(
      "SELECT city, count(*) FROM druid.default.events "
      "WHERE revenue > 50.0 GROUP BY city ORDER BY city", session);
  ASSERT_TRUE(result.ok());
  // Rollup at hourly granularity: sf collapses to one row (revenue 101).
  EXPECT_EQ(result->total_rows, 2);
}

// ---------------------------------------------------------------------------
// Hive connector specifics
// ---------------------------------------------------------------------------

class HiveConnectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clock_ = std::make_unique<SimulatedClock>();
    hdfs_ = std::make_unique<SimulatedHdfs>(clock_.get());
    hive_ = std::make_shared<HiveConnector>(hdfs_.get(), "wh");
    TypePtr t = Type::Row({"ds", "x"}, {Type::Varchar(), Type::Bigint()});
    ASSERT_TRUE(hive_->CreateTable("s", "t", t, "ds").ok());
    for (const char* ds : {"a", "b", "c"}) {
      VectorBuilder date(Type::Varchar()), x(Type::Bigint());
      for (int64_t i = 0; i < 10; ++i) {
        date.AppendString(ds);
        x.AppendBigint(i);
      }
      ASSERT_TRUE(
          hive_->WriteDataFile("s", "t", ds, {Page({date.Build(), x.Build()})}).ok());
    }
  }

  std::unique_ptr<SimulatedClock> clock_;
  std::unique_ptr<SimulatedHdfs> hdfs_;
  std::shared_ptr<HiveConnector> hive_;
};

TEST_F(HiveConnectorTest, PartitionPruningReducesSplits) {
  PushdownRequest request;
  request.columns = {"x"};
  request.predicates = {{"ds", SimplePredicate::Op::kEq, {Value::String("b")}}};
  auto accepted = hive_->NegotiatePushdown("s", "t", request);
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->predicate_indices.size(), 1u);

  auto pruned = hive_->CreateSplits("s", "t", *accepted, 8);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->size(), 1u) << "only partition ds=b survives";

  AcceptedPushdown no_pred = *accepted;
  no_pred.request.predicates.clear();
  auto all = hive_->CreateSplits("s", "t", no_pred, 8);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 3u);
}

TEST_F(HiveConnectorTest, LegacyModeRefusesAllPushdown) {
  HiveConnectorOptions options;
  options.use_legacy_reader = true;
  hive_->set_options(options);
  PushdownRequest request;
  request.columns = {"x"};
  request.required_leaves = {"x"};
  request.predicates = {{"x", SimplePredicate::Op::kEq, {Value::Int(3)}}};
  request.limit = 5;
  auto accepted = hive_->NegotiatePushdown("s", "t", request);
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted->predicate_indices.empty());
  EXPECT_FALSE(accepted->limit_pushed);
  EXPECT_TRUE(accepted->request.required_leaves.empty());
}

TEST_F(HiveConnectorTest, UnpushablePredicateLeftBehind) {
  // LIKE is not a SimplePredicate; array paths are not scalar leaves.
  PushdownRequest request;
  request.columns = {"x"};
  request.predicates = {{"no_such_col", SimplePredicate::Op::kEq, {Value::Int(1)}}};
  auto accepted = hive_->NegotiatePushdown("s", "t", request);
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted->predicate_indices.empty());
}

TEST_F(HiveConnectorTest, MissingTableErrors) {
  PushdownRequest request;
  EXPECT_EQ(hive_->NegotiatePushdown("s", "missing", request).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(hive_->GetTableSchema("s", "missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(hive_->WriteDataFile("s", "t", "", {}).ok())
      << "partitioned table requires a partition value";
}

TEST(MemoryConnectorTest, SplitBatching) {
  MemoryConnector memory;
  TypePtr t = Type::Row({"x"}, {Type::Bigint()});
  ASSERT_TRUE(memory.CreateTable("d", "t", t).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(memory.AppendPage("d", "t", Page({MakeBigintVector({i})})).ok());
  }
  PushdownRequest request;
  request.columns = {"x"};
  auto accepted = memory.NegotiatePushdown("d", "t", request);
  ASSERT_TRUE(accepted.ok());
  auto splits = memory.CreateSplits("d", "t", *accepted, 4);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->size(), 4u);  // 10 pages / ceil(10/4)=3 per split

  // An empty table still produces one split so schemas propagate.
  ASSERT_TRUE(memory.CreateTable("d", "empty", t).ok());
  auto empty_splits = memory.CreateSplits("d", "empty", *accepted, 4);
  ASSERT_TRUE(empty_splits.ok());
  EXPECT_EQ(empty_splits->size(), 1u);
}

TEST(PruneColumnTypeTest, KeepsOnlyRequiredFields) {
  TypePtr base = Type::Row(
      {"a", "b", "c"},
      {Type::Bigint(), Type::Row({"x", "y"}, {Type::Bigint(), Type::Varchar()}),
       Type::Array(Type::Bigint())});
  auto pruned = lakefile::PruneColumnType("col", base, {"col.b.x"});
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ((*pruned)->ToString(), "ROW(b ROW(x BIGINT))");

  // Containers are kept whole; empty required list returns the full type.
  auto with_array = lakefile::PruneColumnType("col", base, {"col.c.element"});
  ASSERT_TRUE(with_array.ok());
  EXPECT_EQ((*with_array)->ToString(), "ROW(c ARRAY(BIGINT))");
  auto full = lakefile::PruneColumnType("col", base, {});
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE((*full)->Equals(*base));
}

}  // namespace
}  // namespace presto
