// Resource groups, weighted-fair admission, and overload protection.
//
// Covers the multi-tenant admission layer end to end: deficit-weighted
// round-robin proportionality and starvation resistance at the
// ResourceGroupManager level, cluster-level load shedding (kRejected) with
// per-group accounting, queued-time deadlines, the query_timeout_millis
// deadline while queued, gateway backoff on shed clusters, a seeded chaos
// workload whose per-group accounting must reconcile exactly, and the
// Prometheus / journal / trace plumbing of the resource_group dimension.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "presto/cluster/cluster.h"
#include "presto/cluster/coordinator.h"
#include "presto/cluster/gateway.h"
#include "presto/cluster/resource_groups.h"
#include "presto/common/clock.h"
#include "presto/common/fault_injection.h"
#include "presto/common/metrics.h"
#include "presto/common/random.h"
#include "presto/common/status.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/mysqlite/mysqlite.h"
#include "presto/vector/vector.h"

namespace presto {
namespace {

ResourceGroupConfig MakeGroup(const std::string& name, int weight,
                              int hard_concurrency, int max_queued) {
  ResourceGroupConfig config;
  config.name = name;
  config.weight = weight;
  config.hard_concurrency = hard_concurrency;
  config.max_queued = max_queued;
  return config;
}

// ---------------------------------------------------------------------------
// ResourceGroupManager unit tests (no cluster)
// ---------------------------------------------------------------------------

// Harness around the manager: spawns one thread per queued admission, records
// the order in which admissions are granted (each admitted thread immediately
// releases its slot, so with total_concurrency=1 the grant order is exactly
// the DRR promotion order). The recorded order only equals the promotion
// order if at most one waiter is admitted at a time — serialize either with
// total_concurrency=1 or a one-token memory gate refilled by `post_record`
// (which runs after the admission is recorded, before Release).
class AdmissionOrderHarness {
 public:
  explicit AdmissionOrderHarness(ResourceGroupManager* manager,
                                 std::function<void()> post_record = nullptr)
      : manager_(manager), post_record_(std::move(post_record)) {}

  ~AdmissionOrderHarness() { Join(); }

  void Enqueue(const std::string& group, int64_t query_id) {
    bool queued = false;
    Status st = manager_->TryAdmit(group, query_id, -1, &queued);
    ASSERT_TRUE(st.ok()) << st.ToString();
    if (!queued) {
      // Fast-path admission (no slot contention yet): record and release.
      Record(group, query_id);
      if (post_record_) post_record_();
      manager_->Release(group);
      return;
    }
    threads_.emplace_back([this, group, query_id] {
      Status wait = manager_->Wait(group, query_id, 0);
      EXPECT_TRUE(wait.ok()) << wait.ToString();
      if (wait.ok()) {
        Record(group, query_id);
        if (post_record_) post_record_();
        manager_->Release(group);
      }
    });
  }

  void Join() {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  std::vector<std::pair<std::string, int64_t>> Order() {
    std::lock_guard<std::mutex> lock(mu_);
    return order_;
  }

 private:
  void Record(const std::string& group, int64_t query_id) {
    std::lock_guard<std::mutex> lock(mu_);
    order_.emplace_back(group, query_id);
  }

  ResourceGroupManager* manager_;
  std::function<void()> post_record_;
  std::mutex mu_;
  std::vector<std::pair<std::string, int64_t>> order_;
  std::vector<std::thread> threads_;
};

void WaitForQueued(ResourceGroupManager& manager, const std::string& group,
                   int64_t count) {
  for (int i = 0; i < 2000 && manager.queued(group) < count; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(manager.queued(group), count)
      << "group " << group << " never reached " << count << " waiters";
}

// Weighted-fair proportionality: with interactive:batch weights 8:1 and both
// queues saturated, the first DRR cycle grants interactive 8 of the first 9
// slots (ties break in configured order, so the cycle is 8 interactive then 1
// batch).
TEST(ResourceGroupManagerTest, WeightedFairProportionalAdmission) {
  ResourceGroupsOptions options;
  options.enabled = true;
  options.total_concurrency = 1;  // serialize admissions: order == DRR order
  options.default_group = "interactive";
  options.groups = {MakeGroup("interactive", 8, 100, 100),
                    MakeGroup("batch", 1, 100, 100)};
  MetricsRegistry metrics;
  ResourceGroupManager manager(std::move(options), &metrics, [] { return true; });

  // Occupy the single global slot so everything below queues.
  bool queued = false;
  ASSERT_TRUE(manager.TryAdmit("interactive", 1000, -1, &queued).ok());
  ASSERT_FALSE(queued);

  AdmissionOrderHarness harness(&manager);
  for (int64_t i = 0; i < 8; ++i) harness.Enqueue("batch", i);
  for (int64_t i = 10; i < 18; ++i) harness.Enqueue("interactive", i);
  WaitForQueued(manager, "batch", 8);
  WaitForQueued(manager, "interactive", 8);

  manager.Release("interactive");  // open the floodgate
  harness.Join();

  auto order = harness.Order();
  ASSERT_EQ(order.size(), 16u);
  int interactive_in_first_nine = 0;
  for (size_t i = 0; i < 9; ++i) {
    if (order[i].first == "interactive") ++interactive_in_first_nine;
  }
  EXPECT_EQ(interactive_in_first_nine, 8)
      << "weights 8:1 must grant interactive 8 of the first 9 admissions";

  EXPECT_EQ(manager.total_running(), 0);
  EXPECT_EQ(manager.queued("interactive"), 0);
  EXPECT_EQ(manager.queued("batch"), 0);
  EXPECT_EQ(metrics.Get("group.interactive.admitted"), 9);  // blocker + 8
  EXPECT_EQ(metrics.Get("group.batch.admitted"), 8);
}

// Starvation differential: a late interactive arrival behind a deep batch
// backlog is admitted first under weighted-fair groups, and dead last under
// the single-FIFO (groups disabled) admission it replaces.
TEST(ResourceGroupManagerTest, LateInteractiveArrivalDoesNotStarve) {
  constexpr int64_t kLateArrival = 99;

  // Weighted-fair: the late interactive query jumps the batch backlog.
  {
    ResourceGroupsOptions options;
    options.enabled = true;
    options.total_concurrency = 1;
    options.default_group = "interactive";
    options.groups = {MakeGroup("interactive", 8, 100, 100),
                      MakeGroup("batch", 1, 100, 100)};
    MetricsRegistry metrics;
    ResourceGroupManager manager(std::move(options), &metrics,
                                 [] { return true; });
    bool queued = false;
    ASSERT_TRUE(manager.TryAdmit("batch", 1000, -1, &queued).ok());
    ASSERT_FALSE(queued);

    AdmissionOrderHarness harness(&manager);
    for (int64_t i = 0; i < 6; ++i) harness.Enqueue("batch", i);
    WaitForQueued(manager, "batch", 6);
    harness.Enqueue("interactive", kLateArrival);
    WaitForQueued(manager, "interactive", 1);

    manager.Release("batch");
    harness.Join();
    auto order = harness.Order();
    ASSERT_EQ(order.size(), 7u);
    EXPECT_EQ(order.front().second, kLateArrival)
        << "weighted-fair admission must not starve interactive behind batch";
  }

  // Single FIFO (disabled): strict arrival order, the late query waits out
  // the entire backlog.
  {
    ResourceGroupsOptions options;  // enabled = false
    MetricsRegistry metrics;
    ResourceGroupManager manager(std::move(options), &metrics,
                                 [] { return true; });
    ASSERT_FALSE(manager.enabled());
    // The disabled manager never caps concurrency, so simulate the busy
    // cluster with a token-bucket memory gate: each token admits exactly one
    // query (every PromoteLocked iteration re-checks the gate), and the
    // admitted thread mints the next token only after recording its place —
    // otherwise one gate opening admits the whole queue in a single sweep
    // and the recorded order is scheduler wake order, not admission order.
    std::atomic<int> tokens{0};
    MetricsRegistry gated_metrics;
    ResourceGroupManager fifo(ResourceGroupsOptions(), &gated_metrics,
                              [&] { return tokens.fetch_sub(1) > 0; });

    AdmissionOrderHarness harness(&fifo, [&] { tokens.store(1); });
    for (int64_t i = 0; i < 6; ++i) harness.Enqueue("default", i);
    WaitForQueued(fifo, "default", 6);
    harness.Enqueue("default", kLateArrival);
    WaitForQueued(fifo, "default", 7);

    tokens.store(1);
    fifo.NotifyCapacity();
    harness.Join();
    auto order = harness.Order();
    ASSERT_EQ(order.size(), 7u);
    EXPECT_EQ(order.back().second, kLateArrival)
        << "FIFO admission serves strictly in arrival order";
  }
}

// Queue-depth overload protection: admissions beyond hard_concurrency +
// max_queued shed with kRejected (not kResourceExhausted), and only the
// overloaded group pays.
TEST(ResourceGroupManagerTest, QueueDepthOverflowShedsWithRejected) {
  ResourceGroupsOptions options;
  options.enabled = true;
  options.total_concurrency = 100;
  options.default_group = "interactive";
  options.groups = {MakeGroup("interactive", 8, 100, 100),
                    MakeGroup("batch", 1, 2, 3)};
  MetricsRegistry metrics;
  std::atomic<bool> gate_open{true};
  ResourceGroupManager manager(std::move(options), &metrics,
                               [&] { return gate_open.load(); });

  bool queued = false;
  // Fill batch's run quota...
  for (int64_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(manager.TryAdmit("batch", i, -1, &queued).ok());
    ASSERT_FALSE(queued);
  }
  // ...then its queue (TryAdmit counts these toward the depth even before
  // Wait() parks them)...
  for (int64_t i = 2; i < 5; ++i) {
    ASSERT_TRUE(manager.TryAdmit("batch", i, -1, &queued).ok());
    ASSERT_TRUE(queued);
  }
  // ...and the next arrival is shed.
  Status shed = manager.TryAdmit("batch", 5, -1, &queued);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kRejected) << shed.ToString();
  EXPECT_NE(shed.message().find("load shed"), std::string::npos);
  EXPECT_EQ(metrics.Get("group.batch.shed"), 1);
  EXPECT_EQ(metrics.Get("group.interactive.shed"), 0);

  // Interactive is untouched by batch's overload.
  ASSERT_TRUE(manager.TryAdmit("interactive", 50, -1, &queued).ok());
  EXPECT_FALSE(queued);
  manager.Release("interactive");
  manager.Release("batch");
  manager.Release("batch");
}

// ---------------------------------------------------------------------------
// Cluster-level tests
// ---------------------------------------------------------------------------

class WorkloadClusterTest : public ::testing::Test {
 protected:
  void MakeCluster(CoordinatorOptions options) {
    cluster_ = std::make_unique<PrestoCluster>("workload", 2, 2, options);
    auto memory = std::make_shared<MemoryConnector>();
    ASSERT_TRUE(
        memory->CreateTable("raw", "t", Type::Row({"x"}, {Type::Bigint()}))
            .ok());
    ASSERT_TRUE(
        memory->AppendPage("raw", "t", Page({MakeBigintVector({1, 2, 3})}))
            .ok());
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
  }

  Result<QueryResult> Run(const std::string& group,
                          std::map<std::string, std::string> props = {}) {
    Session session;
    session.properties = std::move(props);
    if (!group.empty()) session.properties["resource_group"] = group;
    return cluster_->Execute("SELECT sum(x) FROM mem.raw.t", session);
  }

  bool JournalHas(QueryEventKind kind, const std::string& group = "") {
    for (const QueryEvent& event : cluster_->coordinator().journal().Events()) {
      if (event.kind == kind &&
          (group.empty() || event.resource_group == group)) {
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<PrestoCluster> cluster_;
};

// A group's queued-time deadline sheds the queued query with kRejected and a
// query_shed journal event; the per-query deadline (query_timeout_millis)
// instead exits with the classified timeout and a query_timeout_queued event.
TEST_F(WorkloadClusterTest, QueuedTimeoutsShedAndJournal) {
  CoordinatorOptions options;
  options.worker_memory_bytes = 16 << 20;
  options.admission_high_water = 0.5;
  options.resource_groups.enabled = true;
  options.resource_groups.total_concurrency = 8;
  options.resource_groups.default_group = "interactive";
  auto batch = MakeGroup("batch", 1, 2, 16);
  batch.queued_timeout_millis = 30;
  options.resource_groups.groups = {MakeGroup("interactive", 8, 4, 16), batch};
  MakeCluster(options);

  Coordinator& coordinator = cluster_->coordinator();
  // Hold worker memory above the high-water mark so everything queues.
  ASSERT_TRUE(coordinator.worker_pool()->Reserve(10 << 20).ok());

  // Group queued-time deadline: shed with kRejected.
  auto shed = Run("batch");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kRejected)
      << shed.status().ToString();
  EXPECT_NE(shed.status().message().find("queued-time deadline"),
            std::string::npos)
      << shed.status().ToString();
  EXPECT_TRUE(JournalHas(QueryEventKind::kShed, "batch"));
  EXPECT_GE(coordinator.metrics().Get("group.batch.shed"), 1);
  EXPECT_GE(coordinator.metrics().Get("query.shed"), 1);

  // Per-query deadline while queued: classified timeout + journal event.
  auto timed_out = Run("interactive", {{"query_timeout_millis", "50"}});
  ASSERT_FALSE(timed_out.ok());
  EXPECT_NE(timed_out.status().message().find(
                "query deadline exceeded (query_timeout_millis) while queued"),
            std::string::npos)
      << timed_out.status().ToString();
  EXPECT_TRUE(JournalHas(QueryEventKind::kTimeoutQueued, "interactive"));
  EXPECT_GE(coordinator.metrics().Get("query.timeout.queued"), 1);

  // Interactive never shed anything.
  EXPECT_EQ(coordinator.metrics().Get("group.interactive.shed"), 0);

  coordinator.worker_pool()->Release(10 << 20);
  auto ok = Run("interactive");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(coordinator.resource_groups().total_running(), 0);
}

// The resource_group dimension shows up everywhere the operator looks:
// journal events, the Prometheus exposition, and the trace's root query span.
TEST_F(WorkloadClusterTest, GroupDimensionInJournalMetricsAndTrace) {
  CoordinatorOptions options;
  options.resource_groups = DefaultResourceGroupTree();
  MakeCluster(options);

  auto traced = Run("interactive", {{"query_trace", "true"}});
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  auto batch = Run("batch");
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  // Journal events carry the group.
  bool saw_interactive = false;
  for (const QueryEvent& event : cluster_->coordinator().journal().Events()) {
    if (event.query_id == traced->query_id) {
      EXPECT_EQ(event.resource_group, "interactive") << event.ToString();
      saw_interactive = true;
    }
  }
  EXPECT_TRUE(saw_interactive);

  // The root query span is labeled with the group.
  bool root_labeled = false;
  for (const TraceSpan& span : traced->trace_spans) {
    if (span.parent_id == 0 &&
        span.name.find("group=interactive") != std::string::npos) {
      root_labeled = true;
    }
  }
  EXPECT_TRUE(root_labeled) << "root span not labeled with the resource group";

  // Prometheus exposition includes the per-group counters (sanitized names).
  std::string exposition = cluster_->RenderMetricsText();
  EXPECT_NE(exposition.find("group_interactive_admitted"), std::string::npos);
  EXPECT_NE(exposition.find("group_batch_admitted"), std::string::npos);
  EXPECT_NE(exposition.find("group_interactive_queue_wait_micros"),
            std::string::npos)
      << "queue-wait histogram missing from the exposition";
}

// Gateway overload handling: a cluster that load-sheds (kRejected) is not
// blind-failovered as "sick" — the gateway backs off with jitter, counts
// gateway.route.shed, keeps the cluster healthy, and serves the query from
// the next cluster.
TEST(GatewayShedTest, BacksOffAndFailsOverWithoutHealthPenalty) {
  // Cluster A sheds everything: zero concurrency, zero queue depth.
  CoordinatorOptions shed_all;
  shed_all.resource_groups.enabled = true;
  shed_all.resource_groups.total_concurrency = 0;
  shed_all.resource_groups.default_group = "adhoc";
  shed_all.resource_groups.groups = {MakeGroup("adhoc", 1, 0, 0)};
  PrestoCluster cluster_a("cluster-a", 1, 2, shed_all);
  PrestoCluster cluster_b("cluster-b", 1, 2);
  for (PrestoCluster* cluster : {&cluster_a, &cluster_b}) {
    auto memory = std::make_shared<MemoryConnector>();
    ASSERT_TRUE(
        memory->CreateTable("raw", "t", Type::Row({"x"}, {Type::Bigint()}))
            .ok());
    ASSERT_TRUE(
        memory->AppendPage("raw", "t", Page({MakeBigintVector({7, 8})})).ok());
    ASSERT_TRUE(cluster->catalogs().RegisterCatalog("mem", memory).ok());
  }

  mysqlite::MySqlLite routing_db;
  PrestoGateway gateway(&routing_db, /*unhealthy_threshold=*/3,
                        /*overload_backoff_millis=*/2);
  ASSERT_TRUE(gateway.RegisterCluster("cluster-a", &cluster_a).ok());
  ASSERT_TRUE(gateway.RegisterCluster("cluster-b", &cluster_b).ok());
  ASSERT_TRUE(gateway.SetDefaultRoute("cluster-a").ok());

  auto result = gateway.Submit("SELECT sum(x) FROM mem.raw.t", Session());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->total_rows, 1);

  EXPECT_GE(gateway.metrics().Get("gateway.route.shed"), 1);
  EXPECT_GE(gateway.metrics().Get("gateway.query.overload_failover"), 1);
  // Shed is overload, not sickness: cluster A keeps its health.
  EXPECT_TRUE(gateway.IsClusterHealthy("cluster-a"));
  EXPECT_TRUE(gateway.IsClusterHealthy("cluster-b"));
  EXPECT_GE(cluster_a.coordinator().metrics().Get("group.adhoc.shed"), 1);
}

// Seeded chaos under a concurrent multi-tenant workload: a worker is killed
// mid-workload; with retries armed the workload completes (or fails
// classified), and afterwards every group's slot/queue accounting reconciles
// to exactly zero with no leaked worker memory.
TEST(WorkloadChaosTest, WorkerKillMidWorkloadReconcilesGroupAccounting) {
  FaultInjector::Global().Reset();
  CoordinatorOptions options;
  options.resource_groups = DefaultResourceGroupTree();
  options.journal_capacity = 1 << 16;
  PrestoCluster cluster("workload-chaos", 3, 2, options);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr facts = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("raw", "facts", facts).ok());
  Random rng(4207);
  for (int p = 0; p < 4; ++p) {
    size_t n = 300;
    std::vector<int64_t> k(n), v(n);
    for (size_t i = 0; i < n; ++i) {
      k[i] = static_cast<int64_t>(rng.NextBelow(20));
      v[i] = static_cast<int64_t>(rng.NextBelow(1000));
    }
    ASSERT_TRUE(memory
                    ->AppendPage("raw", "facts",
                                 Page({MakeBigintVector(std::move(k)),
                                       MakeBigintVector(std::move(v))}))
                    .ok());
  }
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("mem", memory).ok());

  // Kill the worker hosting the 5th dispatched task, mid-workload.
  FaultInjector::Global().ArmScripted("worker.kill", {5});

  const std::vector<std::string> groups = {"interactive", "batch", "adhoc"};
  std::atomic<int> ok_count{0}, classified{0}, unclassified{0};
  std::vector<std::thread> sessions;
  for (int s = 0; s < 6; ++s) {
    sessions.emplace_back([&, s] {
      Session session;
      session.properties["resource_group"] = groups[s % groups.size()];
      session.properties["query_max_task_retries"] = "2";
      session.properties["task_retry_backoff_millis"] = "1";
      session.properties["query_timeout_millis"] = "30000";
      for (int q = 0; q < 4; ++q) {
        auto result = cluster.Execute(
            "SELECT k, count(*), sum(v) FROM mem.raw.facts GROUP BY k",
            session);
        if (result.ok()) {
          ++ok_count;
        } else if (IsRetryableStatus(result.status()) ||
                   result.status().code() == StatusCode::kRejected ||
                   result.status().code() == StatusCode::kResourceExhausted) {
          ++classified;
        } else {
          ++unclassified;
          ADD_FAILURE() << "unclassified workload failure: "
                        << result.status().ToString();
        }
      }
    });
  }
  for (auto& t : sessions) t.join();
  FaultInjector::Global().Reset();

  EXPECT_EQ(unclassified.load(), 0);
  EXPECT_GT(ok_count.load(), 0) << "the whole workload failed";

  // Accounting reconciles exactly: no leaked slots, queues, or memory.
  ResourceGroupManager& manager = cluster.coordinator().resource_groups();
  EXPECT_EQ(manager.total_running(), 0);
  const MetricsRegistry& metrics = cluster.coordinator().metrics();
  for (const std::string& group : groups) {
    EXPECT_EQ(manager.running(group), 0) << group;
    EXPECT_EQ(manager.queued(group), 0) << group;
    // Every admission released its slot: admitted == completed, per group.
    EXPECT_EQ(metrics.Get("group." + group + ".admitted"),
              metrics.Get("group." + group + ".completed"))
        << group;
  }
  EXPECT_EQ(cluster.coordinator().worker_pool()->reserved_bytes(), 0);

  // The cluster still serves queries after the chaos.
  Session session;
  session.properties["resource_group"] = "interactive";
  auto after = cluster.Execute("SELECT count(*) FROM mem.raw.facts", session);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
}

// Restart-once × resource groups: a transient intermediate-stage failure
// restarts the query, and the restarted run re-enters its group's DRR queue
// (release + re-admit) instead of riding the first run's slot — so per-group
// admitted == completed reconciles exactly through the restart.
TEST(WorkloadChaosTest, RestartOnceReentersGroupQueueAndReconciles) {
  FaultInjector::Global().Reset();
  CoordinatorOptions options;
  options.resource_groups = DefaultResourceGroupTree();
  PrestoCluster cluster("workload-restart", 3, 2, options);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr facts = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("raw", "facts", facts).ok());
  Random rng(2026);
  for (int p = 0; p < 4; ++p) {
    size_t n = 300;
    std::vector<int64_t> k(n), v(n);
    for (size_t i = 0; i < n; ++i) {
      k[i] = static_cast<int64_t>(rng.NextBelow(20));
      v[i] = static_cast<int64_t>(rng.NextBelow(1000));
    }
    ASSERT_TRUE(memory
                    ->AppendPage("raw", "facts",
                                 Page({MakeBigintVector(std::move(k)),
                                       MakeBigintVector(std::move(v))}))
                    .ok());
  }
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("mem", memory).ok());

  Session session;
  session.properties["resource_group"] = "interactive";
  const std::string sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.facts GROUP BY k";
  auto reference = cluster.Execute(sql, session);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  // A latched shuffle transfer escapes leaf retry (the stage's upstream
  // partitions are already partially consumed, and no spool is armed), so
  // recovery is the restart-once rung.
  FaultInjector::Global().ArmScripted("exchange.push", {1});
  session.properties["query_max_task_retries"] = "1";
  session.properties["task_retry_backoff_millis"] = "1";
  auto result = cluster.Execute(sql, session);
  FaultInjector::Global().Reset();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->pages.size(), reference->pages.size());
  EXPECT_EQ(result->total_rows, reference->total_rows);

  const Coordinator& coordinator = cluster.coordinator();
  bool restarted = false;
  for (const QueryEvent& event : coordinator.journal().Events()) {
    restarted = restarted || event.kind == QueryEventKind::kRestarted;
  }
  EXPECT_TRUE(restarted);
  EXPECT_EQ(coordinator.metrics().Get("query.restarted"), 1);

  // The restart cost one extra admission cycle, and it reconciles: every
  // admission (including the re-admission) was paired with a completion.
  ResourceGroupManager& manager = cluster.coordinator().resource_groups();
  EXPECT_EQ(manager.total_running(), 0);
  EXPECT_EQ(manager.running("interactive"), 0);
  EXPECT_EQ(manager.queued("interactive"), 0);
  const MetricsRegistry& metrics = coordinator.metrics();
  EXPECT_GE(metrics.Get("group.interactive.admitted"), 3);
  EXPECT_EQ(metrics.Get("group.interactive.admitted"),
            metrics.Get("group.interactive.completed"));
  EXPECT_EQ(cluster.coordinator().worker_pool()->reserved_bytes(), 0);
}

}  // namespace
}  // namespace presto
