// Stage-level recovery: the spooled exchange, the stage re-run rung of the
// recovery ladder, straggler speculation with attempt-id fencing, graceful
// worker drain, and blacklist probation.
//
// The ladder under test (DESIGN.md "Fault tolerance"):
//   1. leaf-task retry        — transient leaf failures, surgical
//   2. straggler speculation  — slow tasks, duplicate attempt races the fence
//   3. stage re-run           — lost intermediate task, replayed from spools
//   4. restart-once           — everything else that is still transient
//
// Each rung must hand off to the next without ever returning wrong results:
// a broken/corrupt spool degrades recovery coverage, never correctness.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "presto/cluster/cluster.h"
#include "presto/common/fault_injection.h"
#include "presto/common/memory_pool.h"
#include "presto/common/metrics.h"
#include "presto/common/random.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/exec/exchange.h"
#include "presto/exec/exchange_spool.h"
#include "presto/fs/local_file_system.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// Disarms the global injector on scope exit so a failing assertion cannot
// leak an armed fault schedule into the next test.
struct InjectorGuard {
  InjectorGuard() { FaultInjector::Global().Reset(); }
  ~InjectorGuard() { FaultInjector::Global().Reset(); }
};

std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Page& page : result.pages) {
    for (size_t r = 0; r < page.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < page.num_columns(); ++c) {
        row += page.column(c)->GetValue(r).ToString() + "|";
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool JournalHasEvent(const Coordinator& coordinator, QueryEventKind kind) {
  for (const QueryEvent& event : coordinator.journal().Events()) {
    if (event.kind == kind) return true;
  }
  return false;
}

Page BigintPage(std::vector<int64_t> values) {
  return Page({MakeBigintVector(std::move(values))});
}

std::vector<int64_t> PageValues(const Page& page) {
  std::vector<int64_t> values;
  for (size_t r = 0; r < page.num_rows(); ++r) {
    values.push_back(page.column(0)->GetValue(r).int_value());
  }
  return values;
}

// ---------------------------------------------------------------------------
// ExchangeSpool unit tests (LocalFileSystem-backed, no cluster)
// ---------------------------------------------------------------------------

class ExchangeSpoolTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }

  std::string Dir(const std::string& name) {
    return ::testing::TempDir() + "/presto_spool_test/" + name;
  }

  LocalFileSystem fs_;
  MetricsRegistry metrics_;
};

TEST_F(ExchangeSpoolTest, RoundTripsPagesPerPartition) {
  auto pool = MemoryPool::CreateRoot("spool-test");
  ExchangeSpool spool(&fs_, Dir("roundtrip"), /*num_partitions=*/2, &metrics_,
                      pool, /*budget_bytes=*/64 << 20);

  ASSERT_TRUE(spool.Append(0, BigintPage({1, 2, 3})).ok());
  ASSERT_TRUE(spool.Append(0, BigintPage({4, 5})).ok());
  ASSERT_TRUE(spool.Append(1, BigintPage({42})).ok());
  EXPECT_EQ(spool.pages_spooled(0), 2);
  EXPECT_EQ(spool.pages_spooled(1), 1);
  EXPECT_GT(spool.bytes_spooled(), 0);
  // Compressed spool bytes are charged to the attached pool.
  EXPECT_GE(pool->reserved_bytes(), spool.bytes_spooled());

  auto reader = spool.OpenReader(0);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto first = (*reader)->Next();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ(PageValues(**first), (std::vector<int64_t>{1, 2, 3}));
  auto second = (*reader)->Next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ(PageValues(**second), (std::vector<int64_t>{4, 5}));
  auto eos = (*reader)->Next();
  ASSERT_TRUE(eos.ok());
  EXPECT_FALSE(eos->has_value());

  // A sealed partition refuses further appends without becoming broken.
  EXPECT_FALSE(spool.Append(0, BigintPage({9})).ok());
  EXPECT_FALSE(spool.broken(0));

  EXPECT_GE(metrics_.Get("exchange.spool.page.written"), 3);
  EXPECT_GT(metrics_.Get("exchange.spool.byte.written"), 0);
  EXPECT_GE(metrics_.Get("exchange.spool.page.replayed"), 2);
  EXPECT_GT(metrics_.Get("exchange.spool.byte.read"), 0);
}

TEST_F(ExchangeSpoolTest, NeverWrittenPartitionReplaysEmpty) {
  ExchangeSpool spool(&fs_, Dir("empty"), 2, &metrics_, nullptr,
                      /*budget_bytes=*/1 << 20);
  auto reader = spool.OpenReader(1);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto eos = (*reader)->Next();
  ASSERT_TRUE(eos.ok());
  EXPECT_FALSE(eos->has_value());
}

TEST_F(ExchangeSpoolTest, ByteBudgetBreaksPartitionAndRefusesReplay) {
  ExchangeSpool spool(&fs_, Dir("budget"), 1, &metrics_, nullptr,
                      /*budget_bytes=*/8);
  std::vector<int64_t> big(1024);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<int64_t>(i);
  Status st = spool.Append(0, BigintPage(std::move(big)));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_TRUE(spool.broken(0));
  // Further appends to the broken partition are dropped quietly.
  EXPECT_FALSE(spool.Append(0, BigintPage({1})).ok());
  // Replaying an incomplete spool would silently drop rows: refused.
  auto reader = spool.OpenReader(0);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(metrics_.Get("exchange.spool.partition.broken"), 1);
}

TEST_F(ExchangeSpoolTest, InjectedWriteFaultBreaksPartition) {
  InjectorGuard guard;
  ExchangeSpool spool(&fs_, Dir("write-fault"), 1, &metrics_, nullptr,
                      /*budget_bytes=*/1 << 20);
  FaultInjector::Global().ArmScripted("exchange.spool.write", {1});
  EXPECT_FALSE(spool.Append(0, BigintPage({1, 2})).ok());
  EXPECT_TRUE(spool.broken(0));
  EXPECT_FALSE(spool.OpenReader(0).ok());
}

TEST_F(ExchangeSpoolTest, InjectedReadFaultFailsReplayNotWrite) {
  InjectorGuard guard;
  ExchangeSpool spool(&fs_, Dir("read-fault"), 1, &metrics_, nullptr,
                      /*budget_bytes=*/1 << 20);
  ASSERT_TRUE(spool.Append(0, BigintPage({7, 8, 9})).ok());
  EXPECT_FALSE(spool.broken(0));
  FaultInjector::Global().ArmScripted("exchange.spool.read", {1});
  auto reader = spool.OpenReader(0);
  ASSERT_FALSE(reader.ok()) << "injected read fault did not surface";
  EXPECT_TRUE(IsRetryableStatus(reader.status())) << reader.status().ToString();
}

// ---------------------------------------------------------------------------
// PartitionedExchange spool tee + replay + attempt fencing (no cluster)
// ---------------------------------------------------------------------------

TEST_F(ExchangeSpoolTest, ExchangeTeesAndReplaysFullPartitionHistory) {
  PartitionedExchange exchange(/*num_partitions=*/1,
                               /*capacity_bytes=*/64 << 20);
  exchange.SetProducerCount(1);
  exchange.SetSpool(std::make_shared<ExchangeSpool>(
      &fs_, Dir("exchange-replay"), 1, &metrics_, nullptr, 64 << 20));

  exchange.Push(0, BigintPage({1, 2}));
  exchange.Push(0, BigintPage({3}));
  // The original consumer drains part of the stream, then dies: its partition
  // flips to replay mode for the replacement attempt.
  auto consumed = exchange.Next(0);
  ASSERT_TRUE(consumed.ok());
  ASSERT_TRUE(consumed->has_value());
  ASSERT_TRUE(exchange.ResetPartitionForReplay(0).ok());

  // Pushes after the reset are spooled but bypass the queue; they still count
  // toward the push totals.
  exchange.Push(0, BigintPage({4, 5, 6}));
  exchange.ProducerDone();
  EXPECT_EQ(exchange.pages_pushed(), 3);

  // The replacement consumer streams the complete history from the spool —
  // including the page the dead consumer had already popped.
  std::vector<int64_t> replayed;
  while (true) {
    auto page = exchange.Next(0);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    if (!page->has_value()) break;
    for (int64_t v : PageValues(**page)) replayed.push_back(v);
  }
  EXPECT_EQ(replayed, (std::vector<int64_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(exchange.buffered_bytes(), 0);
}

TEST_F(ExchangeSpoolTest, ReplayUnavailableWithoutSpoolOrWithBrokenSpool) {
  PartitionedExchange bare(1, 1 << 20);
  bare.SetProducerCount(1);
  Status st = bare.ResetPartitionForReplay(0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);

  InjectorGuard guard;
  PartitionedExchange spooled(1, 1 << 20);
  spooled.SetProducerCount(1);
  spooled.SetSpool(std::make_shared<ExchangeSpool>(
      &fs_, Dir("broken-replay"), 1, &metrics_, nullptr, 1 << 20));
  FaultInjector::Global().ArmScripted("exchange.spool.write", {1});
  spooled.Push(0, BigintPage({1}));  // tee fails, partition marked broken
  ASSERT_TRUE(spooled.spool()->broken(0));
  Status broken = spooled.ResetPartitionForReplay(0);
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.code(), StatusCode::kUnavailable);
  // The exchange itself keeps flowing: spooling is insurance, not the path.
  auto page = spooled.Next(0);
  ASSERT_TRUE(page.ok());
  ASSERT_TRUE(page->has_value());
}

TEST(ExchangeFenceTest, FirstAttemptToCommitASlotWins) {
  PartitionedExchange exchange(2, 1 << 20);
  exchange.SetProducerCount(2);
  // Original attempt 0 and speculative attempt 100 race; exactly one commits.
  EXPECT_TRUE(exchange.TryCommitProducer(/*slot=*/0, /*attempt=*/0));
  EXPECT_FALSE(exchange.TryCommitProducer(0, 100));
  EXPECT_FALSE(exchange.TryCommitProducer(0, 1));
  // Slots fence independently; a speculative winner blocks the original.
  EXPECT_TRUE(exchange.TryCommitProducer(1, 100));
  EXPECT_FALSE(exchange.TryCommitProducer(1, 0));
}

// ---------------------------------------------------------------------------
// Cluster-level recovery ladder
// ---------------------------------------------------------------------------

// Shared fixture: 3 workers, fact/dim tables for multi-stage join/group-by
// plans whose intermediate stages give the spool something to recover.
class RecoveryClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    cluster_ = std::make_unique<PrestoCluster>("recovery", 3, 2);
    auto memory = std::make_shared<MemoryConnector>();
    TypePtr facts = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
    TypePtr dim = Type::Row({"key", "w"}, {Type::Bigint(), Type::Bigint()});
    ASSERT_TRUE(memory->CreateTable("raw", "facts", facts).ok());
    ASSERT_TRUE(memory->CreateTable("raw", "dim", dim).ok());
    Random rng(4711);
    for (int p = 0; p < 6; ++p) {
      size_t n = 400;
      std::vector<int64_t> k(n), v(n);
      for (size_t i = 0; i < n; ++i) {
        k[i] = static_cast<int64_t>(rng.NextBelow(40));
        v[i] = static_cast<int64_t>(rng.NextBelow(1000));
      }
      ASSERT_TRUE(memory
                      ->AppendPage("raw", "facts",
                                   Page({MakeBigintVector(std::move(k)),
                                         MakeBigintVector(std::move(v))}))
                      .ok());
    }
    std::vector<int64_t> key(40), w(40);
    for (size_t i = 0; i < key.size(); ++i) {
      key[i] = static_cast<int64_t>(i);
      w[i] = static_cast<int64_t>(i % 7);
    }
    ASSERT_TRUE(memory
                    ->AppendPage("raw", "dim",
                                 Page({MakeBigintVector(std::move(key)),
                                       MakeBigintVector(std::move(w))}))
                    .ok());
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
  }

  void TearDown() override { FaultInjector::Global().Reset(); }

  Result<QueryResult> Run(const std::string& sql,
                          std::map<std::string, std::string> props) {
    Session session;
    session.properties = std::move(props);
    return cluster_->Execute(sql, session);
  }

  static std::string JoinSql() {
    return "SELECT d.w, count(*), sum(f.v) FROM mem.raw.facts f "
           "JOIN mem.raw.dim d ON f.k = d.key GROUP BY d.w";
  }

  std::unique_ptr<PrestoCluster> cluster_;
};

// The tentpole: a lost intermediate task is re-run against the surviving
// upstream spools — exact results, no restart-once consumed, journaled as
// stage_rerun.
TEST_F(RecoveryClusterTest, LostStageTaskRerunsFromSpoolWithoutRestart) {
  InjectorGuard guard;
  auto reference = Run(JoinSql(), {});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  FaultInjector::Global().ArmScripted("worker.task.stage", {1});
  auto result = Run(JoinSql(), {{"exchange_spool", "true"},
                                {"query_max_task_retries", "1"},
                                {"task_retry_backoff_millis", "1"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedRows(*result), SortedRows(*reference));

  const Coordinator& coordinator = cluster_->coordinator();
  EXPECT_TRUE(JournalHasEvent(coordinator, QueryEventKind::kStageRerun));
  EXPECT_FALSE(JournalHasEvent(coordinator, QueryEventKind::kRestarted))
      << "stage re-run should not have consumed the restart-once budget";
  EXPECT_GE(coordinator.metrics().Get("stage.rerun.count"), 1);
  EXPECT_EQ(coordinator.metrics().Get("query.restarted"), 0);
  EXPECT_GE(result->exec_metrics["stage.rerun.count"], 1);
  EXPECT_GT(result->exec_metrics["exchange.spool.page.written"], 0);
  EXPECT_GT(result->exec_metrics["exchange.spool.page.replayed"], 0);
}

// Corrupted spool read mid-replay: the re-run attempt fails retryably and the
// ladder falls through to restart-once — still exact results, never wrong.
TEST_F(RecoveryClusterTest, CorruptSpoolReplayFallsBackToRestartOnce) {
  InjectorGuard guard;
  auto reference = Run(JoinSql(), {});
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  FaultInjector::Global().ArmScripted("worker.task.stage", {1});
  FaultInjector::Global().ArmScripted("exchange.spool.read", {1},
                                      StatusCode::kIoError);
  auto result = Run(JoinSql(), {{"exchange_spool", "true"},
                                {"query_max_task_retries", "1"},
                                {"task_retry_backoff_millis", "1"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedRows(*result), SortedRows(*reference));

  const Coordinator& coordinator = cluster_->coordinator();
  EXPECT_TRUE(JournalHasEvent(coordinator, QueryEventKind::kStageRerun));
  EXPECT_TRUE(JournalHasEvent(coordinator, QueryEventKind::kRestarted))
      << "corrupt replay must fall back to restart-once";
  EXPECT_EQ(coordinator.metrics().Get("query.restarted"), 1);
  EXPECT_GE(FaultInjector::Global().InjectedCount("exchange.spool.read"), 1)
      << "the replay never actually touched the corrupted spool";
}

// Without a spool the same stage loss still recovers — one rung lower, by
// restarting the query (the pre-spool behavior, unchanged).
TEST_F(RecoveryClusterTest, StageLossWithoutSpoolStillRestartsOnce) {
  InjectorGuard guard;
  auto reference = Run(JoinSql(), {});
  ASSERT_TRUE(reference.ok());

  FaultInjector::Global().ArmScripted("worker.task.stage", {1});
  auto result = Run(JoinSql(), {{"query_max_task_retries", "1"},
                                {"task_retry_backoff_millis", "1"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedRows(*result), SortedRows(*reference));
  EXPECT_FALSE(
      JournalHasEvent(cluster_->coordinator(), QueryEventKind::kStageRerun));
  EXPECT_TRUE(
      JournalHasEvent(cluster_->coordinator(), QueryEventKind::kRestarted));
}

// Acceptance: with the spool armed, killing a worker mid-query yields exact
// results without consuming restart-once — leaf losses retry, stage losses
// re-run from spools.
TEST_F(RecoveryClusterTest, WorkerKillWithSpoolRecoversWithoutRestart) {
  InjectorGuard guard;
  auto reference = Run(JoinSql(), {});
  ASSERT_TRUE(reference.ok());

  FaultInjector::Global().ArmScripted("worker.kill", {3});
  auto result = Run(JoinSql(), {{"exchange_spool", "true"},
                                {"query_max_task_retries", "2"},
                                {"task_retry_backoff_millis", "1"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedRows(*result), SortedRows(*reference));
  EXPECT_EQ(cluster_->coordinator().metrics().Get("query.restarted"), 0)
      << "worker death with spools armed should never need a restart";

  // The fleet keeps serving after losing the worker.
  auto again = Run(JoinSql(), {});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(SortedRows(*again), SortedRows(*reference));
}

// Straggler speculation: a deterministically-stalled first attempt gets a
// duplicate; exactly one attempt commits through the fence (exact rows, and
// the speculative outcome counters reconcile with launches).
TEST_F(RecoveryClusterTest, StragglerSpeculationIsExactlyOnce) {
  InjectorGuard guard;
  const std::string sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.facts GROUP BY k";
  auto reference = Run(sql, {});
  ASSERT_TRUE(reference.ok());

  // Single-stage keeps every task a leaf, so the scripted stall can only
  // land on a speculatable task.
  FaultInjector::Global().ArmScripted("worker.task.straggle", {1});
  auto result = Run(sql, {{"multi_stage_execution", "false"},
                          {"speculative_execution", "true"},
                          {"speculation_quantile", "0.5"}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SortedRows(*result), SortedRows(*reference))
      << "speculation duplicated or dropped rows";

  const int64_t launched = result->exec_metrics["task.speculative.launched"];
  EXPECT_GE(launched, 1) << "the stalled task was never speculated";
  // Every duplicate attempt resolves to exactly one outcome.
  EXPECT_EQ(launched, result->exec_metrics["task.speculative.won"] +
                          result->exec_metrics["task.speculative.wasted"] +
                          result->exec_metrics["task.speculative.failed"]);
  EXPECT_TRUE(
      JournalHasEvent(cluster_->coordinator(), QueryEventKind::kTaskSpeculated));

  // Row reconciliation via EXPLAIN ANALYZE-style stats: the winning attempt's
  // output matches the fault-free reference exactly (checked above), and a
  // re-run without faults agrees.
  auto clean = Run(sql, {{"speculative_execution", "true"}});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(SortedRows(*clean), SortedRows(*reference));
}

// Graceful shrink under load: DrainWorker() stops new placements, lets
// in-flight queries finish, and journals the drain — no query sees an error.
TEST_F(RecoveryClusterTest, DrainWorkerUnderLoadCompletesAllQueries) {
  InjectorGuard guard;
  const std::string sql = JoinSql();
  auto reference = Run(sql, {});
  ASSERT_TRUE(reference.ok());
  const auto expected = SortedRows(*reference);

  std::string victim = cluster_->coordinator().ActiveWorkers().front()->id();
  std::atomic<int> failures{0};
  std::vector<std::thread> load;
  for (int t = 0; t < 3; ++t) {
    load.emplace_back([&] {
      for (int q = 0; q < 3; ++q) {
        auto result = Run(sql, {});
        if (!result.ok() || SortedRows(*result) != expected) {
          ++failures;
          ADD_FAILURE() << "query failed during drain: "
                        << (result.ok() ? "wrong rows"
                                        : result.status().ToString());
        }
      }
    });
  }
  Status drained = cluster_->coordinator().DrainWorker(victim);
  for (auto& t : load) t.join();
  ASSERT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_EQ(failures.load(), 0);

  const Coordinator& coordinator = cluster_->coordinator();
  EXPECT_EQ(coordinator.metrics().Get("worker.drained"), 1);
  EXPECT_TRUE(JournalHasEvent(coordinator, QueryEventKind::kWorkerDrained));
  EXPECT_EQ(coordinator.ActiveWorkers().size(), 2u);
  for (const auto& worker : coordinator.ActiveWorkers()) {
    EXPECT_NE(worker->id(), victim);
  }
  // Draining the same worker again is a classified no-op, not a hang.
  EXPECT_FALSE(cluster_->coordinator().DrainWorker(victim).ok());
  EXPECT_FALSE(cluster_->coordinator().DrainWorker("no-such-worker").ok());

  // The shrunken fleet still answers exactly.
  auto after = Run(sql, {});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(SortedRows(*after), expected);
}

// Blacklist probation: a dead-listed worker that comes back is re-admitted
// only after sustained heartbeat recovery, journaled as worker_reinstated.
TEST_F(RecoveryClusterTest, BlacklistedWorkerReinstatedAfterProbation) {
  InjectorGuard guard;
  const std::string sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.facts GROUP BY k";
  Coordinator& coordinator = cluster_->coordinator();

  // Crash a worker mid-task (scripted kill) so the retry's liveness sweep
  // blacklists it. The pre-chaos fleet snapshot keeps a handle on the victim
  // — once blacklisted it no longer appears in ActiveWorkers().
  auto fleet = coordinator.ActiveWorkers();
  ASSERT_EQ(fleet.size(), 3u);
  FaultInjector::Global().ArmScripted("worker.kill", {2});
  auto result = Run(sql, {{"multi_stage_execution", "false"},
                          {"query_max_task_retries", "2"},
                          {"task_retry_backoff_millis", "1"}});
  FaultInjector::Global().Reset();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(coordinator.BlacklistedWorkers().size(), 1u);
  std::shared_ptr<Worker> victim;
  for (const auto& worker : fleet) {
    if (worker->id() == coordinator.BlacklistedWorkers().front()) {
      victim = worker;
    }
  }
  ASSERT_NE(victim, nullptr);
  ASSERT_EQ(victim->state(), WorkerState::kDead);

  // Probing while the worker is still dead never re-admits it.
  EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 0);
  EXPECT_EQ(coordinator.BlacklistedWorkers().size(), 1u);

  // The process restarts on the same host — but one good heartbeat is not
  // enough: re-admission takes kProbationProbes consecutive successes.
  ASSERT_TRUE(victim->Revive().ok());
  for (int probe = 1; probe < Coordinator::kProbationProbes; ++probe) {
    EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 0)
        << "reinstated after only " << probe << " probes";
    EXPECT_EQ(coordinator.BlacklistedWorkers().size(), 1u);
    // Still quarantined: scheduling keeps ignoring it.
    for (const auto& worker : coordinator.ActiveWorkers()) {
      EXPECT_NE(worker->id(), victim->id());
    }
  }
  EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 1);
  EXPECT_TRUE(coordinator.BlacklistedWorkers().empty());
  EXPECT_GE(coordinator.metrics().Get("worker.reinstated"), 1);
  EXPECT_TRUE(JournalHasEvent(coordinator, QueryEventKind::kWorkerReinstated));
  bool scheduled_again = false;
  for (const auto& worker : coordinator.ActiveWorkers()) {
    scheduled_again = scheduled_again || worker->id() == victim->id();
  }
  EXPECT_TRUE(scheduled_again) << "reinstated worker still not schedulable";

  // A flapping host restarts probation: one failed probe resets the streak.
  FaultInjector::Global().ArmScripted("worker.kill", {2});
  auto flaky = Run(sql, {{"multi_stage_execution", "false"},
                         {"query_max_task_retries", "2"},
                         {"task_retry_backoff_millis", "1"}});
  FaultInjector::Global().Reset();
  ASSERT_TRUE(flaky.ok()) << flaky.status().ToString();
  ASSERT_EQ(coordinator.BlacklistedWorkers().size(), 1u);
  std::shared_ptr<Worker> flapper;
  for (const auto& worker : fleet) {
    if (worker->id() == coordinator.BlacklistedWorkers().front()) {
      flapper = worker;
    }
  }
  ASSERT_NE(flapper, nullptr);
  ASSERT_TRUE(flapper->Revive().ok());
  EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 0);
  EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 0);
  flapper->Kill();  // flap
  EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 0);  // streak resets
  ASSERT_TRUE(flapper->Revive().ok());
  EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 0);
  EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 0);
  EXPECT_EQ(coordinator.ProbeBlacklistedWorkers(), 1);
  EXPECT_TRUE(coordinator.BlacklistedWorkers().empty());
}

// Worker::Drain() directly: refuses double-drain, completes in-flight tasks,
// and Revive() only resurrects the dead.
TEST(WorkerDrainTest, DrainWaitsForInFlightTasksAndRefusesNewOnes) {
  Worker worker("drain-test", 2);
  std::atomic<bool> release{false};
  std::atomic<int> completed{0};
  ASSERT_TRUE(worker.SubmitTask([&] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    ++completed;
  }));
  std::thread drainer([&] { ASSERT_TRUE(worker.Drain().ok()); });
  // The drain is blocked on the running task; new work is already refused.
  while (worker.state() == WorkerState::kActive) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(worker.SubmitTask([] {}));
  EXPECT_FALSE(worker.SubmitDedicatedTask([] {}));
  EXPECT_EQ(completed.load(), 0) << "drain returned before the task finished";
  release.store(true);
  drainer.join();
  EXPECT_EQ(worker.state(), WorkerState::kShutDown);
  EXPECT_EQ(completed.load(), 1);
  EXPECT_EQ(worker.active_tasks(), 0);
  // Double drain and reviving a non-dead worker are classified errors.
  EXPECT_FALSE(worker.Drain().ok());
  EXPECT_FALSE(worker.Revive().ok());
}

}  // namespace
}  // namespace presto
