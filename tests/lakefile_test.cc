// Tests for the lakefile columnar format: shredding/assembly (rep/def
// levels), native+legacy writers, native+legacy readers, predicate and
// dictionary pushdown, lazy reads, stats, and compression.

#include <gtest/gtest.h>

#include "presto/common/random.h"
#include "presto/fs/memory_file_system.h"
#include "presto/lakefile/reader.h"
#include "presto/lakefile/writer.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace lakefile {
namespace {

std::shared_ptr<RandomAccessFile> AsFile(const std::vector<uint8_t>& bytes) {
  static MemoryFileSystem& fs = *new MemoryFileSystem();
  static int counter = 0;
  std::string path = "test/file" + std::to_string(counter++);
  EXPECT_TRUE(fs.WriteFile(path, bytes).ok());
  auto file = fs.OpenForRead(path);
  EXPECT_TRUE(file.ok());
  return *file;
}

void ExpectPagesEqual(const Page& a, const Page& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_TRUE(a.column(c)->GetValue(r).Equals(b.column(c)->GetValue(r)))
          << "row " << r << " col " << c << ": "
          << a.column(c)->GetValue(r).ToString() << " vs "
          << b.column(c)->GetValue(r).ToString();
    }
  }
}

// Reads everything through the native reader with given options.
Page ReadAll(const std::vector<uint8_t>& bytes, const ScanSpec& spec,
             ReaderOptions options = ReaderOptions()) {
  auto reader = NativeLakeFileReader::Open(AsFile(bytes), options);
  EXPECT_TRUE(reader.ok()) << reader.status().ToString();
  std::vector<Page> pages;
  while (true) {
    auto batch = (*reader)->NextBatch(spec);
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch->has_value()) break;
    pages.push_back(std::move(**batch));
  }
  // Concatenate via builders (test-only convenience).
  if (pages.empty()) return Page();
  std::vector<VectorBuilder> builders;
  for (size_t c = 0; c < pages[0].num_columns(); ++c) {
    builders.emplace_back(pages[0].column(c)->type());
  }
  size_t rows = 0;
  for (const Page& p : pages) {
    rows += p.num_rows();
    for (size_t c = 0; c < p.num_columns(); ++c) {
      for (size_t r = 0; r < p.num_rows(); ++r) {
        EXPECT_TRUE(builders[c].Append(p.column(c)->GetValue(r)).ok());
      }
    }
  }
  std::vector<VectorPtr> columns;
  for (auto& b : builders) columns.push_back(b.Build());
  return Page(std::move(columns), rows);
}

TEST(ShredTest, LeafEnumeration) {
  TypePtr schema = Type::Row(
      {"id", "base", "tags", "metrics"},
      {Type::Bigint(),
       Type::Row({"driver_uuid", "city"},
                 {Type::Varchar(), Type::Row({"city_id"}, {Type::Bigint()})}),
       Type::Array(Type::Varchar()),
       Type::Map(Type::Varchar(), Type::Double())});
  auto leaves = EnumerateLeaves(*schema);
  ASSERT_TRUE(leaves.ok());
  ASSERT_EQ(leaves->size(), 6u);
  EXPECT_EQ((*leaves)[0].path, "id");
  EXPECT_EQ((*leaves)[0].max_def, 1);
  EXPECT_EQ((*leaves)[1].path, "base.driver_uuid");
  EXPECT_EQ((*leaves)[1].max_def, 2);
  EXPECT_EQ((*leaves)[2].path, "base.city.city_id");
  EXPECT_EQ((*leaves)[2].max_def, 3);
  EXPECT_EQ((*leaves)[3].path, "tags.element");
  EXPECT_EQ((*leaves)[3].max_def, 3);
  EXPECT_EQ((*leaves)[3].max_rep, 1);
  EXPECT_EQ((*leaves)[4].path, "metrics.key");
  EXPECT_EQ((*leaves)[5].path, "metrics.value");
}

TEST(ShredTest, NestedRepetitionRejected) {
  TypePtr schema = Type::Row({"a"}, {Type::Array(Type::Array(Type::Bigint()))});
  EXPECT_EQ(EnumerateLeaves(*schema).status().code(), StatusCode::kUnimplemented);
}

Page MakeTrickyPage() {
  TypePtr base_type = Type::Row(
      {"driver_uuid", "city_id"}, {Type::Varchar(), Type::Bigint()});
  TypePtr schema_cols[] = {Type::Bigint(), base_type,
                           Type::Array(Type::Bigint()),
                           Type::Map(Type::Varchar(), Type::Double())};
  (void)schema_cols;
  VectorBuilder id(Type::Bigint());
  VectorBuilder base(base_type);
  VectorBuilder tags(Type::Array(Type::Bigint()));
  VectorBuilder metrics(Type::Map(Type::Varchar(), Type::Double()));

  // Row 0: everything present.
  id.AppendBigint(1);
  EXPECT_TRUE(base.Append(Value::Row({Value::String("d1"), Value::Int(12)})).ok());
  EXPECT_TRUE(tags.Append(Value::Array({Value::Int(7), Value::Int(8)})).ok());
  EXPECT_TRUE(metrics.Append(Value::Map({{Value::String("k"), Value::Double(1.5)}})).ok());
  // Row 1: null struct, empty array, null map.
  id.AppendNull();
  base.AppendNull();
  EXPECT_TRUE(tags.Append(Value::Array({})).ok());
  metrics.AppendNull();
  // Row 2: struct with null field, null array, empty map.
  id.AppendBigint(3);
  EXPECT_TRUE(base.Append(Value::Row({Value::Null(), Value::Int(9)})).ok());
  tags.AppendNull();
  EXPECT_TRUE(metrics.Append(Value::Map({})).ok());
  // Row 3: array with null element, map with null value.
  id.AppendBigint(4);
  EXPECT_TRUE(base.Append(Value::Row({Value::String("d4"), Value::Null()})).ok());
  EXPECT_TRUE(tags.Append(Value::Array({Value::Null(), Value::Int(5)})).ok());
  EXPECT_TRUE(metrics.Append(Value::Map({{Value::String("a"), Value::Null()},
                                         {Value::String("b"), Value::Double(2.0)}})).ok());
  return Page({id.Build(), base.Build(), tags.Build(), metrics.Build()});
}

TypePtr TrickySchema() {
  return Type::Row({"id", "base", "tags", "metrics"},
                   {Type::Bigint(),
                    Type::Row({"driver_uuid", "city_id"},
                              {Type::Varchar(), Type::Bigint()}),
                    Type::Array(Type::Bigint()),
                    Type::Map(Type::Varchar(), Type::Double())});
}

TEST(LakeFileTest, NativeRoundTripTrickyShapes) {
  Page page = MakeTrickyPage();
  auto bytes = WriteLakeFile(TrickySchema(), {page});
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  ScanSpec spec;
  spec.columns = {"id", "base", "tags", "metrics"};
  Page back = ReadAll(*bytes, spec);
  ExpectPagesEqual(page, back);
}

TEST(LakeFileTest, LegacyWriterProducesIdenticalBytes) {
  Page page = MakeTrickyPage();
  auto native = WriteLakeFile(TrickySchema(), {page}, WriterOptions(),
                              WriterMode::kNative);
  auto legacy = WriteLakeFile(TrickySchema(), {page}, WriterOptions(),
                              WriterMode::kLegacy);
  ASSERT_TRUE(native.ok());
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(*native, *legacy)
      << "both writers must produce byte-identical files";
}

TEST(LakeFileTest, LegacyReaderMatchesNativeReader) {
  Page page = MakeTrickyPage();
  auto bytes = WriteLakeFile(TrickySchema(), {page});
  ASSERT_TRUE(bytes.ok());
  auto legacy = LegacyLakeFileReader::Open(AsFile(*bytes));
  ASSERT_TRUE(legacy.ok());
  auto batch = (*legacy)->NextBatch({"id", "base", "tags", "metrics"});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch->has_value());
  ExpectPagesEqual(page, **batch);
}

TEST(LakeFileTest, DeepNestingRoundTrip) {
  // 5 levels of struct nesting, as in the paper's production schemas.
  TypePtr l5 = Type::Row({"v"}, {Type::Bigint()});
  TypePtr l4 = Type::Row({"e", "x"}, {l5, Type::Varchar()});
  TypePtr l3 = Type::Row({"d"}, {l4});
  TypePtr l2 = Type::Row({"c"}, {l3});
  TypePtr schema = Type::Row({"a"}, {Type::Row({"b"}, {l2})});

  VectorBuilder b(schema->child(0));
  EXPECT_TRUE(b.Append(Value::Row({Value::Row({Value::Row({Value::Row(
                  {Value::Row({Value::Int(42)}), Value::String("s")})})})}))
                  .ok());
  b.AppendNull();
  EXPECT_TRUE(b.Append(Value::Row({Value::Row({Value::Row({Value::Row(
                  {Value::Null(), Value::String("t")})})})}))
                  .ok());
  Page page({b.Build()});
  auto bytes = WriteLakeFile(schema, {page});
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  ScanSpec spec;
  spec.columns = {"a"};
  Page back = ReadAll(*bytes, spec);
  ExpectPagesEqual(page, back);
}

class LakeFileCompression : public ::testing::TestWithParam<CompressionKind> {};

TEST_P(LakeFileCompression, RoundTrip) {
  Page page = MakeTrickyPage();
  WriterOptions options;
  options.compression = GetParam();
  auto bytes = WriteLakeFile(TrickySchema(), {page}, options);
  ASSERT_TRUE(bytes.ok());
  ScanSpec spec;
  spec.columns = {"id", "base", "tags", "metrics"};
  Page back = ReadAll(*bytes, spec);
  ExpectPagesEqual(page, back);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LakeFileCompression,
                         ::testing::Values(CompressionKind::kNone,
                                           CompressionKind::kSnappy,
                                           CompressionKind::kGzip),
                         [](const auto& info) {
                           return CompressionKindToString(info.param);
                         });

// Builds an Uber-style trips page: nested base struct with city_id values.
Page MakeTripsPage(int64_t start, size_t n, int64_t city_mod) {
  TypePtr base_type = Type::Row({"driver_uuid", "city_id", "status"},
                                {Type::Varchar(), Type::Bigint(), Type::Varchar()});
  VectorBuilder id(Type::Bigint());
  VectorBuilder base(base_type);
  for (size_t i = 0; i < n; ++i) {
    int64_t v = start + static_cast<int64_t>(i);
    id.AppendBigint(v);
    EXPECT_TRUE(base.Append(Value::Row({Value::String("driver-" + std::to_string(v)),
                                        Value::Int(v % city_mod),
                                        Value::String(v % 2 == 0 ? "done" : "open")}))
                    .ok());
  }
  return Page({id.Build(), base.Build()});
}

TypePtr TripsSchema() {
  return Type::Row({"id", "base"},
                   {Type::Bigint(),
                    Type::Row({"driver_uuid", "city_id", "status"},
                              {Type::Varchar(), Type::Bigint(), Type::Varchar()})});
}

TEST(LakeFileTest, NestedColumnPruningShapesOutput) {
  Page page = MakeTripsPage(0, 100, 10);
  auto bytes = WriteLakeFile(TripsSchema(), {page});
  ASSERT_TRUE(bytes.ok());
  ScanSpec spec;
  spec.columns = {"base"};
  spec.required_leaves = {"base.city_id"};
  auto reader = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
  ASSERT_TRUE(reader.ok());
  auto type = (*reader)->OutputColumnType(spec, "base");
  ASSERT_TRUE(type.ok());
  EXPECT_EQ((*type)->ToString(), "ROW(city_id BIGINT)");

  auto batch = (*reader)->NextBatch(spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch->has_value());
  EXPECT_EQ((*batch)->column(0)->type()->ToString(), "ROW(city_id BIGINT)");
  EXPECT_EQ((*batch)->column(0)->GetValue(7), Value::Row({Value::Int(7)}));
  // Pruning reads only the required leaf: 1 chunk instead of 3.
  auto full_reader = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
  ASSERT_TRUE(full_reader.ok());
  ScanSpec full_spec;
  full_spec.columns = {"base"};
  ASSERT_TRUE((*full_reader)->NextBatch(full_spec).ok());
  EXPECT_LT((*reader)->stats().bytes_read, (*full_reader)->stats().bytes_read);
}

TEST(LakeFileTest, PredicatePushdownSkipsRowGroups) {
  // 10 row groups of 100 rows; id is monotonically increasing, so an
  // equality predicate matches exactly one group.
  WriterOptions options;
  options.row_group_rows = 100;
  auto writer = LakeFileWriter::Create(TripsSchema(), options);
  ASSERT_TRUE(writer.ok());
  for (int g = 0; g < 10; ++g) {
    ASSERT_TRUE((*writer)->Append(MakeTripsPage(g * 100, 100, 1000)).ok());
  }
  auto bytes = (*writer)->Finish();
  ASSERT_TRUE(bytes.ok());

  ScanSpec spec;
  spec.columns = {"id"};
  spec.predicates = {{"id", LeafPredicate::Op::kEq, {Value::Int(555)}}};
  auto reader = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
  ASSERT_TRUE(reader.ok());
  std::vector<int64_t> matched;
  while (true) {
    auto batch = (*reader)->NextBatch(spec);
    ASSERT_TRUE(batch.ok());
    if (!batch->has_value()) break;
    for (size_t r = 0; r < (*batch)->num_rows(); ++r) {
      matched.push_back((*batch)->column(0)->GetValue(r).int_value());
    }
  }
  EXPECT_EQ(matched, std::vector<int64_t>{555});
  EXPECT_EQ((*reader)->stats().row_groups_skipped_stats, 9);
  EXPECT_EQ((*reader)->stats().row_groups_scanned, 1);

  // Without pushdown all groups are scanned but results are identical.
  ReaderOptions no_push;
  no_push.predicate_pushdown = false;
  no_push.dictionary_pushdown = false;
  auto slow = NativeLakeFileReader::Open(AsFile(*bytes), no_push);
  ASSERT_TRUE(slow.ok());
  std::vector<int64_t> matched_slow;
  while (true) {
    auto batch = (*slow)->NextBatch(spec);
    ASSERT_TRUE(batch.ok());
    if (!batch->has_value()) break;
    for (size_t r = 0; r < (*batch)->num_rows(); ++r) {
      matched_slow.push_back((*batch)->column(0)->GetValue(r).int_value());
    }
  }
  EXPECT_EQ(matched_slow, matched);
  EXPECT_EQ((*slow)->stats().row_groups_scanned, 10);
}

TEST(LakeFileTest, RangePredicates) {
  WriterOptions options;
  options.row_group_rows = 50;
  auto writer = LakeFileWriter::Create(TripsSchema(), options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeTripsPage(0, 200, 1000)).ok());
  auto bytes = (*writer)->Finish();
  ASSERT_TRUE(bytes.ok());

  ScanSpec spec;
  spec.columns = {"id"};
  spec.predicates = {{"id", LeafPredicate::Op::kGe, {Value::Int(60)}},
                     {"id", LeafPredicate::Op::kLt, {Value::Int(70)}}};
  Page out = ReadAll(*bytes, spec);
  ASSERT_EQ(out.num_rows(), 10u);
  EXPECT_EQ(out.column(0)->GetValue(0), Value::Int(60));
  EXPECT_EQ(out.column(0)->GetValue(9), Value::Int(69));
}

TEST(LakeFileTest, DictionaryPushdownSkipsViaDictionary) {
  // Status column has few distinct values -> dictionary encoded. Stats
  // (min/max strings) cannot exclude "zzz-absent" lexicographically if it
  // falls in range, but the dictionary can.
  TypePtr schema = Type::Row({"status"}, {Type::Varchar()});
  VectorBuilder b(Type::Varchar());
  for (int i = 0; i < 1000; ++i) {
    b.AppendString(i % 2 == 0 ? "aaa" : "zzz");
  }
  auto bytes = WriteLakeFile(schema, {Page({b.Build()})});
  ASSERT_TRUE(bytes.ok());

  ScanSpec spec;
  spec.columns = {"status"};
  spec.predicates = {{"status", LeafPredicate::Op::kEq, {Value::String("mmm")}}};
  auto reader = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->NextBatch(spec);
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->has_value());
  EXPECT_EQ((*reader)->stats().row_groups_skipped_dictionary, 1);
  EXPECT_EQ((*reader)->stats().row_groups_scanned, 0);
}

TEST(LakeFileTest, LazyReadsDecodeOnlyMatchingRows) {
  Page page = MakeTripsPage(0, 1000, 100);  // city_id = id % 100
  auto bytes = WriteLakeFile(TripsSchema(), {page});
  ASSERT_TRUE(bytes.ok());

  ScanSpec spec;
  spec.columns = {"base"};
  spec.required_leaves = {"base.driver_uuid", "base.city_id"};
  spec.predicates = {{"base.city_id", LeafPredicate::Op::kEq, {Value::Int(12)}}};

  ReaderOptions lazy_on;
  auto lazy = NativeLakeFileReader::Open(AsFile(*bytes), lazy_on);
  ASSERT_TRUE(lazy.ok());
  auto batch = (*lazy)->NextBatch(spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch->has_value());
  EXPECT_EQ((*batch)->num_rows(), 10u);
  // Verify values: each matching row has city_id 12 and the right driver.
  for (size_t r = 0; r < 10; ++r) {
    Value row = (*batch)->column(0)->GetValue(r);
    EXPECT_EQ(row.children()[1], Value::Int(12));
    EXPECT_EQ(row.children()[0],
              Value::String("driver-" + std::to_string(12 + 100 * r)));
  }

  ReaderOptions lazy_off = lazy_on;
  lazy_off.lazy_reads = false;
  auto eager = NativeLakeFileReader::Open(AsFile(*bytes), lazy_off);
  ASSERT_TRUE(eager.ok());
  auto batch2 = (*eager)->NextBatch(spec);
  ASSERT_TRUE(batch2.ok());
  ExpectPagesEqual(**batch, **batch2);
  EXPECT_LT((*lazy)->stats().values_decoded, (*eager)->stats().values_decoded)
      << "lazy reads must decode fewer values";
}

TEST(LakeFileTest, VectorizedAndScalarDecodeAgree) {
  Page page = MakeTripsPage(0, 500, 13);
  auto bytes = WriteLakeFile(TripsSchema(), {page});
  ASSERT_TRUE(bytes.ok());
  ScanSpec spec;
  spec.columns = {"id", "base"};
  ReaderOptions vec;
  ReaderOptions scalar;
  scalar.vectorized = false;
  Page a = ReadAll(*bytes, spec, vec);
  Page b = ReadAll(*bytes, spec, scalar);
  ExpectPagesEqual(a, b);
}

TEST(LakeFileTest, FooterStats) {
  Page page = MakeTripsPage(100, 50, 7);
  auto bytes = WriteLakeFile(TripsSchema(), {page});
  ASSERT_TRUE(bytes.ok());
  auto file = AsFile(*bytes);
  auto footer = ReadFooter(file.get());
  ASSERT_TRUE(footer.ok());
  EXPECT_EQ(footer->num_rows, 50u);
  ASSERT_EQ(footer->row_groups.size(), 1u);
  const auto& columns = footer->row_groups[0].columns;
  ASSERT_EQ(columns.size(), 4u);  // id, driver_uuid, city_id, status
  EXPECT_EQ(columns[0].leaf_path, "id");
  ASSERT_TRUE(columns[0].has_stats);
  EXPECT_EQ(columns[0].min, Value::Int(100));
  EXPECT_EQ(columns[0].max, Value::Int(149));
  EXPECT_EQ(columns[2].leaf_path, "base.city_id");
  EXPECT_EQ(columns[2].min, Value::Int(0));
  EXPECT_EQ(columns[2].max, Value::Int(6));
}

TEST(LakeFileTest, MultipleRowGroupBoundaries) {
  WriterOptions options;
  options.row_group_rows = 30;
  auto writer = LakeFileWriter::Create(TripsSchema(), options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(MakeTripsPage(0, 100, 10)).ok());
  auto bytes = (*writer)->Finish();
  ASSERT_TRUE(bytes.ok());
  auto file = AsFile(*bytes);
  auto footer = ReadFooter(file.get());
  ASSERT_TRUE(footer.ok());
  EXPECT_EQ(footer->num_rows, 100u);
  ASSERT_EQ(footer->row_groups.size(), 4u);  // 30 + 30 + 30 + 10
  EXPECT_EQ(footer->row_groups[0].num_rows, 30u);
  EXPECT_EQ(footer->row_groups[3].num_rows, 10u);
  ScanSpec spec;
  spec.columns = {"id"};
  Page all = ReadAll(*bytes, spec);
  EXPECT_EQ(all.num_rows(), 100u);
  EXPECT_EQ(all.column(0)->GetValue(99), Value::Int(99));
}

TEST(LakeFileTest, CorruptFileRejected) {
  Page page = MakeTripsPage(0, 10, 3);
  auto bytes = WriteLakeFile(TripsSchema(), {page});
  ASSERT_TRUE(bytes.ok());
  // Corrupt the tail magic (what the random-access footer read validates).
  std::vector<uint8_t> bad = *bytes;
  bad[bad.size() - 1] = 'X';
  auto file = AsFile(bad);
  EXPECT_FALSE(ReadFooter(file.get()).ok());
  // A corrupt head magic is caught by the whole-file parse.
  std::vector<uint8_t> bad_head = *bytes;
  bad_head[0] = 'X';
  EXPECT_FALSE(ReadFooterFromFile(bad_head.data(), bad_head.size()).ok());
  // Truncated file.
  std::vector<uint8_t> truncated(bytes->begin(), bytes->begin() + 10);
  auto file2 = AsFile(truncated);
  EXPECT_FALSE(ReadFooter(file2.get()).ok());
}

TEST(LakeFileTest, MissingColumnRejected) {
  Page page = MakeTripsPage(0, 10, 3);
  auto bytes = WriteLakeFile(TripsSchema(), {page});
  ASSERT_TRUE(bytes.ok());
  ScanSpec spec;
  spec.columns = {"does_not_exist"};
  auto reader = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->NextBatch(spec).status().code(), StatusCode::kNotFound);
}

TEST(LakeFileTest, RandomizedRoundTripProperty) {
  // Property sweep: random pages with nulls/arrays/maps survive the
  // write->read round trip bit-exactly under both writers and readers.
  Random rng(99);
  TypePtr schema = TrickySchema();
  for (int iteration = 0; iteration < 5; ++iteration) {
    VectorBuilder id(Type::Bigint());
    VectorBuilder base(schema->child(1));
    VectorBuilder tags(schema->child(2));
    VectorBuilder metrics(schema->child(3));
    size_t n = 50 + rng.NextBelow(100);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBool(0.1)) {
        id.AppendNull();
      } else {
        id.AppendBigint(rng.NextInRange(-1000, 1000));
      }
      if (rng.NextBool(0.2)) {
        base.AppendNull();
      } else {
        Value driver = rng.NextBool(0.1) ? Value::Null()
                                         : Value::String(rng.NextString(8));
        Value city = rng.NextBool(0.1) ? Value::Null()
                                       : Value::Int(rng.NextInRange(0, 50));
        EXPECT_TRUE(base.Append(Value::Row({driver, city})).ok());
      }
      if (rng.NextBool(0.15)) {
        tags.AppendNull();
      } else {
        Value::RowData elems;
        size_t len = rng.NextBelow(4);
        for (size_t e = 0; e < len; ++e) {
          elems.push_back(rng.NextBool(0.1) ? Value::Null()
                                            : Value::Int(rng.NextInRange(0, 9)));
        }
        EXPECT_TRUE(tags.Append(Value::Array(std::move(elems))).ok());
      }
      if (rng.NextBool(0.15)) {
        metrics.AppendNull();
      } else {
        Value::MapData entries;
        size_t len = rng.NextBelow(3);
        for (size_t e = 0; e < len; ++e) {
          entries.emplace_back(Value::String(rng.NextString(3)),
                               rng.NextBool(0.2)
                                   ? Value::Null()
                                   : Value::Double(rng.NextDouble()));
        }
        EXPECT_TRUE(metrics.Append(Value::Map(std::move(entries))).ok());
      }
    }
    Page page({id.Build(), base.Build(), tags.Build(), metrics.Build()});
    auto native = WriteLakeFile(schema, {page}, WriterOptions(), WriterMode::kNative);
    auto legacy = WriteLakeFile(schema, {page}, WriterOptions(), WriterMode::kLegacy);
    ASSERT_TRUE(native.ok());
    ASSERT_TRUE(legacy.ok());
    EXPECT_EQ(*native, *legacy);
    ScanSpec spec;
    spec.columns = {"id", "base", "tags", "metrics"};
    Page back = ReadAll(*native, spec);
    ExpectPagesEqual(page, back);
    auto legacy_reader = LegacyLakeFileReader::Open(AsFile(*native));
    ASSERT_TRUE(legacy_reader.ok());
    auto legacy_batch =
        (*legacy_reader)->NextBatch({"id", "base", "tags", "metrics"});
    ASSERT_TRUE(legacy_batch.ok()) << legacy_batch.status().ToString();
    ASSERT_TRUE(legacy_batch->has_value());
    ExpectPagesEqual(page, **legacy_batch);
  }
}

// ---------------------------------------------------------------------------
// Format v2: multi-page chunks, page-level skipping, late materialization
// ---------------------------------------------------------------------------

TEST(LakeFilePagesTest, MultiPageChunksAndPageStats) {
  // 1000 rows in one row group with 100-row pages: every chunk must carry a
  // 10-entry page list whose stats tile the group exactly.
  WriterOptions options;
  options.row_group_rows = 1000;
  options.page_rows = 100;
  Page page = MakeTripsPage(0, 1000, 1000000);  // city_id == id, monotone
  auto bytes = WriteLakeFile(TripsSchema(), {page}, options);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  auto footer = ReadFooterFromFile(bytes->data(), bytes->size());
  ASSERT_TRUE(footer.ok());
  EXPECT_EQ(footer->version, kFormatVersion);
  ASSERT_EQ(footer->row_groups.size(), 1u);
  const auto& columns = footer->row_groups[0].columns;
  ASSERT_EQ(columns[0].leaf_path, "id");
  const auto& pages = columns[0].pages;
  ASSERT_EQ(pages.size(), 10u);
  uint64_t rows = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(pages[i].first_row, i * 100);
    EXPECT_EQ(pages[i].num_rows, 100u);
    EXPECT_EQ(pages[i].num_entries, 100u);
    ASSERT_TRUE(pages[i].has_stats) << "page " << i;
    EXPECT_EQ(pages[i].min, Value::Int(static_cast<int64_t>(i * 100)));
    EXPECT_EQ(pages[i].max, Value::Int(static_cast<int64_t>(i * 100 + 99)));
    EXPECT_EQ(pages[i].null_count, 0);
    rows += pages[i].num_rows;
    if (i > 0) {
      EXPECT_EQ(pages[i].offset,
                pages[i - 1].offset + pages[i - 1].total_bytes)
          << "pages must be contiguous within the chunk";
    }
  }
  EXPECT_EQ(rows, 1000u);
  // Page bytes tile the chunk's data region exactly.
  EXPECT_EQ(pages.back().offset + pages.back().total_bytes,
            columns[0].total_bytes - columns[0].dictionary_bytes +
                pages.front().offset);

  // And the file still round-trips bit-exactly.
  ScanSpec spec;
  spec.columns = {"id", "base"};
  ExpectPagesEqual(page, ReadAll(*bytes, spec));
}

TEST(LakeFilePagesTest, OldFormatSinglePageFilesStillRead) {
  // format_version=1 writes the old single-page layout; both readers must
  // keep accepting it (the page list is synthesized from the chunk meta).
  WriterOptions v1;
  v1.format_version = 1;
  v1.row_group_rows = 250;
  Page page = MakeTripsPage(0, 1000, 37);
  auto bytes = WriteLakeFile(TripsSchema(), {page}, v1);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  auto footer = ReadFooterFromFile(bytes->data(), bytes->size());
  ASSERT_TRUE(footer.ok());
  EXPECT_EQ(footer->version, 1u);
  for (const auto& group : footer->row_groups) {
    for (const auto& chunk : group.columns) {
      EXPECT_TRUE(chunk.pages.empty()) << "v1 chunks carry no page list";
    }
  }

  ScanSpec spec;
  spec.columns = {"id", "base"};
  auto reader = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
  ASSERT_TRUE(reader.ok());
  std::vector<Page> out;
  while (true) {
    auto batch = (*reader)->NextBatch(spec);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch->has_value()) break;
    out.push_back(std::move(**batch));
  }
  size_t total = 0;
  for (const Page& p : out) total += p.num_rows();
  EXPECT_EQ(total, 1000u);
  // One synthesized page per chunk: 4 groups x 4 leaves.
  EXPECT_EQ((*reader)->stats().pages_total, 16);
  EXPECT_EQ((*reader)->stats().pages_read, 16);
  ExpectPagesEqual(page, ReadAll(*bytes, spec));

  auto legacy = LegacyLakeFileReader::Open(AsFile(*bytes));
  ASSERT_TRUE(legacy.ok());
  auto first = (*legacy)->NextBatch({"id", "base"});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*first)->num_rows(), 250u);

  // A selective scan on a v1 file works too — it just cannot skip pages.
  ScanSpec selective = spec;
  selective.predicates = {{"id", LeafPredicate::Op::kEq, {Value::Int(600)}}};
  auto hit = ReadAll(*bytes, selective);
  ASSERT_EQ(hit.num_rows(), 1u);
  EXPECT_EQ(hit.column(0)->GetValue(0), Value::Int(600));
}

TEST(LakeFilePagesTest, PageLevelSkippingPrunesPages) {
  // A single 1000-row group (so group-level stats cannot skip anything) with
  // 100-row pages; the needle lives in exactly one page of the filter chunk.
  WriterOptions options;
  options.row_group_rows = 1000;
  options.page_rows = 100;
  Page page = MakeTripsPage(0, 1000, 1000000);
  auto bytes = WriteLakeFile(TripsSchema(), {page}, options);
  ASSERT_TRUE(bytes.ok());

  ScanSpec spec;
  spec.columns = {"id", "base"};
  spec.predicates = {{"id", LeafPredicate::Op::kEq, {Value::Int(555)}}};

  auto reader = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->NextBatch(spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch->has_value());
  ASSERT_EQ((*batch)->num_rows(), 1u);
  EXPECT_EQ((*batch)->column(0)->GetValue(0), Value::Int(555));
  const ReaderStats& stats = (*reader)->stats();
  EXPECT_EQ(stats.row_groups_scanned, 1);
  // 9 of the filter column's 10 pages are excluded by page stats, and the
  // projected chunks only materialize the page holding row 555.
  EXPECT_EQ(stats.pages_skipped_stats, 9);
  EXPECT_GT(stats.pages_skipped_lazy, 0);
  EXPECT_LT(stats.pages_read, stats.pages_total);
  EXPECT_GT(stats.rows_pruned_late, 0);

  // page_skipping off: identical rows, every filter page read.
  ReaderOptions no_skip;
  no_skip.page_skipping = false;
  auto slow = NativeLakeFileReader::Open(AsFile(*bytes), no_skip);
  ASSERT_TRUE(slow.ok());
  auto batch2 = (*slow)->NextBatch(spec);
  ASSERT_TRUE(batch2.ok());
  ASSERT_TRUE(batch2->has_value());
  ExpectPagesEqual(**batch, **batch2);
  EXPECT_EQ((*slow)->stats().pages_skipped_stats, 0);
  EXPECT_GT((*slow)->stats().pages_read, stats.pages_read);
}

TEST(LakeFilePagesTest, DictionaryCodePredicates) {
  // Low-cardinality status column: the predicate must be answered on
  // dictionary codes (a per-code bitmap), not materialized strings.
  TypePtr schema = Type::Row({"status", "id"}, {Type::Varchar(), Type::Bigint()});
  VectorBuilder status(Type::Varchar());
  VectorBuilder id(Type::Bigint());
  const char* kinds[] = {"done", "open", "canceled"};
  for (int i = 0; i < 900; ++i) {
    status.AppendString(kinds[i % 3]);
    id.AppendBigint(i);
  }
  Page page({status.Build(), id.Build()});
  auto bytes = WriteLakeFile(schema, {page});
  ASSERT_TRUE(bytes.ok());

  ScanSpec spec;
  spec.columns = {"status", "id"};
  spec.predicates = {{"status", LeafPredicate::Op::kEq, {Value::String("open")}}};
  auto reader = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->NextBatch(spec);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(batch->has_value());
  ASSERT_EQ((*batch)->num_rows(), 300u);
  for (size_t r = 0; r < (*batch)->num_rows(); ++r) {
    EXPECT_EQ((*batch)->column(0)->GetValue(r), Value::String("open"));
    EXPECT_EQ((*batch)->column(1)->GetValue(r).int_value(),
              static_cast<int64_t>(r) * 3 + 1);
  }
  // Every row of the filter chunk was answered on its dictionary code.
  EXPECT_EQ((*reader)->stats().dict_code_filter_hits, 900);

  // The same scan without lazy/vectorized features agrees.
  ReaderOptions plain;
  plain.lazy_reads = false;
  plain.vectorized = false;
  ExpectPagesEqual(**batch, ReadAll(*bytes, spec, plain));
}

TEST(LakeFilePagesTest, DifferentialLegacyVsLazyAcrossSelectivities) {
  // Randomized nested/null/dictionary data behind a sorted filter column.
  // The lazy native reader must agree with the legacy reader (filtered
  // row-by-row in the test) at every selectivity, and the selective cases
  // must actually skip pages.
  TypePtr schema = Type::Row(
      {"k", "base", "tags", "status"},
      {Type::Bigint(),
       Type::Row({"driver_uuid", "city_id"}, {Type::Varchar(), Type::Bigint()}),
       Type::Array(Type::Bigint()), Type::Varchar()});
  Random rng(2026);
  const size_t n = 2000;
  VectorBuilder k(Type::Bigint());
  VectorBuilder base(schema->child(1));
  VectorBuilder tags(schema->child(2));
  VectorBuilder status(Type::Varchar());
  const char* kinds[] = {"done", "open", "canceled"};
  for (size_t i = 0; i < n; ++i) {
    k.AppendBigint(static_cast<int64_t>(i));  // sorted: page stats are tight
    if (rng.NextBool(0.15)) {
      base.AppendNull();
    } else {
      Value driver = rng.NextBool(0.1) ? Value::Null()
                                       : Value::String(rng.NextString(6));
      Value city = rng.NextBool(0.1) ? Value::Null()
                                     : Value::Int(rng.NextInRange(0, 50));
      EXPECT_TRUE(base.Append(Value::Row({driver, city})).ok());
    }
    if (rng.NextBool(0.2)) {
      tags.AppendNull();
    } else {
      Value::RowData elems;
      size_t len = rng.NextBelow(4);
      for (size_t e = 0; e < len; ++e) {
        elems.push_back(rng.NextBool(0.1) ? Value::Null()
                                          : Value::Int(rng.NextInRange(0, 9)));
      }
      EXPECT_TRUE(tags.Append(Value::Array(std::move(elems))).ok());
    }
    status.AppendString(kinds[rng.NextBelow(3)]);
  }
  Page data({k.Build(), base.Build(), tags.Build(), status.Build()});

  WriterOptions options;
  options.row_group_rows = n;  // one group: only page-level skipping applies
  options.page_rows = 128;
  auto bytes = WriteLakeFile(schema, {data}, options);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();

  const std::vector<std::string> columns = {"k", "base", "tags", "status"};
  const double selectivities[] = {0.0, 0.01, 0.5, 1.0};
  for (double selectivity : selectivities) {
    int64_t threshold = static_cast<int64_t>(selectivity * n);
    ScanSpec spec;
    spec.columns = columns;
    spec.predicates = {{"k", LeafPredicate::Op::kLt, {Value::Int(threshold)}}};

    auto lazy = NativeLakeFileReader::Open(AsFile(*bytes), ReaderOptions());
    ASSERT_TRUE(lazy.ok());
    std::vector<Page> out;
    while (true) {
      auto batch = (*lazy)->NextBatch(spec);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      if (!batch->has_value()) break;
      out.push_back(std::move(**batch));
    }

    // Reference: the legacy reader materializes everything; the test applies
    // the predicate row by row (NULL never matches).
    auto legacy = LegacyLakeFileReader::Open(AsFile(*bytes));
    ASSERT_TRUE(legacy.ok());
    std::vector<Value> expected_rows;  // boxed ROW per matching row
    while (true) {
      auto batch = (*legacy)->NextBatch(columns);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      if (!batch->has_value()) break;
      for (size_t r = 0; r < (*batch)->num_rows(); ++r) {
        Value key = (*batch)->column(0)->GetValue(r);
        if (key.is_null() || key.int_value() >= threshold) continue;
        Value::RowData fields;
        for (size_t c = 0; c < (*batch)->num_columns(); ++c) {
          fields.push_back((*batch)->column(c)->GetValue(r));
        }
        expected_rows.push_back(Value::Row(std::move(fields)));
      }
    }

    size_t row = 0;
    for (const Page& p : out) {
      for (size_t r = 0; r < p.num_rows(); ++r, ++row) {
        ASSERT_LT(row, expected_rows.size()) << "selectivity " << selectivity;
        for (size_t c = 0; c < p.num_columns(); ++c) {
          EXPECT_TRUE(p.column(c)->GetValue(r).Equals(
              expected_rows[row].children()[c]))
              << "selectivity " << selectivity << " row " << row << " col " << c;
        }
      }
    }
    EXPECT_EQ(row, expected_rows.size()) << "selectivity " << selectivity;
    EXPECT_EQ(row, static_cast<size_t>(threshold));

    if (selectivity > 0.0 && selectivity < 0.5) {
      EXPECT_GT((*lazy)->stats().pages_skipped_stats, 0)
          << "selective scan must skip pages via page stats";
      EXPECT_GT((*lazy)->stats().rows_pruned_late, 0);
    }
    if (selectivity == 1.0) {
      EXPECT_EQ((*lazy)->stats().pages_skipped_stats, 0);
    }
  }
}

}  // namespace
}  // namespace lakefile
}  // namespace presto
