// Memory-management tests: the hierarchical MemoryPool subsystem and its
// degradation ladder — revocable spill (aggregation/order-by), admission
// control at the coordinator, and the low-memory killer — plus the
// byte-weighted caches and exchange memory accounting that feed the same
// pool tree. Spill correctness is differential: a query forced to spill
// must produce exactly the rows of the same query run fully in memory.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "presto/cache/lru_cache.h"
#include "presto/cluster/cluster.h"
#include "presto/common/fault_injection.h"
#include "presto/common/memory_pool.h"
#include "presto/connectors/memory/memory_connector.h"
#include "presto/exec/exchange.h"
#include "presto/exec/spill.h"
#include "presto/fs/memory_file_system.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace {

// Rows of a result, boxed and sorted for order-insensitive comparison.
std::vector<std::string> SortedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Page& page : result.pages) {
    for (size_t r = 0; r < page.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < page.num_columns(); ++c) {
        row += page.column(c)->GetValue(r).ToString();
        row += "|";
      }
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// Row strings in arrival order, for ORDER BY results.
std::vector<std::string> OrderedRows(const QueryResult& result) {
  std::vector<std::string> rows;
  for (const Page& page : result.pages) {
    for (size_t r = 0; r < page.num_rows(); ++r) {
      std::string row;
      for (size_t c = 0; c < page.num_columns(); ++c) {
        row += page.column(c)->GetValue(r).ToString();
        row += "|";
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

bool JournalHasKind(const Coordinator& coordinator, int64_t query_id,
                    QueryEventKind kind) {
  for (const QueryEvent& event : coordinator.journal().EventsForQuery(query_id)) {
    if (event.kind == kind) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// MemoryPool hierarchy
// ---------------------------------------------------------------------------

TEST(MemoryPoolTest, HierarchicalCapsAndClassification) {
  MetricsRegistry metrics;
  auto worker = MemoryPool::CreateRoot("worker", 1000, &metrics);
  auto query = worker->AddChild("query.1");
  auto user = query->AddChild("user", 400);

  EXPECT_TRUE(user->Reserve(300).ok());
  EXPECT_EQ(user->reserved_bytes(), 300);
  EXPECT_EQ(query->reserved_bytes(), 300);
  EXPECT_EQ(worker->reserved_bytes(), 300);

  // Query-cap failure: classified by failed_pool == the user pool.
  const MemoryPool* failed = nullptr;
  Status at_query = user->Reserve(200, &failed);
  EXPECT_EQ(at_query.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(failed, user.get());
  // Failed walks reserve nothing anywhere.
  EXPECT_EQ(user->reserved_bytes(), 300);
  EXPECT_EQ(worker->reserved_bytes(), 300);

  // Worker-cap failure: a sibling query hits the root level.
  auto other = worker->AddChild("query.2")->AddChild("user", 10'000);
  failed = nullptr;
  Status at_worker = other->Reserve(800, &failed);
  EXPECT_EQ(at_worker.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(failed, worker.get());

  user->Release(300);
  EXPECT_EQ(worker->reserved_bytes(), 0);
  EXPECT_EQ(worker->peak_bytes(), 300);
  // Cumulative reservation traffic counter lives on the root's registry.
  EXPECT_EQ(metrics.Get("memory.reserved.bytes"), 300);
}

TEST(MemoryPoolTest, ConcurrentReservationsNeverOverCommit) {
  const int64_t kCap = 100'000;
  auto root = MemoryPool::CreateRoot("worker", kCap);
  std::atomic<bool> over_cap{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&root, &over_cap, t] {
      uint64_t state = 1000 + static_cast<uint64_t>(t);
      auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state >> 33;
      };
      auto leaf = root->AddChild("leaf." + std::to_string(t));
      int64_t held = 0;
      for (int i = 0; i < 2000; ++i) {
        int64_t bytes = 1 + static_cast<int64_t>(next() % 512);
        if (next() % 3 != 0) {
          if (leaf->Reserve(bytes).ok()) held += bytes;
        } else if (held > 0) {
          int64_t release = std::min<int64_t>(held, bytes);
          leaf->Release(release);
          held -= release;
        }
        if (root->reserved_bytes() > kCap) over_cap.store(true);
      }
      leaf->Release(held);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(over_cap.load()) << "root exceeded its capacity";
  EXPECT_EQ(root->reserved_bytes(), 0);
  EXPECT_LE(root->peak_bytes(), kCap);
}

TEST(MemoryPoolTest, ReservationRaii) {
  auto root = MemoryPool::CreateRoot("worker", 100);
  {
    MemoryReservation reservation(root);
    EXPECT_TRUE(reservation.SetBytes(60).ok());
    EXPECT_EQ(root->reserved_bytes(), 60);
    EXPECT_TRUE(reservation.SetBytes(30).ok());  // shrink always succeeds
    EXPECT_EQ(root->reserved_bytes(), 30);
    EXPECT_FALSE(reservation.SetBytes(200).ok());
    EXPECT_EQ(reservation.bytes(), 30) << "failed grow leaves the old amount";
  }
  EXPECT_EQ(root->reserved_bytes(), 0) << "destructor releases";
}

// ---------------------------------------------------------------------------
// Spill files
// ---------------------------------------------------------------------------

TEST(SpillFileTest, RunRoundTripsTypedAndNullData) {
  MemoryFileSystem fs;
  MetricsRegistry metrics;
  SpillFile file(&fs, "spill/run0", &metrics);

  std::vector<Page> pages;
  for (int p = 0; p < 3; ++p) {
    VectorBuilder keys(Type::Bigint());
    VectorBuilder names(Type::Varchar());
    VectorBuilder vals(Type::Double());
    for (int i = 0; i < 100; ++i) {
      if (i % 9 == 0) {
        keys.AppendNull();
      } else {
        ASSERT_TRUE(keys.Append(Value::Int(p * 100 + i)).ok());
      }
      ASSERT_TRUE(names.Append(Value::String("name-" + std::to_string(i))).ok());
      if (i % 7 == 0) {
        vals.AppendNull();
      } else {
        ASSERT_TRUE(vals.Append(Value::Double(i / 8.0)).ok());
      }
    }
    pages.push_back(Page({keys.Build(), names.Build(), vals.Build()}));
  }
  ASSERT_TRUE(file.WriteRun(pages).ok());
  EXPECT_GT(file.bytes_written(), 0);
  EXPECT_EQ(metrics.Get("spill.run.written"), 1);

  auto reader = file.OpenReader();
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  size_t page_index = 0;
  while (true) {
    auto batch = (*reader)->Next();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch->has_value()) break;
    ASSERT_LT(page_index, pages.size());
    const Page& expected = pages[page_index];
    ASSERT_EQ((*batch)->num_rows(), expected.num_rows());
    for (size_t c = 0; c < expected.num_columns(); ++c) {
      for (size_t r = 0; r < expected.num_rows(); ++r) {
        EXPECT_EQ((*batch)->column(c)->GetValue(r).ToString(),
                  expected.column(c)->GetValue(r).ToString())
            << "page " << page_index << " col " << c << " row " << r;
      }
    }
    ++page_index;
  }
  EXPECT_EQ(page_index, pages.size());
  EXPECT_GT(metrics.Get("spill.byte.read"), 0);
}

// ---------------------------------------------------------------------------
// Exchange memory accounting
// ---------------------------------------------------------------------------

TEST(ExchangeMemoryTest, PoolReconcilesWithBufferedBytes) {
  auto root = MemoryPool::CreateRoot("worker");
  auto pool = root->AddChild("exchange.1");
  PartitionedExchange exchange(1, 1 << 20);
  exchange.SetMemoryPool(pool);
  exchange.SetProducerCount(1);

  for (int i = 0; i < 4; ++i) {
    std::vector<int64_t> values(100, i);
    exchange.Push(0, Page({MakeBigintVector(std::move(values))}));
    EXPECT_EQ(pool->reserved_bytes(), exchange.buffered_bytes());
  }
  EXPECT_GT(pool->reserved_bytes(), 0);
  EXPECT_EQ(pool->peak_bytes(), exchange.peak_buffered_bytes());

  auto page = exchange.Next(0);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(pool->reserved_bytes(), exchange.buffered_bytes());

  exchange.ConsumerDone(0);
  EXPECT_EQ(pool->reserved_bytes(), 0) << "closing a partition releases";
  EXPECT_EQ(exchange.buffered_bytes(), 0);
}

TEST(ExchangeMemoryTest, FailedReservationLatchesClassifiedError) {
  auto root = MemoryPool::CreateRoot("worker", 64);  // absurdly small worker
  PartitionedExchange exchange(1, 1 << 20);
  exchange.SetMemoryPool(root->AddChild("exchange.1"));
  exchange.SetProducerCount(1);

  std::vector<int64_t> values(1000, 7);
  exchange.Push(0, Page({MakeBigintVector(std::move(values))}));
  auto page = exchange.Next(0);
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(root->reserved_bytes(), 0);
}

// ---------------------------------------------------------------------------
// Byte-weighted LRU cache
// ---------------------------------------------------------------------------

TEST(LruCacheWeightTest, EvictsByWeightAndChargesPool) {
  auto root = MemoryPool::CreateRoot("cache-root");
  LruCache<int> cache(100, "cache.test");
  cache.SetMemoryPool(root->AddChild("cache.test"));

  cache.Put("a", std::make_shared<const int>(1), 40);
  cache.Put("b", std::make_shared<const int>(2), 40);
  EXPECT_EQ(root->reserved_bytes(), 80);
  ASSERT_TRUE(cache.Get("a").has_value());  // a becomes most recent
  cache.Put("c", std::make_shared<const int>(3), 40);
  EXPECT_FALSE(cache.Get("b").has_value()) << "b was least recently used";
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.metrics().Get("cache.test.evictions"), 1);
  EXPECT_EQ(cache.metrics().Get("cache.test.evicted.bytes"), 40);
  EXPECT_EQ(cache.weight_bytes(), 80);
  EXPECT_EQ(root->reserved_bytes(), 80);

  // An oversized entry evicts everything else but is itself retained.
  cache.Put("big", std::make_shared<const int>(4), 500);
  EXPECT_TRUE(cache.Get("big").has_value());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(root->reserved_bytes(), 500);

  cache.Clear();
  EXPECT_EQ(root->reserved_bytes(), 0);
}

// ---------------------------------------------------------------------------
// End-to-end: spill differential, admission control, low-memory killer
// ---------------------------------------------------------------------------

// Randomized facts table exercising dictionary encodings and NULLs in both
// keys and values — the encodings a spilled run must round-trip exactly.
void LoadRandomFacts(MemoryConnector* memory, int pages, size_t rows_per_page) {
  TypePtr facts_type =
      Type::Row({"k_int", "k_str", "v_int", "v_double", "seq"},
                {Type::Bigint(), Type::Varchar(), Type::Bigint(),
                 Type::Double(), Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("raw", "facts", facts_type).ok());
  uint64_t state = 4242;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  const std::vector<std::string> words = {"ash", "birch", "cedar", "dogwood",
                                          "elm",  "fir",   "ginkgo", ""};
  int64_t seq_base = 0;
  for (int p = 0; p < pages; ++p) {
    size_t n = rows_per_page;
    std::vector<int64_t> k_int(n), v_int(n), seq(n);
    std::vector<uint8_t> k_int_nulls(n), v_int_nulls(n), v_double_nulls(n);
    std::vector<std::string> k_str(n);
    std::vector<double> v_double(n);
    for (size_t i = 0; i < n; ++i) {
      k_int[i] = static_cast<int64_t>(next() % 401) - 13;
      k_int_nulls[i] = next() % 10 == 0;
      k_str[i] = words[next() % words.size()];
      v_int[i] = static_cast<int64_t>(next() % 1000) - 500;
      v_int_nulls[i] = next() % 7 == 0;
      v_double[i] = (static_cast<int64_t>(next() % 2000) - 1000) / 8.0;
      v_double_nulls[i] = next() % 9 == 0;
      seq[i] = seq_base++;
    }
    std::vector<VectorPtr> columns = {
        std::make_shared<Int64Vector>(Type::Bigint(), k_int, k_int_nulls),
        std::make_shared<StringVector>(Type::Varchar(), k_str,
                                       std::vector<uint8_t>{}),
        std::make_shared<Int64Vector>(Type::Bigint(), v_int, v_int_nulls),
        std::make_shared<DoubleVector>(Type::Double(), v_double,
                                       v_double_nulls),
        MakeBigintVector(std::move(seq))};
    if (p % 2 == 1) {
      // Dictionary-encode the key columns with dictionary-level nulls.
      for (size_t c = 0; c < 2; ++c) {
        std::vector<int32_t> indices(n);
        std::vector<uint8_t> top_nulls(n);
        for (size_t i = 0; i < n; ++i) {
          indices[i] = static_cast<int32_t>(next() % n);
          top_nulls[i] = next() % 13 == 0;
        }
        columns[c] = std::make_shared<DictionaryVector>(
            columns[c], std::move(indices), std::move(top_nulls));
      }
    }
    ASSERT_TRUE(
        memory->AppendPage("raw", "facts", Page(std::move(columns), n)).ok());
  }
}

class SpillDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cluster_ = new PrestoCluster("spill-diff", 2, 2);
    auto memory = std::make_shared<MemoryConnector>();
    LoadRandomFacts(memory.get(), 20, 400);
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
  }

  // Runs `sql` comfortably in memory and again under a cap tiny enough to
  // force spilling; both row sets must match exactly and the constrained run
  // must actually have spilled.
  static void ExpectSpillMatchesInMemory(const std::string& sql, bool ordered,
                                         bool force_boxed = false,
                                         bool require_spill = true) {
    Session roomy;
    if (force_boxed) roomy.properties["vectorized_kernels"] = "false";
    auto reference = cluster_->Execute(sql, roomy);
    ASSERT_TRUE(reference.ok()) << sql << "\n" << reference.status().ToString();

    Session tight = roomy;
    tight.properties["query_max_memory"] = "65536";
    tight.properties["spill_path"] = "/tmp/presto_spill_test";
    auto spilled = cluster_->Execute(sql, tight);
    ASSERT_TRUE(spilled.ok()) << sql << "\n" << spilled.status().ToString();

    if (ordered) {
      EXPECT_EQ(OrderedRows(*spilled), OrderedRows(*reference)) << sql;
    } else {
      EXPECT_EQ(SortedRows(*spilled), SortedRows(*reference)) << sql;
    }
    EXPECT_GT(spilled->exec_metrics.at("memory.query.peak_bytes"), 0);
    if (!require_spill) return;
    auto runs = spilled->exec_metrics.find("spill.run.written");
    ASSERT_NE(runs, spilled->exec_metrics.end())
        << sql << " never spilled under a 64 KiB cap";
    EXPECT_GT(runs->second, 0) << sql;
    EXPECT_TRUE(JournalHasKind(cluster_->coordinator(), spilled->query_id,
                               QueryEventKind::kOperatorSpilled))
        << sql;
  }

  static PrestoCluster* cluster_;
};

PrestoCluster* SpillDifferentialTest::cluster_ = nullptr;

TEST_F(SpillDifferentialTest, GroupByKernelPath) {
  ExpectSpillMatchesInMemory(
      "SELECT k_int, count(*), sum(v_int), min(v_double), max(v_double) "
      "FROM mem.raw.facts GROUP BY k_int",
      /*ordered=*/false);
}

TEST_F(SpillDifferentialTest, GroupByBoxedPathWithStringKeys) {
  ExpectSpillMatchesInMemory(
      "SELECT k_int, k_str, count(*), sum(v_int) FROM mem.raw.facts "
      "GROUP BY k_int, k_str",
      /*ordered=*/false, /*force_boxed=*/true);
}

TEST_F(SpillDifferentialTest, OrderByUniqueKeys) {
  // seq is unique, so the spilled merge order is fully determined and must
  // equal the in-memory sort row for row.
  ExpectSpillMatchesInMemory(
      "SELECT seq, k_int, v_int FROM mem.raw.facts ORDER BY seq DESC",
      /*ordered=*/true);
}

TEST_F(SpillDifferentialTest, OrderByWithLimit) {
  // ORDER BY + LIMIT keeps only the top rows in memory, so a 64 KiB cap is
  // routinely satisfied without revoking — the differential check still must
  // hold, spilling is optional.
  ExpectSpillMatchesInMemory(
      "SELECT seq, v_double FROM mem.raw.facts ORDER BY seq LIMIT 137",
      /*ordered=*/true, /*force_boxed=*/false, /*require_spill=*/false);
}

TEST_F(SpillDifferentialTest, SpillDisabledFailsClassified) {
  Session session;
  session.properties["query_max_memory"] = "65536";
  session.properties["spill_enabled"] = "false";
  auto result = cluster_->Execute(
      "SELECT k_int, k_str, count(*), sum(v_int) FROM mem.raw.facts "
      "GROUP BY k_int, k_str",
      session);
  ASSERT_FALSE(result.ok()) << "64 KiB cap without spill must fail";
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
}

TEST_F(SpillDifferentialTest, ExplainAnalyzeShowsSpillStats) {
  Session session;
  session.properties["query_max_memory"] = "65536";
  auto result = cluster_->Execute(
      "EXPLAIN ANALYZE SELECT k_int, count(*), sum(v_int) FROM mem.raw.facts "
      "GROUP BY k_int",
      session);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->total_rows, 1);
  std::string text = result->Row(0)[0].ToString();
  EXPECT_NE(text.find("spilled:"), std::string::npos)
      << "EXPLAIN ANALYZE lost per-operator spill stats:\n"
      << text;
}

// Chaos: spill-area I/O faults must surface as classified errors (or be
// recovered by query restart), never crash, hang, or corrupt results.
TEST_F(SpillDifferentialTest, SpillWriteFaultSurfacesClean) {
  // The wide two-key group-by: a single task's hash table alone exceeds the
  // 64 KiB cap, so every run spills regardless of how task reservations
  // interleave (a narrower query can dodge the cap under unlucky
  // scheduling, and then the armed fault never fires).
  const std::string sql =
      "SELECT k_int, k_str, count(*), sum(v_int) FROM mem.raw.facts "
      "GROUP BY k_int, k_str";
  Session tight;
  tight.properties["query_max_memory"] = "65536";
  auto reference = cluster_->Execute(sql, tight);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->exec_metrics["spill.run.written"], 0)
      << "reference run under the tight cap must itself spill";
  const auto expected = SortedRows(*reference);

  FaultInjector::Global().ArmScripted("spill.write", {1},
                                      StatusCode::kIoError);
  auto faulted = cluster_->Execute(sql, tight);
  FaultInjector::Global().Reset();
  ASSERT_FALSE(faulted.ok()) << "first spill write was scripted to fail";
  EXPECT_TRUE(IsRetryableStatus(faulted.status()) ||
              faulted.status().code() == StatusCode::kResourceExhausted)
      << faulted.status().ToString();

  // Probabilistic chaos over both spill points: identical rows or a
  // classified failure, across several seeds.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    FaultInjector::Global().Seed(seed);
    FaultInjector::Global().ArmProbabilistic("spill.write", 0.05,
                                             StatusCode::kIoError);
    FaultInjector::Global().ArmProbabilistic("spill.read", 0.05,
                                             StatusCode::kIoError);
    auto chaotic = cluster_->Execute(sql, tight);
    if (chaotic.ok()) {
      EXPECT_EQ(SortedRows(*chaotic), expected) << "seed " << seed;
    } else {
      EXPECT_TRUE(IsRetryableStatus(chaotic.status()) ||
                  chaotic.status().code() == StatusCode::kResourceExhausted)
          << "seed " << seed << ": " << chaotic.status().ToString();
    }
  }
  FaultInjector::Global().Reset();

  // The spill area is healthy again afterwards.
  auto recovered = cluster_->Execute(sql, tight);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SortedRows(*recovered), expected);
}

// Acceptance-scale spill: a group-by over ten million rows whose hash tables
// cannot fit the query cap completes by spilling and matches the uncapped
// run exactly. PRESTO_SPILL_SCALE_ROWS shrinks the table for sanitizer runs.
TEST(SpillLargeScaleTest, TenMillionRowGroupBySpillsAndMatches) {
  PrestoCluster cluster("spill-10m", 2, 2);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr facts_type = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("raw", "big", facts_type).ok());
  uint64_t state = 7;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  int64_t kRows = 10'000'000;
  if (const char* env = std::getenv("PRESTO_SPILL_SCALE_ROWS")) {
    int64_t parsed = std::strtoll(env, nullptr, 10);
    if (parsed > 0) kRows = parsed;
  }
  constexpr size_t kPageRows = 250'000;
  for (int64_t done = 0; done < kRows; done += kPageRows) {
    std::vector<int64_t> k(kPageRows), v(kPageRows);
    for (size_t i = 0; i < kPageRows; ++i) {
      k[i] = static_cast<int64_t>(next() % 200'000);
      v[i] = static_cast<int64_t>(next() % 1000);
    }
    ASSERT_TRUE(memory
                    ->AppendPage("raw", "big",
                                 Page({MakeBigintVector(std::move(k)),
                                       MakeBigintVector(std::move(v))}))
                    .ok());
  }
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("mem", memory).ok());

  const std::string sql =
      "SELECT k, count(*), sum(v) FROM mem.raw.big GROUP BY k";
  auto reference = cluster.Execute(sql, Session());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Session tight;
  tight.properties["query_max_memory"] = "4194304";  // 4 MiB across all tasks
  auto spilled = cluster.Execute(sql, tight);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ(spilled->total_rows, reference->total_rows);
  EXPECT_EQ(SortedRows(*spilled), SortedRows(*reference));
  EXPECT_GT(spilled->exec_metrics.at("spill.run.written"), 0);
  EXPECT_GT(spilled->exec_metrics.at("spill.byte.written"), 0);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoordinatorOptions options;
    options.worker_memory_bytes = 16 << 20;
    options.admission_high_water = 0.5;  // queue above 8 MiB reserved
    cluster_ = std::make_unique<PrestoCluster>("admission", 1, 2, options);
    auto memory = std::make_shared<MemoryConnector>();
    ASSERT_TRUE(
        memory->CreateTable("raw", "t", Type::Row({"x"}, {Type::Bigint()}))
            .ok());
    ASSERT_TRUE(
        memory->AppendPage("raw", "t", Page({MakeBigintVector({1, 2, 3})}))
            .ok());
    ASSERT_TRUE(cluster_->catalogs().RegisterCatalog("mem", memory).ok());
  }

  std::unique_ptr<PrestoCluster> cluster_;
};

TEST_F(AdmissionTest, QueriesQueueUntilMemoryDrains) {
  Coordinator& coordinator = cluster_->coordinator();
  // Simulate other queries holding worker memory above the high-water mark.
  ASSERT_TRUE(coordinator.worker_pool()->Reserve(10 << 20).ok());

  std::atomic<bool> done{false};
  std::thread client([&] {
    auto result = cluster_->Execute("SELECT sum(x) FROM mem.raw.t", Session());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    done.store(true);
  });

  // The query must park in the admission queue, journaling query_queued.
  bool queued = false;
  for (int i = 0; i < 500 && !queued; ++i) {
    for (const QueryEvent& event : coordinator.journal().Events()) {
      if (event.kind == QueryEventKind::kQueued) queued = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(queued) << "query never queued under memory pressure";
  EXPECT_FALSE(done.load()) << "query ran while the worker was over the mark";

  // Draining the pressure admits it.
  coordinator.worker_pool()->Release(10 << 20);
  client.join();
  EXPECT_TRUE(done.load());
  bool admitted = false;
  for (const QueryEvent& event : coordinator.journal().Events()) {
    if (event.kind == QueryEventKind::kAdmitted) admitted = true;
  }
  EXPECT_TRUE(admitted);
  EXPECT_GE(coordinator.metrics().Get("query.queued"), 1);
}

TEST_F(AdmissionTest, FullQueueFailsImmediately) {
  Coordinator& coordinator = cluster_->coordinator();
  ASSERT_TRUE(coordinator.worker_pool()->Reserve(10 << 20).ok());

  Session session;
  session.properties["query_queue_max"] = "0";
  auto result = cluster_->Execute("SELECT sum(x) FROM mem.raw.t", session);
  ASSERT_FALSE(result.ok());
  // Load shed: a full admission queue is kRejected (overload), distinct from
  // kResourceExhausted (out of memory) so the gateway backs off instead of
  // blind-failing-over.
  EXPECT_EQ(result.status().code(), StatusCode::kRejected)
      << result.status().ToString();

  coordinator.worker_pool()->Release(10 << 20);
  auto ok_again = cluster_->Execute("SELECT sum(x) FROM mem.raw.t", session);
  EXPECT_TRUE(ok_again.ok()) << ok_again.status().ToString();
}

TEST_F(AdmissionTest, QueuedQueryHonorsDeadline) {
  Coordinator& coordinator = cluster_->coordinator();
  ASSERT_TRUE(coordinator.worker_pool()->Reserve(10 << 20).ok());

  Session session;
  session.properties["query_timeout_millis"] = "50";
  auto result = cluster_->Execute("SELECT sum(x) FROM mem.raw.t", session);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("query deadline exceeded"),
            std::string::npos)
      << result.status().ToString();
  coordinator.worker_pool()->Release(10 << 20);
}

// ---------------------------------------------------------------------------
// Low-memory killer
// ---------------------------------------------------------------------------

TEST(LowMemoryKillerTest, KillsOnlyTheLargestQuery) {
  CoordinatorOptions options;
  options.worker_memory_bytes = 48 << 20;
  // The small-query loop below journals several events per iteration for as
  // long as the hog lives; under TSan that is tens of thousands of events,
  // and the default 1024-entry ring would evict the hog's kill event before
  // the victim scan at the end.
  options.journal_capacity = 1 << 18;
  PrestoCluster cluster("killer", 2, 2, options);
  auto memory = std::make_shared<MemoryConnector>();
  TypePtr hog_type = Type::Row({"k", "v"}, {Type::Bigint(), Type::Bigint()});
  ASSERT_TRUE(memory->CreateTable("raw", "hog", hog_type).ok());
  uint64_t state = 11;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int p = 0; p < 8; ++p) {
    constexpr size_t n = 250'000;
    std::vector<int64_t> k(n), v(n);
    for (size_t i = 0; i < n; ++i) {
      // Nearly all-distinct keys: the hash tables must hold ~2M groups,
      // far beyond the 48 MiB worker budget.
      k[i] = static_cast<int64_t>(p) * n + static_cast<int64_t>(i);
      v[i] = static_cast<int64_t>(next() % 100);
    }
    ASSERT_TRUE(memory
                    ->AppendPage("raw", "hog",
                                 Page({MakeBigintVector(std::move(k)),
                                       MakeBigintVector(std::move(v))}))
                    .ok());
  }
  ASSERT_TRUE(memory->CreateTable("raw", "small",
                                  Type::Row({"x"}, {Type::Bigint()}))
                  .ok());
  ASSERT_TRUE(
      memory->AppendPage("raw", "small", Page({MakeBigintVector({1, 2, 3})}))
          .ok());
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("mem", memory).ok());

  // The hog: a huge-cardinality group-by whose own cap exceeds the worker
  // budget, with spill off — its only exits are the worker cap and the
  // killer.
  Session hog_session;
  hog_session.properties["query_max_memory"] =
      std::to_string(1LL << 30);
  hog_session.properties["spill_enabled"] = "false";
  std::atomic<bool> hog_done{false};
  Status hog_status;
  std::thread hog([&] {
    auto result = cluster.Execute(
        "SELECT k, count(*), sum(v) FROM mem.raw.hog GROUP BY k", hog_session);
    hog_status = result.ok() ? Status::OK() : result.status();
    hog_done.store(true);
  });

  // Small queries run throughout; every one must survive (queueing briefly
  // at admission is fine, dying is not).
  std::vector<Status> small_statuses;
  while (!hog_done.load()) {
    auto small = cluster.Execute("SELECT sum(x) FROM mem.raw.small", Session());
    small_statuses.push_back(small.ok() ? Status::OK() : small.status());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  hog.join();

  ASSERT_FALSE(hog_status.ok()) << "the hog cannot fit the worker";
  EXPECT_EQ(hog_status.code(), StatusCode::kResourceExhausted)
      << hog_status.ToString();
  EXPECT_NE(hog_status.message().find("killed"), std::string::npos)
      << hog_status.ToString();
  for (const Status& status : small_statuses) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_GE(cluster.coordinator().metrics().Get("query.killed.memory"), 1);

  // The journal names the victim; no small query was ever the victim.
  int64_t victims = 0;
  int64_t hog_victim_events = 0;
  for (const QueryEvent& event : cluster.coordinator().journal().Events()) {
    if (event.kind != QueryEventKind::kKilledMemory) continue;
    ++victims;
    // The hog failed, so its id never landed in a QueryResult; recover it
    // from the kFailed journal event instead.
    for (const QueryEvent& failed : cluster.coordinator().journal().Events()) {
      if (failed.kind == QueryEventKind::kFailed &&
          failed.query_id == event.query_id) {
        ++hog_victim_events;
      }
    }
  }
  EXPECT_GE(victims, 1);
  EXPECT_EQ(victims, hog_victim_events)
      << "a kill landed on a query that did not fail (i.e. not the hog)";

  // The worker recovers: the same hog query spills its way through when
  // allowed to.
  Session spilling = hog_session;
  spilling.properties["spill_enabled"] = "true";
  spilling.properties["query_max_memory"] = std::to_string(8 << 20);
  auto retry = cluster.Execute(
      "SELECT k, count(*), sum(v) FROM mem.raw.hog GROUP BY k", spilling);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

// ---------------------------------------------------------------------------
// End-to-end counters
// ---------------------------------------------------------------------------

TEST(MemoryCountersTest, ReservationsVisibleOnHappyPath) {
  PrestoCluster cluster("memory-counters", 1, 2);
  auto memory = std::make_shared<MemoryConnector>();
  ASSERT_TRUE(
      memory->CreateTable("raw", "t", Type::Row({"k", "v"},
                                                {Type::Bigint(), Type::Bigint()}))
          .ok());
  std::vector<int64_t> k(5000), v(5000);
  for (size_t i = 0; i < k.size(); ++i) {
    k[i] = static_cast<int64_t>(i % 100);
    v[i] = static_cast<int64_t>(i);
  }
  ASSERT_TRUE(memory
                  ->AppendPage("raw", "t",
                               Page({MakeBigintVector(std::move(k)),
                                     MakeBigintVector(std::move(v))}))
                  .ok());
  ASSERT_TRUE(cluster.catalogs().RegisterCatalog("mem", memory).ok());

  auto result = cluster.Execute(
      "SELECT k, count(*), sum(v) FROM mem.raw.t GROUP BY k", Session());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->exec_metrics.at("memory.query.peak_bytes"), 0);
  EXPECT_GT(cluster.coordinator().metrics().Get("memory.reserved.bytes"), 0);
  // All pools drain after the query: nothing left reserved on the worker.
  EXPECT_EQ(cluster.coordinator().worker_pool()->reserved_bytes(), 0);

  // memory_accounting=false switches the whole subsystem off.
  Session off;
  off.properties["memory_accounting"] = "false";
  auto unaccounted = cluster.Execute(
      "SELECT k, count(*), sum(v) FROM mem.raw.t GROUP BY k", off);
  ASSERT_TRUE(unaccounted.ok()) << unaccounted.status().ToString();
  EXPECT_EQ(unaccounted->exec_metrics.count("memory.query.peak_bytes"), 0u);
}

}  // namespace
}  // namespace presto
