// Tests for the geospatial plugin: WKT, point-in-polygon, QuadTree,
// GeoIndex, and the registered st_point/st_contains/geo_contains/
// build_geo_index functions.

#include <gtest/gtest.h>

#include "presto/common/random.h"
#include "presto/expr/evaluator.h"
#include "presto/geo/geo_functions.h"
#include "presto/geo/geo_index.h"
#include "presto/vector/vector_builder.h"

namespace presto {
namespace geo {
namespace {

// Square polygon WKT centered at (cx, cy) with half-width h.
std::string SquareWkt(double cx, double cy, double h) {
  auto num = [](double v) { return std::to_string(v); };
  return "POLYGON ((" + num(cx - h) + " " + num(cy - h) + ", " + num(cx + h) +
         " " + num(cy - h) + ", " + num(cx + h) + " " + num(cy + h) + ", " +
         num(cx - h) + " " + num(cy + h) + ", " + num(cx - h) + " " +
         num(cy - h) + "))";
}

TEST(WktTest, ParsePointAndRoundTrip) {
  auto g = ParseWkt("POINT (77.3548351 28.6973627)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->kind, Geometry::Kind::kPoint);
  EXPECT_DOUBLE_EQ(g->point.x, 77.3548351);
  EXPECT_DOUBLE_EQ(g->point.y, 28.6973627);
  auto round = ParseWkt(ToWkt(*g));
  ASSERT_TRUE(round.ok());
  EXPECT_DOUBLE_EQ(round->point.x, g->point.x);
}

TEST(WktTest, ParsePaperPolygon) {
  // The polygon example from Section VI.A.
  auto g = ParseWkt(
      "POLYGON ((36.814155579 -1.3174386070000002, "
      "36.814863682 -1.317545867, 36.814863682 -1.318221605, "
      "36.813973188 -1.317910551, 36.814155579 -1.3174386070000002))");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->kind, Geometry::Kind::kPolygon);
  EXPECT_EQ(g->polygons[0].rings[0].size(), 4u);  // closing point dropped
}

TEST(WktTest, ParseMultiPolygon) {
  std::string wkt = "MULTIPOLYGON (((0 0, 2 0, 2 2, 0 2, 0 0)), "
                    "((10 10, 12 10, 12 12, 10 12, 10 10)))";
  auto g = ParseWkt(wkt);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->kind, Geometry::Kind::kMultiPolygon);
  EXPECT_EQ(g->polygons.size(), 2u);
  EXPECT_TRUE(GeometryContains(*g, GeoPoint{1, 1}));
  EXPECT_TRUE(GeometryContains(*g, GeoPoint{11, 11}));
  EXPECT_FALSE(GeometryContains(*g, GeoPoint{5, 5}));
}

TEST(WktTest, ParseErrors) {
  EXPECT_FALSE(ParseWkt("CIRCLE (0 0)").ok());
  EXPECT_FALSE(ParseWkt("POINT 1 2").ok());
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0, 0 0))").ok());   // too few points
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0, 1 1, 2 2))").ok());  // not closed
}

TEST(GeometryTest, PointInPolygonEdgeCases) {
  auto square = ParseWkt(SquareWkt(0, 0, 1));
  ASSERT_TRUE(square.ok());
  EXPECT_TRUE(GeometryContains(*square, GeoPoint{0, 0}));
  EXPECT_TRUE(GeometryContains(*square, GeoPoint{0.999, -0.999}));
  EXPECT_FALSE(GeometryContains(*square, GeoPoint{1.001, 0}));
  // Boundary counts as inside.
  EXPECT_TRUE(GeometryContains(*square, GeoPoint{1, 0}));
  EXPECT_TRUE(GeometryContains(*square, GeoPoint{1, 1}));
}

TEST(GeometryTest, PolygonWithHole) {
  Geometry g;
  g.kind = Geometry::Kind::kPolygon;
  Polygon poly;
  poly.rings.push_back({{0, 0}, {10, 0}, {10, 10}, {0, 10}});      // shell
  poly.rings.push_back({{4, 4}, {6, 4}, {6, 6}, {4, 6}});          // hole
  g.polygons.push_back(poly);
  EXPECT_TRUE(GeometryContains(g, GeoPoint{2, 2}));
  EXPECT_FALSE(GeometryContains(g, GeoPoint{5, 5})) << "inside the hole";
}

TEST(GeometryTest, ConcavePolygon) {
  // L-shaped (concave) polygon.
  Geometry g;
  g.kind = Geometry::Kind::kPolygon;
  Polygon poly;
  poly.rings.push_back({{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}});
  g.polygons.push_back(poly);
  EXPECT_TRUE(GeometryContains(g, GeoPoint{1, 3}));
  EXPECT_TRUE(GeometryContains(g, GeoPoint{3, 1}));
  EXPECT_FALSE(GeometryContains(g, GeoPoint{3, 3})) << "in the notch";
}

TEST(QuadTreeTest, InsertAndPointQuery) {
  // Paper Figure 11: a 4x4 indexed square space.
  QuadTree tree(BoundingBox{0, 0, 4, 4}, /*max_items_per_node=*/2);
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) {
      tree.Insert(x * 4 + y, BoundingBox{static_cast<double>(x),
                                         static_cast<double>(y), x + 1.0, y + 1.0});
    }
  }
  EXPECT_EQ(tree.num_items(), 16u);
  EXPECT_GT(tree.num_nodes(), 1u);
  std::vector<int32_t> hits;
  tree.Query(GeoPoint{2.5, 3.5}, &hits);
  ASSERT_FALSE(hits.empty());
  for (int32_t id : hits) {
    int x = id / 4, y = id % 4;
    EXPECT_TRUE(2.5 >= x && 2.5 <= x + 1 && 3.5 >= y && 3.5 <= y + 1);
  }
}

TEST(QuadTreeTest, QueryFiltersMajorityOfBoxes) {
  Random rng(5);
  QuadTree tree(BoundingBox{0, 0, 100, 100});
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble() * 98;
    double y = rng.NextDouble() * 98;
    tree.Insert(i, BoundingBox{x, y, x + 1, y + 1});
  }
  std::vector<int32_t> hits;
  tree.Query(GeoPoint{50, 50}, &hits);
  EXPECT_LT(hits.size(), 100u)
      << "quadtree must filter out the majority of bounded rectangles";
}

TEST(QuadTreeTest, SerializationRoundTrip) {
  QuadTree tree(BoundingBox{0, 0, 10, 10}, 2);
  for (int i = 0; i < 20; ++i) {
    double v = i * 0.45;
    tree.Insert(i, BoundingBox{v, v, v + 0.5, v + 0.5});
  }
  ByteBuffer buf;
  tree.Serialize(&buf);
  ByteReader reader(buf.bytes());
  auto back = QuadTree::Deserialize(&reader);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_items(), tree.num_items());
  EXPECT_EQ(back->num_nodes(), tree.num_nodes());
  std::vector<int32_t> a, b;
  tree.Query(GeoPoint{4.6, 4.6}, &a);
  back->Query(GeoPoint{4.6, 4.6}, &b);
  EXPECT_EQ(a, b);
}

TEST(GeoIndexTest, FindContainingMatchesBruteForce) {
  Random rng(7);
  std::vector<std::pair<int64_t, std::string>> shapes;
  for (int64_t i = 0; i < 200; ++i) {
    shapes.emplace_back(i, SquareWkt(rng.NextDouble() * 100,
                                     rng.NextDouble() * 100,
                                     0.5 + rng.NextDouble()));
  }
  auto index = GeoIndex::Build(shapes);
  ASSERT_TRUE(index.ok());
  for (int probe = 0; probe < 200; ++probe) {
    GeoPoint p{rng.NextDouble() * 100, rng.NextDouble() * 100};
    auto fast = index->FindContaining(p);
    auto brute = index->FindContainingBruteForce(p);
    std::sort(fast.begin(), fast.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(fast, brute);
  }
}

TEST(GeoIndexTest, QuadTreeDoesFarFewerContainsChecks) {
  Random rng(8);
  std::vector<std::pair<int64_t, std::string>> shapes;
  for (int64_t i = 0; i < 500; ++i) {
    shapes.emplace_back(i, SquareWkt(rng.NextDouble() * 1000,
                                     rng.NextDouble() * 1000, 1.0));
  }
  auto index = GeoIndex::Build(shapes);
  ASSERT_TRUE(index.ok());
  GeoPoint p{500, 500};
  (void)index->FindContaining(p);
  int64_t fast_checks = index->contains_checks();
  (void)index->FindContainingBruteForce(p);
  int64_t brute_checks = index->contains_checks() - fast_checks;
  EXPECT_LT(fast_checks * 20, brute_checks)
      << "QuadTree should prune >95% of st_contains calls on sparse shapes";
}

TEST(GeoIndexTest, SerializationRoundTrip) {
  std::vector<std::pair<int64_t, std::string>> shapes = {
      {12, SquareWkt(10, 10, 2)}, {34, SquareWkt(50, 50, 3)}};
  auto index = GeoIndex::Build(shapes);
  ASSERT_TRUE(index.ok());
  auto back = GeoIndex::Deserialize(index->Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_shapes(), 2u);
  auto hits = back->FindContaining(GeoPoint{50, 51});
  EXPECT_EQ(hits, std::vector<int64_t>{34});
}

class GeoFunctionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Registering twice across test binaries is fine: AlreadyExists ignored.
    (void)RegisterGeoFunctions(&FunctionRegistry::Default());
  }
};

TEST_F(GeoFunctionsTest, StPointAndStContains) {
  auto& registry = FunctionRegistry::Default();
  Page page({MakeDoubleVector({1.0, 20.0}), MakeDoubleVector({1.0, 20.0}),
             MakeVarcharVector({SquareWkt(0, 0, 2), SquareWkt(0, 0, 2)})});
  std::map<std::string, int> layout{{"lng", 0}, {"lat", 1}, {"shape", 2}};

  auto st_point = registry.ResolveScalar("st_point", {Type::Double(), Type::Double()});
  ASSERT_TRUE(st_point.ok());
  ExprPtr point_expr = CallExpression::Make(
      *st_point, {VariableReferenceExpression::Make("lng", Type::Double()),
                  VariableReferenceExpression::Make("lat", Type::Double())});
  auto st_contains =
      registry.ResolveScalar("st_contains", {Type::Varchar(), Type::Varchar()});
  ASSERT_TRUE(st_contains.ok());
  ExprPtr contains_expr = CallExpression::Make(
      *st_contains,
      {VariableReferenceExpression::Make("shape", Type::Varchar()), point_expr});
  auto result = Evaluator::EvalExpression(*contains_expr, page, layout);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->GetValue(0), Value::Bool(true));
  EXPECT_EQ((*result)->GetValue(1), Value::Bool(false));
}

TEST_F(GeoFunctionsTest, BuildGeoIndexAggregateAndGeoContains) {
  auto& registry = FunctionRegistry::Default();
  auto agg_handle =
      registry.ResolveAggregate("build_geo_index", {Type::Bigint(), Type::Varchar()});
  ASSERT_TRUE(agg_handle.ok());
  auto agg = registry.FindAggregate(*agg_handle);
  ASSERT_TRUE(agg.ok());

  auto acc = (*agg)->factory();
  VectorPtr ids = MakeBigintVector({12, 34});
  VectorPtr shapes = MakeVarcharVector({SquareWkt(10, 10, 2), SquareWkt(50, 50, 2)});
  for (size_t r = 0; r < 2; ++r) acc->Add({ids, shapes}, r);
  Value index_value = acc->Final();
  ASSERT_TRUE(index_value.is_string());

  Page page({MakeVarcharVector({index_value.string_value(),
                                index_value.string_value()}),
             MakeVarcharVector({PointWkt(10.5, 10.5), PointWkt(99, 99)})});
  std::map<std::string, int> layout{{"idx", 0}, {"pt", 1}};
  auto handle =
      registry.ResolveScalar("geo_contains", {Type::Varchar(), Type::Varchar()});
  ASSERT_TRUE(handle.ok());
  ExprPtr expr = CallExpression::Make(
      *handle, {VariableReferenceExpression::Make("idx", Type::Varchar()),
                VariableReferenceExpression::Make("pt", Type::Varchar())});
  auto result = Evaluator::EvalExpression(*expr, page, layout);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ((*result)->GetValue(0), Value::Int(12));
  EXPECT_TRUE((*result)->IsNull(1));
}

TEST_F(GeoFunctionsTest, PartialFinalMergePreservesShapes) {
  auto& registry = FunctionRegistry::Default();
  auto handle =
      registry.ResolveAggregate("build_geo_index", {Type::Bigint(), Type::Varchar()});
  ASSERT_TRUE(handle.ok());
  auto agg = registry.FindAggregate(*handle);
  ASSERT_TRUE(agg.ok());
  auto partial1 = (*agg)->factory();
  auto partial2 = (*agg)->factory();
  VectorPtr ids1 = MakeBigintVector({1});
  VectorPtr shapes1 = MakeVarcharVector({SquareWkt(0, 0, 1)});
  VectorPtr ids2 = MakeBigintVector({2});
  VectorPtr shapes2 = MakeVarcharVector({SquareWkt(10, 10, 1)});
  partial1->Add({ids1, shapes1}, 0);
  partial2->Add({ids2, shapes2}, 0);
  auto final_acc = (*agg)->factory();
  final_acc->MergeIntermediate(partial1->Intermediate());
  final_acc->MergeIntermediate(partial2->Intermediate());
  // The final value is a registry token; the intermediate is fully
  // serialized (it must survive an exchange).
  Value token = final_acc->Final();
  ASSERT_TRUE(token.is_string());
  EXPECT_EQ(token.string_value().rfind("geoidx:", 0), 0u);
  auto index = GetOrParseGeoIndex(token.string_value());
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->num_shapes(), 2u);
  EXPECT_EQ(index->FindContaining(GeoPoint{10, 10}), std::vector<int64_t>{2});
  auto from_intermediate =
      GeoIndex::Deserialize(partial1->Intermediate().string_value());
  ASSERT_TRUE(from_intermediate.ok());
  EXPECT_EQ(from_intermediate->num_shapes(), 1u);
}

}  // namespace
}  // namespace geo
}  // namespace presto
